"""The top-level middleware facade: one node, one object.

Section 3.1's model — every networked node is a service supplier, a service
consumer, or both — becomes :class:`MiddlewareNode`: a container that wires
transport, discovery, QoS matching, RPC, and the transaction manager behind
a supplier API (:meth:`MiddlewareNode.provide`) and a consumer API
(:meth:`MiddlewareNode.find` / :meth:`MiddlewareNode.establish` /
:meth:`MiddlewareNode.call`).

Discovery mode is chosen at construction: give a registry address for
centralized, nothing for fully distributed flooding, or both plus probes
for adaptive. Pass a router factory to run every unicast over the
middleware routing layer (multi-hop, Section 3.5).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.discovery.adaptive import AdaptiveDiscovery, AdaptivePolicy
from repro.discovery.description import ServiceDescription
from repro.discovery.distributed import DistributedDiscovery
from repro.discovery.matching import Query
from repro.discovery.registry import RegistryClient
from repro.errors import ConfigurationError
from repro.interop.codec import Codec, get_codec
from repro.qos.spec import SupplierQoS
from repro.routing.base import Router, RoutingAgent
from repro.transactions.manager import TransactionManager
from repro.transactions.rpc import RpcEndpoint
from repro.transactions.transaction import (
    DataCallback,
    Transaction,
    TransactionKind,
    TransactionSpec,
)
from repro.transport.base import Address, Transport
from repro.transport.simnet import SimFabric
from repro.util.events import EventEmitter
from repro.util.promise import Promise

#: Port carrying this node's exposed services.
SERVICE_PORT = "svc"
#: Port used by the discovery subsystem.
DISCOVERY_PORT = "disc"


class MiddlewareNode:
    """One node's complete middleware stack."""

    def __init__(
        self,
        fabric: SimFabric,
        node_id: str,
        registry: Optional[Address] = None,
        adaptive: bool = False,
        adaptive_policy: AdaptivePolicy = AdaptivePolicy(),
        router_factory: Optional[Callable[[str], Router]] = None,
        codec: Optional[Codec] = None,
        discovery_ttl: int = 4,
        collect_window_s: float = 1.0,
    ):
        self.fabric = fabric
        self.node_id = node_id
        self.codec = codec if codec is not None else get_codec("binary")
        self.events = EventEmitter()

        # --- transport (optionally multi-hop via the routing layer) --------
        self.routing_agent: Optional[RoutingAgent] = None
        if router_factory is not None:
            self.routing_agent = RoutingAgent(fabric, node_id, router_factory(node_id))
            service_transport: Transport = self.routing_agent.open_port(SERVICE_PORT)
            discovery_transport = self.routing_agent.open_port(DISCOVERY_PORT)
        else:
            service_transport = fabric.endpoint(node_id, SERVICE_PORT)
            discovery_transport = fabric.endpoint(node_id, DISCOVERY_PORT)

        # --- discovery ------------------------------------------------------
        self._distributed: Optional[DistributedDiscovery] = None
        self._registry_client: Optional[RegistryClient] = None
        if adaptive:
            if registry is None:
                raise ConfigurationError("adaptive discovery needs a registry address")
            self._distributed = DistributedDiscovery(
                discovery_transport, codec=self.codec, ttl=discovery_ttl,
                collect_window_s=collect_window_s,
            )
            registry_transport = (
                self.routing_agent.open_port("reg")
                if self.routing_agent is not None
                else fabric.endpoint(node_id, "reg")
            )
            self._registry_client = RegistryClient(
                registry_transport, registry, codec=self.codec
            )
            network = fabric.network
            self.discovery: Any = AdaptiveDiscovery(
                self._distributed,
                self._registry_client,
                policy=adaptive_policy,
                density_probe=lambda: len(network.neighbors(node_id)),
            )
        elif registry is not None:
            self._registry_client = RegistryClient(
                discovery_transport, registry, codec=self.codec
            )
            self.discovery = self._registry_client
        else:
            self._distributed = DistributedDiscovery(
                discovery_transport, codec=self.codec, ttl=discovery_ttl,
                collect_window_s=collect_window_s,
            )
            self.discovery = self._distributed

        # --- interaction ------------------------------------------------------
        self.rpc = RpcEndpoint(service_transport, codec=self.codec)
        self.transactions = TransactionManager(self.rpc, self.discovery)
        self._provided: Dict[str, ServiceDescription] = {}

    # ------------------------------------------------------------- supplier

    @property
    def service_address(self) -> str:
        return f"{self.node_id}:{SERVICE_PORT}"

    def provide(
        self,
        service_id: str,
        service_type: str,
        handlers: Mapping[str, Callable[..., Any]],
        attributes: Optional[Dict[str, str]] = None,
        qos: SupplierQoS = SupplierQoS(),
        position: Optional[Tuple[float, float]] = None,
        lease_s: float = 30.0,
    ) -> ServiceDescription:
        """Expose handlers and advertise the service (supplier role)."""
        for method, handler in handlers.items():
            self.rpc.expose(method, handler)
        if position is None and self.node_id in self.fabric.network:
            node_position = self.fabric.network.node(self.node_id).position
            position = (node_position.x, node_position.y)
        description = ServiceDescription(
            service_id=service_id,
            service_type=service_type,
            provider=self.service_address,
            attributes=dict(attributes or {}),
            qos=qos,
            position=position,
        )
        self._provided[service_id] = description
        if isinstance(self.discovery, RegistryClient):
            self.discovery.register(description, lease_s=lease_s)
        else:
            self.discovery.advertise(description)
        self.events.emit("provided", description)
        return description

    def withdraw(self, service_id: str) -> None:
        self._provided.pop(service_id, None)
        if isinstance(self.discovery, RegistryClient):
            self.discovery.unregister(service_id)
        else:
            self.discovery.withdraw(service_id)

    # ------------------------------------------------------------- consumer

    def find(self, query: Query) -> Promise:
        """Discover services (consumer role); fulfills with descriptions."""
        return self.discovery.lookup(query)

    def call(
        self,
        provider: str,
        method: str,
        params: Optional[Mapping[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> Promise:
        """Direct RPC to a provider address string ("node:port")."""
        return self.rpc.call(Address.parse(provider), method, params, timeout_s)

    def establish(
        self,
        query: Query,
        spec: Optional[TransactionSpec] = None,
        on_data: Optional[DataCallback] = None,
    ) -> Promise:
        """Discovery-matched, QoS-contracted transaction (Section 3.6)."""
        if spec is None:
            spec = TransactionSpec(TransactionKind.ON_DEMAND)
        return self.transactions.establish(query, spec, on_data)

    def stop_transaction(self, transaction: Transaction) -> None:
        self.transactions.stop(transaction)

    # -------------------------------------------------------------- plumbing

    def close(self) -> None:
        self.rpc.transport.close()
        if self._distributed is not None:
            self._distributed.close()
