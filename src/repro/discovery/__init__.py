"""Service discovery — the paper's "plug and play" feature (Section 3.3).

The section prescribes, and this package provides:

* attribute-based service descriptions with QoS properties and optional
  markup interfaces (:mod:`repro.discovery.description`),
* a matching engine combining attribute predicates with QoS scoring,
  including spatial QoS (:mod:`repro.discovery.matching`),
* a **centralized** lease-based registry in the SLP/Jini style
  (:mod:`repro.discovery.registry`),
* a **completely distributed** mode: hop-limited advertisement/query
  flooding with reverse-path replies and advertisement caches
  (:mod:`repro.discovery.distributed`),
* an **adaptive** mode that picks centralized or distributed "based on some
  aspects of the network itself such as density or traffic"
  (:mod:`repro.discovery.adaptive`),
* registry **mirroring** "to further increase scalability"
  (:mod:`repro.discovery.mirror`).
"""

from repro.discovery.adaptive import AdaptiveDiscovery, AdaptivePolicy
from repro.discovery.description import ServiceDescription
from repro.discovery.distributed import DistributedDiscovery
from repro.discovery.matching import AttributeConstraint, Matcher, Query
from repro.discovery.mirror import MirrorGroup
from repro.discovery.registry import RegistryClient, RegistryServer

__all__ = [
    "AdaptiveDiscovery",
    "AdaptivePolicy",
    "ServiceDescription",
    "DistributedDiscovery",
    "AttributeConstraint",
    "Matcher",
    "Query",
    "MirrorGroup",
    "RegistryClient",
    "RegistryServer",
]
