"""Registry mirroring.

Section 3.3: "To further increase scalability, mirroring approaches can be
introduced." A :class:`MirrorGroup` runs several registry servers that
replicate mutations to each other (full mesh, one-way sync per mutation) so
clients can register at and look up from their *nearest* mirror — reducing
both directory load and lookup path length.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.discovery.registry import RegistryClient, RegistryServer
from repro.errors import ConfigurationError
from repro.interop.codec import Codec
from repro.transport.base import Address, Transport


class MirrorGroup:
    """A set of mutually replicating registry servers."""

    def __init__(
        self,
        transports: Sequence[Transport],
        codec: Optional[Codec] = None,
        sweep_interval_s: float = 1.0,
    ):
        if not transports:
            raise ConfigurationError("a mirror group needs at least one transport")
        addresses = [t.local_address for t in transports]
        self.servers: List[RegistryServer] = []
        for i, transport in enumerate(transports):
            peers = [a for j, a in enumerate(addresses) if j != i]
            self.servers.append(
                RegistryServer(
                    transport, codec=codec, sweep_interval_s=sweep_interval_s,
                    peers=peers,
                )
            )

    @property
    def addresses(self) -> List[Address]:
        return [server.transport.local_address for server in self.servers]

    def client(
        self,
        transport: Transport,
        mirror_index: int = 0,
        codec: Optional[Codec] = None,
        request_timeout_s: float = 2.0,
    ) -> RegistryClient:
        """A client bound to the chosen mirror (pick the nearest)."""
        if not 0 <= mirror_index < len(self.servers):
            raise ConfigurationError(
                f"mirror index {mirror_index} out of range 0..{len(self.servers) - 1}"
            )
        return RegistryClient(
            transport,
            self.addresses[mirror_index],
            codec=codec,
            request_timeout_s=request_timeout_s,
        )

    def total_registered(self) -> int:
        """Registrations across mirrors (equal everywhere once synced)."""
        return max(len(server) for server in self.servers)

    def consistent(self) -> bool:
        """True when every mirror holds the same service-id set."""
        sets = [
            {d.service_id for d in server.registered_services()}
            for server in self.servers
        ]
        return all(s == sets[0] for s in sets[1:])
