"""The matching engine: attribute predicates + QoS scoring.

Section 3.3 calls for "sophisticated matching criteria based on quality of
service". A :class:`Query` filters candidates by type and attribute
constraints; the :class:`Matcher` then ranks survivors with the three-way
QoS score of :func:`repro.qos.spec.score_match`, including spatial QoS when
the consumer supplies a position.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.discovery.description import ServiceDescription
from repro.errors import DiscoveryError
from repro.qos.spec import ConsumerQoS, MatchScore, NetworkQoS, score_match

#: Supported constraint operators.
_OPERATORS = ("=", "!=", "contains", ">=", "<=")


@dataclass(frozen=True)
class AttributeConstraint:
    """One predicate over a service attribute.

    ``>=``/``<=`` compare numerically (the attribute must parse as float);
    the others compare as strings. A missing attribute fails every
    constraint except ``!=``.
    """

    name: str
    op: str
    value: str

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise DiscoveryError(
                f"unknown constraint operator {self.op!r}; known: {_OPERATORS}"
            )

    def matches(self, attributes: Dict[str, str]) -> bool:
        actual = attributes.get(self.name)
        if actual is None:
            return self.op == "!="
        if self.op == "=":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        if self.op == "contains":
            return self.value in actual
        try:
            left, right = float(actual), float(self.value)
        except ValueError:
            return False
        return left >= right if self.op == ">=" else left <= right

    def to_dict(self) -> Dict[str, str]:
        return {"name": self.name, "op": self.op, "value": self.value}

    @staticmethod
    def from_dict(raw: Dict[str, str]) -> "AttributeConstraint":
        return AttributeConstraint(raw["name"], raw["op"], raw["value"])


@dataclass(frozen=True)
class Query:
    """What a consumer asks discovery for.

    ``service_type`` of ``"*"`` matches any type. ``consumer`` carries the
    QoS requirements (may be None for attribute-only lookups);
    ``consumer_position`` enables spatial QoS.
    """

    service_type: str
    constraints: Tuple[AttributeConstraint, ...] = ()
    consumer: Optional[ConsumerQoS] = None
    consumer_position: Optional[Tuple[float, float]] = None
    max_results: int = 10

    def __post_init__(self) -> None:
        if not self.service_type:
            raise DiscoveryError("query service_type must be non-empty ('*' for any)")
        if self.max_results <= 0:
            raise DiscoveryError(f"max_results must be positive, got {self.max_results!r}")

    def accepts(self, description: ServiceDescription) -> bool:
        """Attribute-level filtering (before QoS scoring)."""
        if self.service_type != "*" and description.service_type != self.service_type:
            return False
        return all(c.matches(description.attributes) for c in self.constraints)

    # ------------------------------------------------------------- wire form

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "service_type": self.service_type,
            "constraints": [c.to_dict() for c in self.constraints],
            "max_results": self.max_results,
        }
        if self.consumer is not None:
            payload["consumer"] = {
                "min_reliability": self.consumer.min_reliability,
                "min_availability": self.consumer.min_availability,
                "max_latency_s": self.consumer.max_latency_s,
                "require_encryption": self.consumer.require_encryption,
                "has_password": self.consumer.password is not None,
            }
        if self.consumer_position is not None:
            payload["position"] = [self.consumer_position[0], self.consumer_position[1]]
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Query":
        """Rebuild a query from its wire form.

        Note: only the *hard* consumer terms travel (benefit functions are
        code, not data); remote matchers filter hard terms and the consumer
        re-ranks locally with its full QoS — the standard split in SLP-like
        protocols.
        """
        consumer = None
        raw_consumer = payload.get("consumer")
        if raw_consumer is not None:
            consumer = ConsumerQoS(
                min_reliability=raw_consumer.get("min_reliability", 0.0),
                min_availability=raw_consumer.get("min_availability", 0.0),
                max_latency_s=raw_consumer.get("max_latency_s"),
                require_encryption=raw_consumer.get("require_encryption", False),
                password="*" if raw_consumer.get("has_password") else None,
            )
        position = payload.get("position")
        return Query(
            service_type=payload["service_type"],
            constraints=tuple(
                AttributeConstraint.from_dict(c) for c in payload.get("constraints", [])
            ),
            consumer=consumer,
            consumer_position=(position[0], position[1]) if position else None,
            max_results=payload.get("max_results", 10),
        )


@dataclass(frozen=True)
class Match:
    """One ranked result."""

    description: ServiceDescription
    score: MatchScore
    distance_m: Optional[float] = None


class Matcher:
    """Ranks service descriptions against a query."""

    def __init__(self, network: NetworkQoS = NetworkQoS()):
        self.network = network

    def distance(
        self, query: Query, description: ServiceDescription
    ) -> Optional[float]:
        if query.consumer_position is None or description.position is None:
            return None
        qx, qy = query.consumer_position
        sx, sy = description.position
        return math.hypot(qx - sx, qy - sy)

    def match(
        self, descriptions: List[ServiceDescription], query: Query
    ) -> List[Match]:
        """Filter by attributes, score by QoS, return best-first (capped)."""
        consumer = query.consumer if query.consumer is not None else ConsumerQoS()
        results: List[Match] = []
        for description in descriptions:
            if not query.accepts(description):
                continue
            distance_m = self.distance(query, description)
            score = score_match(description.qos, consumer, self.network, distance_m)
            if score is None:
                continue
            results.append(Match(description, score, distance_m))
        results.sort(key=lambda m: (-m.score.total, m.description.service_id))
        return results[: query.max_results]
