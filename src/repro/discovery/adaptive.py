"""Adaptive discovery: centralized or distributed, chosen by the network.

Section 3.3: "Yet another approach is to allow the service discovery
approach to adapt to the current environment, selecting a centralized or
distributed approach based on some aspects of the network itself such as
density or traffic."

The policy implemented here:

* **dense** neighborhoods make flooding expensive (every neighbor
  rebroadcasts), so above ``density_threshold`` the agent uses the central
  registry when one is configured and answering;
* **sparse** networks make a far-away registry unreachable or costly, so
  below the threshold the agent floods;
* registry silence (timeouts) forces distributed mode regardless — a
  directory you cannot reach is no directory.

Advertisements are published through *both* paths on every mode switch so
consumers in either mode can find the service during transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.discovery.description import ServiceDescription
from repro.discovery.distributed import DistributedDiscovery
from repro.discovery.matching import Query
from repro.discovery.registry import RegistryClient
from repro.errors import ConfigurationError
from repro.util.events import EventEmitter
from repro.util.promise import Promise

CENTRALIZED = "centralized"
DISTRIBUTED = "distributed"


@dataclass(frozen=True)
class AdaptivePolicy:
    """When to prefer the registry over flooding."""

    density_threshold: float = 6.0
    traffic_threshold: float = 0.7
    reevaluate_interval_s: float = 5.0
    registry_failure_limit: int = 2

    def __post_init__(self) -> None:
        if self.density_threshold < 0:
            raise ConfigurationError(
                f"density threshold must be >= 0, got {self.density_threshold!r}"
            )
        if self.reevaluate_interval_s <= 0:
            raise ConfigurationError(
                f"reevaluate interval must be positive, got {self.reevaluate_interval_s!r}"
            )


class AdaptiveDiscovery:
    """Hybrid agent owning both a registry client and a flooding agent.

    ``density_probe`` returns the current neighborhood size and
    ``traffic_probe`` the local load estimate in [0, 1]; in simulation these
    come straight from the network object.

    Events (via :attr:`events`): ``"mode_changed"`` (new mode string).
    """

    def __init__(
        self,
        distributed: DistributedDiscovery,
        registry: Optional[RegistryClient] = None,
        policy: AdaptivePolicy = AdaptivePolicy(),
        density_probe: Callable[[], float] = lambda: 0.0,
        traffic_probe: Callable[[], float] = lambda: 0.0,
    ):
        self.distributed = distributed
        self.registry = registry
        self.policy = policy
        self.density_probe = density_probe
        self.traffic_probe = traffic_probe
        self.events = EventEmitter()
        self._mode = DISTRIBUTED
        self._registry_failures = 0
        self._published: Dict[str, ServiceDescription] = {}
        self.mode_switches = 0
        self.lookups: Dict[str, int] = {CENTRALIZED: 0, DISTRIBUTED: 0}
        self._evaluate()
        self._timer = distributed.transport.scheduler.schedule(
            policy.reevaluate_interval_s, self._periodic_evaluate
        )

    # ------------------------------------------------------------------ mode

    @property
    def mode(self) -> str:
        return self._mode

    def _registry_usable(self) -> bool:
        return (
            self.registry is not None
            and self._registry_failures < self.policy.registry_failure_limit
        )

    def _evaluate(self) -> None:
        dense = self.density_probe() >= self.policy.density_threshold
        busy = self.traffic_probe() >= self.policy.traffic_threshold
        want = (
            CENTRALIZED
            if self._registry_usable() and (dense or busy)
            else DISTRIBUTED
        )
        if want != self._mode:
            self._mode = want
            self.mode_switches += 1
            self._republish()
            self.events.emit("mode_changed", want)

    def _periodic_evaluate(self) -> None:
        if self.distributed.transport.closed:
            return
        self._evaluate()
        self._timer = self.distributed.transport.scheduler.schedule(
            self.policy.reevaluate_interval_s, self._periodic_evaluate
        )

    # ------------------------------------------------------------ supplier API

    def advertise(self, description: ServiceDescription) -> None:
        """Publish via the current mode (and re-publish on mode switches)."""
        self._published[description.service_id] = description
        self._publish_one(description)

    def _publish_one(self, description: ServiceDescription) -> None:
        if self._mode == CENTRALIZED and self.registry is not None:
            promise = self.registry.register(description)
            promise.on_error(lambda _e: self._note_registry_failure())
        else:
            self.distributed.advertise(description)

    def _republish(self) -> None:
        for description in self._published.values():
            self._publish_one(description)

    def withdraw(self, service_id: str) -> None:
        self._published.pop(service_id, None)
        self.distributed.withdraw(service_id)
        if self.registry is not None:
            self.registry.unregister(service_id)

    # ------------------------------------------------------------ consumer API

    def lookup(self, query: Query) -> Promise:
        """Look up via the current mode; registry failures fall back to
        flooding transparently."""
        self.lookups[self._mode] += 1
        if self._mode == CENTRALIZED and self.registry is not None:
            result: Promise = Promise()
            attempt = self.registry.lookup(query)

            def settle(settled: Promise) -> None:
                if settled.fulfilled:
                    result.fulfill(settled.result())
                    return
                self._note_registry_failure()
                self.distributed.lookup(query).on_settle(
                    lambda fallback: (
                        result.fulfill(fallback.result())
                        if fallback.fulfilled
                        else result.reject(fallback.error())  # type: ignore[arg-type]
                    )
                )

            attempt.on_settle(settle)
            return result
        return self.distributed.lookup(query)

    def _note_registry_failure(self) -> None:
        self._registry_failures += 1
        self._evaluate()

    def note_registry_recovered(self) -> None:
        """Clear the failure count (e.g. after an out-of-band health check)."""
        self._registry_failures = 0
        self._evaluate()
