"""Completely distributed service discovery.

No directory anywhere: every node runs a :class:`DistributedDiscovery`
agent. Suppliers flood hop-limited advertisements; consumers flood
hop-limited queries; matching nodes reply along the recorded reverse path.
Agents cache overheard advertisements, so repeated lookups can be answered
locally — the caching ablation in experiment E2.

This is the "completely distributed" end of Section 3.3's design space; the
centralized end is :mod:`repro.discovery.registry` and the hybrid is
:mod:`repro.discovery.adaptive`.

Requires a transport with broadcast support
(:class:`repro.transport.simnet.SimTransport`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.discovery.description import ServiceDescription
from repro.discovery.matching import Matcher, Query
from repro.errors import ConfigurationError, MiddlewareError
from repro.interop.codec import Codec, get_codec, try_decode_dict
from repro.interop.frames import WireFrame
from repro.transport.base import Address
from repro.transport.simnet import SimTransport
from repro.util.events import EventEmitter
from repro.util.ids import IdGenerator
from repro.util.promise import Promise

DEFAULT_TTL = 4
DEFAULT_ADVERT_INTERVAL_S = 10.0
DEFAULT_ADVERT_LEASE_S = 30.0
DEFAULT_COLLECT_WINDOW_S = 1.0


@dataclass
class CachedAdvert:
    description: ServiceDescription
    expires_at: float


class DistributedDiscovery:
    """One node's discovery agent.

    Parameters:
        transport: a broadcast-capable transport bound to this node.
        ttl: flood scope (hops) for adverts and queries.
        advertise_interval_s: period of advertisement refresh floods.
        advert_lease_s: how long overheard adverts stay cached.
        use_cache: answer lookups from the advert cache as well as from
            network replies (the E2 ablation flag).
    """

    def __init__(
        self,
        transport: SimTransport,
        codec: Optional[Codec] = None,
        ttl: int = DEFAULT_TTL,
        advertise_interval_s: float = DEFAULT_ADVERT_INTERVAL_S,
        advert_lease_s: float = DEFAULT_ADVERT_LEASE_S,
        collect_window_s: float = DEFAULT_COLLECT_WINDOW_S,
        use_cache: bool = True,
    ):
        if ttl < 1:
            raise ConfigurationError(f"ttl must be >= 1, got {ttl!r}")
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self.node_id = transport.local_address.node
        self.ttl = ttl
        self.advertise_interval_s = advertise_interval_s
        self.advert_lease_s = advert_lease_s
        self.collect_window_s = collect_window_s
        self.use_cache = use_cache
        self.events = EventEmitter()

        self._local: Dict[str, ServiceDescription] = {}
        self._cache: Dict[str, CachedAdvert] = {}
        # Recently withdrawn ids: filters results of in-flight lookups whose
        # cache snapshot predates the withdrawal. Cleared on re-advertisement.
        self._withdrawn: Set[str] = set()
        self._matcher = Matcher()
        self._qids = IdGenerator(f"q:{self.node_id}")
        self._advert_seq = 0
        self._seen_adverts: Set[Tuple[str, int]] = set()
        self._seen_queries: Set[str] = set()
        # qid -> (previous hop address, expiry) for reverse-path replies.
        self._reverse_path: Dict[str, Tuple[Address, float]] = {}
        # qid -> (collector list, query) for lookups this node originated.
        self._collecting: Dict[str, Tuple[List[ServiceDescription], Query]] = {}

        self.messages_sent: Dict[str, int] = {
            "advert": 0, "query": 0, "reply": 0, "withdraw": 0,
        }
        self.malformed_frames = 0
        transport.set_receiver(self._on_message)
        self._advert_timer = transport.scheduler.schedule(
            self.advertise_interval_s, self._periodic_advertise
        )

    # ----------------------------------------------------------- supplier API

    def advertise(self, description: ServiceDescription) -> None:
        """Publish a local service; floods immediately and on every refresh."""
        self._local[description.service_id] = description
        self._withdrawn.discard(description.service_id)
        self._flood_adverts([description])

    def withdraw(self, service_id: str) -> None:
        """Unpublish a local service and flood a cache invalidation so
        consumers stop matching it before their cached advert would expire."""
        if self._local.pop(service_id, None) is None:
            return
        self._withdrawn.add(service_id)
        self._advert_seq += 1
        self._seen_adverts.add((self.node_id, self._advert_seq))
        self._broadcast(
            "withdraw",
            {"op": "withdraw", "origin": self.node_id, "seq": self._advert_seq,
             "ttl": self.ttl, "service_id": service_id},
        )

    def local_services(self) -> List[ServiceDescription]:
        return list(self._local.values())

    # ----------------------------------------------------------- consumer API

    def lookup(self, query: Query) -> Promise:
        """Flood a query; fulfills after the collect window with ranked,
        deduplicated :class:`ServiceDescription` results."""
        qid = self._qids.next()
        collected: List[ServiceDescription] = []
        self._collecting[qid] = (collected, query)
        if self.use_cache:
            self._prune_cache()
            for cached in self._cache.values():
                collected.append(cached.description)
        collected.extend(self._local.values())
        self._send_query(qid, query, self.ttl)

        promise: Promise = Promise()
        self.transport.scheduler.schedule(
            self.collect_window_s, self._finish_lookup, qid, promise
        )
        return promise

    def _finish_lookup(self, qid: str, promise: Promise) -> None:
        collected, query = self._collecting.pop(qid, ([], None))
        if query is None:
            promise.fulfill([])
            return
        unique: Dict[str, ServiceDescription] = {}
        for description in collected:
            if description.service_id in self._withdrawn:
                continue
            unique[description.service_id] = description
        ranked = self._matcher.match(list(unique.values()), query)
        promise.fulfill([m.description for m in ranked])

    def cached_services(self) -> List[ServiceDescription]:
        self._prune_cache()
        return [c.description for c in self._cache.values()]

    # --------------------------------------------------------------- flooding

    def _now(self) -> float:
        return self.transport.scheduler.now()

    def _broadcast(self, op: str, message: Dict[str, Any]) -> None:
        self.messages_sent[op] += 1
        self.transport.broadcast(WireFrame(message, self.codec))

    def _flood_adverts(self, descriptions: List[ServiceDescription]) -> None:
        if not descriptions:
            return
        self._advert_seq += 1
        self._seen_adverts.add((self.node_id, self._advert_seq))
        self._broadcast(
            "advert",
            {
                "op": "advert",
                "origin": self.node_id,
                "seq": self._advert_seq,
                "ttl": self.ttl,
                "descs": [d.to_dict() for d in descriptions],
            },
        )

    def _periodic_advertise(self) -> None:
        if self.transport.closed:
            return
        if self._local:
            self._flood_adverts(list(self._local.values()))
        self._advert_timer = self.transport.scheduler.schedule(
            self.advertise_interval_s, self._periodic_advertise
        )

    def _send_query(self, qid: str, query: Query, ttl: int) -> None:
        self._seen_queries.add(qid)
        self._broadcast(
            "query",
            {"op": "query", "origin": self.node_id, "qid": qid, "ttl": ttl,
             "query": query.to_dict()},
        )

    # -------------------------------------------------------------- receiving

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = try_decode_dict(self.codec, payload)
        if message is None:
            self.malformed_frames += 1
            return
        try:
            op = message.get("op")
            if op == "advert":
                self._on_advert(message)
            elif op == "withdraw":
                self._on_withdraw(message)
            elif op == "query":
                self._on_query(source, message)
            elif op == "reply":
                self._on_reply(message)
        except (KeyError, TypeError, ValueError, AttributeError, MiddlewareError):
            # A corrupted frame can decode to a dict with mangled keys,
            # field types, or out-of-range values; treat it like any other
            # malformed frame.
            self.malformed_frames += 1

    def _on_withdraw(self, message: Dict[str, Any]) -> None:
        key = (message["origin"], message["seq"])
        if key in self._seen_adverts:
            return
        self._seen_adverts.add(key)
        self._cache.pop(message["service_id"], None)
        self._withdrawn.add(message["service_id"])
        ttl = message["ttl"] - 1
        if ttl >= 1:
            self._broadcast("withdraw", {**message, "ttl": ttl})

    def _on_advert(self, message: Dict[str, Any]) -> None:
        key = (message["origin"], message["seq"])
        if key in self._seen_adverts:
            return
        self._seen_adverts.add(key)
        expires = self._now() + self.advert_lease_s
        fresh = []
        for raw in message["descs"]:
            description = ServiceDescription.from_dict(raw)
            if description.service_id not in self._cache:
                fresh.append(description)
            self._withdrawn.discard(description.service_id)
            self._cache[description.service_id] = CachedAdvert(description, expires)
        for description in fresh:
            self.events.emit("service_discovered", description)
        ttl = message["ttl"] - 1
        if ttl >= 1:
            self._broadcast("advert", {**message, "ttl": ttl})

    def _on_query(self, source: Address, message: Dict[str, Any]) -> None:
        qid = message["qid"]
        if qid in self._seen_queries:
            return
        self._seen_queries.add(qid)
        self._reverse_path[qid] = (source, self._now() + 30.0)
        query = Query.from_dict(message["query"])
        matches = self._matcher.match(list(self._local.values()), query)
        if matches:
            self.messages_sent["reply"] += 1
            self.transport.send(
                source,
                WireFrame(
                    {
                        "op": "reply",
                        "qid": qid,
                        "origin": message["origin"],
                        "results": [m.description.to_dict() for m in matches],
                    },
                    self.codec,
                ),
            )
        ttl = message["ttl"] - 1
        if ttl >= 1:
            self._broadcast("query", {**message, "ttl": ttl})

    def _on_reply(self, message: Dict[str, Any]) -> None:
        qid = message["qid"]
        collecting = self._collecting.get(qid)
        if collecting is not None:
            collected, _query = collecting
            collected.extend(
                ServiceDescription.from_dict(raw) for raw in message["results"]
            )
            return
        # Not ours: forward along the recorded reverse path.
        hop = self._reverse_path.get(qid)
        if hop is not None:
            previous, _expires = hop
            self.messages_sent["reply"] += 1
            self.transport.send(previous, WireFrame(message, self.codec))

    # --------------------------------------------------------------- plumbing

    def _prune_cache(self) -> None:
        now = self._now()
        stale = [sid for sid, entry in self._cache.items() if entry.expires_at <= now]
        for sid in stale:
            del self._cache[sid]

    def total_messages_sent(self) -> int:
        return sum(self.messages_sent.values())

    def close(self) -> None:
        self._advert_timer.cancel()
        self.transport.close()
