"""Service descriptions.

A :class:`ServiceDescription` is what a supplier advertises: identity, type,
free-form attributes, supplier QoS, physical position (for spatial QoS), and
optionally the markup of its interface (Section 3.3: service discovery
"can also increase the flexibility of the middleware by providing an
abstraction of the interface in the form of markup languages").

Descriptions convert to/from plain dicts (for any codec) and to/from SML
markup (for markup-level interoperability).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.errors import DiscoveryError
from repro.interop import sml
from repro.qos.spec import SupplierQoS


@dataclass(frozen=True)
class ServiceDescription:
    """An advertised service."""

    service_id: str
    service_type: str
    provider: str  # transport address string, e.g. "node7:services"
    attributes: Dict[str, str] = field(default_factory=dict)
    qos: SupplierQoS = SupplierQoS()
    position: Optional[Tuple[float, float]] = None
    interface_markup: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.service_id:
            raise DiscoveryError("service_id must be non-empty")
        if not self.service_type:
            raise DiscoveryError("service_type must be non-empty")
        if not self.provider:
            raise DiscoveryError("provider address must be non-empty")

    def with_position(self, x: float, y: float) -> "ServiceDescription":
        return replace(self, position=(x, y))

    # ------------------------------------------------------------- dict form

    def to_dict(self) -> Dict[str, Any]:
        qos = self.qos
        payload: Dict[str, Any] = {
            "service_id": self.service_id,
            "service_type": self.service_type,
            "provider": self.provider,
            "attributes": dict(self.attributes),
            "qos": {
                "reliability": qos.reliability,
                "availability": qos.availability,
                "expected_latency_s": qos.expected_latency_s,
                "bandwidth_bps": qos.bandwidth_bps,
                "battery_powered": qos.battery_powered,
                "battery_fraction": qos.battery_fraction,
                "requires_password": qos.requires_password,
                "encrypted": qos.encrypted,
                "properties": dict(qos.properties),
            },
        }
        if self.position is not None:
            payload["position"] = [self.position[0], self.position[1]]
        if self.interface_markup is not None:
            payload["interface"] = self.interface_markup
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "ServiceDescription":
        try:
            qos_raw = payload.get("qos", {})
            qos = SupplierQoS(
                reliability=qos_raw.get("reliability", 1.0),
                availability=qos_raw.get("availability", 1.0),
                expected_latency_s=qos_raw.get("expected_latency_s", 0.01),
                bandwidth_bps=qos_raw.get("bandwidth_bps", 0.0),
                battery_powered=qos_raw.get("battery_powered", False),
                battery_fraction=qos_raw.get("battery_fraction"),
                requires_password=qos_raw.get("requires_password", False),
                encrypted=qos_raw.get("encrypted", False),
                properties=dict(qos_raw.get("properties", {})),
            )
            position = payload.get("position")
            return ServiceDescription(
                service_id=payload["service_id"],
                service_type=payload["service_type"],
                provider=payload["provider"],
                attributes=dict(payload.get("attributes", {})),
                qos=qos,
                position=(position[0], position[1]) if position else None,
                interface_markup=payload.get("interface"),
            )
        except (KeyError, TypeError, IndexError) as exc:
            raise DiscoveryError(f"malformed service description: {exc!r}") from exc

    # -------------------------------------------------------------- markup

    def to_sml(self) -> sml.SmlElement:
        root = sml.element(
            "service", id=self.service_id, type=self.service_type, provider=self.provider
        )
        attributes = root.add("attributes")
        for name, value in self.attributes.items():
            attributes.add("attr", name=name, value=value)
        qos = root.add(
            "qos",
            reliability=repr(self.qos.reliability),
            availability=repr(self.qos.availability),
            latency=repr(self.qos.expected_latency_s),
        )
        if self.qos.encrypted:
            qos.attributes["encrypted"] = "true"
        if self.qos.requires_password:
            qos.attributes["password"] = "true"
        if self.position is not None:
            root.add("position", x=repr(self.position[0]), y=repr(self.position[1]))
        if self.interface_markup is not None:
            root.add("interface", text=self.interface_markup)
        return root

    def markup(self) -> str:
        return sml.serialize(self.to_sml())

    @staticmethod
    def from_sml(root: sml.SmlElement) -> "ServiceDescription":
        if root.tag != "service":
            raise DiscoveryError(f"expected <service>, got <{root.tag}>")
        attributes: Dict[str, str] = {}
        attrs_node = root.child("attributes")
        if attrs_node is not None:
            for attr in attrs_node.children_named("attr"):
                attributes[attr.require("name")] = attr.require("value")
        qos_node = root.child("qos")
        qos = SupplierQoS()
        if qos_node is not None:
            qos = SupplierQoS(
                reliability=float(qos_node.get("reliability", "1.0") or "1.0"),
                availability=float(qos_node.get("availability", "1.0") or "1.0"),
                expected_latency_s=float(qos_node.get("latency", "0.01") or "0.01"),
                encrypted=qos_node.get("encrypted") == "true",
                requires_password=qos_node.get("password") == "true",
            )
        position = None
        pos_node = root.child("position")
        if pos_node is not None:
            position = (float(pos_node.require("x")), float(pos_node.require("y")))
        iface_node = root.child("interface")
        return ServiceDescription(
            service_id=root.require("id"),
            service_type=root.require("type"),
            provider=root.require("provider"),
            attributes=attributes,
            qos=qos,
            position=position,
            interface_markup=iface_node.text if iface_node is not None else None,
        )

    @staticmethod
    def from_markup(text: str) -> "ServiceDescription":
        return ServiceDescription.from_sml(sml.parse(text))
