"""Centralized service registry (the SLP/Jini-style directory).

One node runs a :class:`RegistryServer`; every other node uses a
:class:`RegistryClient` over any transport. Registrations carry a lease
(Section 3.3's plug-and-play: a supplier that disappears stops renewing and
its advertisement ages out instead of going stale forever).

Protocol (codec-encoded dicts):

=============  =======================================================
``register``   desc + lease_s -> ``register_ack`` (granted lease)
``renew``      service_id + lease_s -> ``renew_ack`` (ok flag)
``unregister`` service_id -> ``unregister_ack``
``lookup``     query -> ``lookup_ack`` (list of matching descriptions)
=============  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.discovery.description import ServiceDescription
from repro.discovery.matching import Matcher, Query
from repro.errors import DiscoveryError, MiddlewareError
from repro.interop.codec import Codec, get_codec, try_decode_dict
from repro.interop.frames import WireFrame
from repro.obs.tracing import NOOP_SPAN, TRACER
from repro.transport.base import Address, Transport
from repro.util.events import EventEmitter
from repro.util.ids import IdGenerator
from repro.util.promise import Promise

#: Default and maximum lease the server grants.
DEFAULT_LEASE_S = 30.0
MAX_LEASE_S = 300.0


@dataclass
class Registration:
    description: ServiceDescription
    expires_at: float


class RegistryServer:
    """The directory process.

    Events (via :attr:`events`): ``"registered"``, ``"renewed"``,
    ``"unregistered"``, ``"expired"`` — each with the service description.
    """

    def __init__(
        self,
        transport: Transport,
        codec: Optional[Codec] = None,
        sweep_interval_s: float = 1.0,
        peers: Optional[List[Address]] = None,
    ):
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self.events = EventEmitter()
        self._registrations: Dict[str, Registration] = {}
        self._matcher = Matcher()
        self.peers = list(peers) if peers else []
        self.lookups_served = 0
        self.registrations_accepted = 0
        self.replications_sent = 0
        self.malformed_frames = 0
        transport.set_receiver(self._on_message)
        self._sweep_interval = sweep_interval_s
        self._schedule_sweep()

    # ------------------------------------------------------------ inspection

    def registered_services(self) -> List[ServiceDescription]:
        return [r.description for r in self._registrations.values()]

    def __len__(self) -> int:
        return len(self._registrations)

    # ---------------------------------------------------------------- leases

    def _schedule_sweep(self) -> None:
        self.transport.scheduler.schedule(self._sweep_interval, self._sweep)

    def _sweep(self) -> None:
        if self.transport.closed:
            return
        now = self.transport.scheduler.now()
        expired = [
            service_id
            for service_id, registration in self._registrations.items()
            if registration.expires_at <= now
        ]
        for service_id in expired:
            registration = self._registrations.pop(service_id)
            self.events.emit("expired", registration.description)
        self._schedule_sweep()

    # -------------------------------------------------------------- protocol

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = try_decode_dict(self.codec, payload)
        if message is None:
            self.malformed_frames += 1
            return
        try:
            op = message.get("op")
            rid = message.get("rid")
            if op == "register":
                self._handle_register(source, rid, message)
            elif op == "renew":
                self._handle_renew(source, rid, message)
            elif op == "unregister":
                self._handle_unregister(source, rid, message)
            elif op == "lookup":
                self._handle_lookup(source, rid, message)
            # Unknown ops are dropped: forward compatibility over loud
            # failure at a network boundary.
        except (KeyError, TypeError, ValueError, AttributeError, MiddlewareError):
            # Decodable but mangled (corrupted keys/values/field types): drop.
            self.malformed_frames += 1

    def _reply(self, destination: Address, message: Dict[str, Any]) -> None:
        self.transport.send(destination, WireFrame(message, self.codec))

    def _grant_lease(self, requested: Any) -> float:
        lease = float(requested) if requested else DEFAULT_LEASE_S
        return max(0.1, min(lease, MAX_LEASE_S))

    def _replicate(self, message: Dict[str, Any]) -> None:
        """Forward a mutation to mirror peers (Section 3.3's mirroring).

        Replicated copies carry ``sync=True`` so peers apply without
        re-forwarding; their acks come back with ``rid=None`` and are
        dropped by :meth:`_on_message` as unknown correlation ids.
        """
        if not self.peers or message.get("sync"):
            return
        copy = WireFrame({**message, "sync": True, "rid": None}, self.codec)
        for peer in self.peers:
            self.replications_sent += 1
            self.transport.send(peer, copy)

    def _handle_register(self, source: Address, rid: Any, message: Dict[str, Any]) -> None:
        description = ServiceDescription.from_dict(message["desc"])
        lease = self._grant_lease(message.get("lease_s"))
        is_new = description.service_id not in self._registrations
        self._registrations[description.service_id] = Registration(
            description, self.transport.scheduler.now() + lease
        )
        self.registrations_accepted += 1
        self._replicate(message)
        self.events.emit("registered" if is_new else "renewed", description)
        self._reply(
            source,
            {"op": "register_ack", "rid": rid, "service_id": description.service_id,
             "lease_s": lease},
        )

    def _handle_renew(self, source: Address, rid: Any, message: Dict[str, Any]) -> None:
        service_id = message["service_id"]
        registration = self._registrations.get(service_id)
        ok = registration is not None
        if registration is not None:
            lease = self._grant_lease(message.get("lease_s"))
            registration.expires_at = self.transport.scheduler.now() + lease
            self._replicate(message)
            self.events.emit("renewed", registration.description)
        self._reply(source, {"op": "renew_ack", "rid": rid, "ok": ok})

    def _handle_unregister(self, source: Address, rid: Any, message: Dict[str, Any]) -> None:
        registration = self._registrations.pop(message["service_id"], None)
        if registration is not None:
            self._replicate(message)
        if registration is not None:
            self.events.emit("unregistered", registration.description)
        self._reply(
            source,
            {"op": "unregister_ack", "rid": rid, "removed": registration is not None},
        )

    def _handle_lookup(self, source: Address, rid: Any, message: Dict[str, Any]) -> None:
        query = Query.from_dict(message["query"])
        matches = self._matcher.match(self.registered_services(), query)
        self.lookups_served += 1
        self._reply(
            source,
            {
                "op": "lookup_ack",
                "rid": rid,
                "results": [m.description.to_dict() for m in matches],
            },
        )


class RegistryClient:
    """A node's handle onto the central registry."""

    def __init__(
        self,
        transport: Transport,
        registry_address: Address,
        codec: Optional[Codec] = None,
        request_timeout_s: float = 2.0,
        retries: int = 2,
    ):
        self.transport = transport
        self.registry_address = registry_address
        self.codec = codec if codec is not None else get_codec("binary")
        self.request_timeout_s = request_timeout_s
        self.retries = retries
        self._rids = IdGenerator(f"reg:{transport.local_address}")
        # rid -> (promise, request frame, retries left). Requests are
        # retransmitted on timeout because the transport below may be lossy;
        # server operations are idempotent, so duplicates are harmless. The
        # frame is lazy: it encodes at most once across all retransmissions.
        self._pending: Dict[str, Tuple[Promise, WireFrame, int]] = {}
        self.timeouts = 0
        self.retransmissions = 0
        self.malformed_frames = 0
        self._auto_renew: Dict[str, float] = {}  # service_id -> lease_s
        transport.set_receiver(self._on_message)

    # --------------------------------------------------------------- sending

    def _request(self, message: Dict[str, Any]) -> Promise:
        rid = self._rids.next()
        message["rid"] = rid
        promise: Promise = Promise()
        encoded = WireFrame(message, self.codec)
        self._pending[rid] = (promise, encoded, self.retries)
        self.transport.send(self.registry_address, encoded)
        self.transport.scheduler.schedule(self.request_timeout_s, self._timeout, rid)
        return promise

    def _timeout(self, rid: str) -> None:
        entry = self._pending.get(rid)
        if entry is None:
            return
        promise, encoded, retries_left = entry
        if retries_left > 0:
            self.retransmissions += 1
            self._pending[rid] = (promise, encoded, retries_left - 1)
            self.transport.send(self.registry_address, encoded)
            self.transport.scheduler.schedule(self.request_timeout_s, self._timeout, rid)
            return
        del self._pending[rid]
        self.timeouts += 1
        promise.reject(DiscoveryError(f"registry request {rid} timed out"))

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = try_decode_dict(self.codec, payload)
        if message is None:
            self.malformed_frames += 1
            return
        rid = message.get("rid")
        if not isinstance(rid, str):
            return
        entry = self._pending.pop(rid, None)
        if entry is None:
            return
        promise, _encoded, _retries = entry
        promise.fulfill(message)

    # ------------------------------------------------------------ operations

    def register(
        self,
        description: ServiceDescription,
        lease_s: float = DEFAULT_LEASE_S,
        auto_renew: bool = True,
    ) -> Promise:
        """Register a service; with ``auto_renew`` the lease is kept alive
        until :meth:`unregister` is called. Fulfills with the granted lease."""
        promise = self._request(
            {"op": "register", "desc": description.to_dict(), "lease_s": lease_s}
        )

        def arm_renewal(settled: Promise) -> None:
            if settled.rejected or not auto_renew:
                return
            granted = settled.result().get("lease_s", lease_s)
            self._auto_renew[description.service_id] = granted
            self._schedule_renew(description.service_id, granted)

        promise.on_settle(arm_renewal)
        return promise

    def _schedule_renew(self, service_id: str, lease_s: float) -> None:
        self.transport.scheduler.schedule(
            lease_s * 0.5, self._renew_if_active, service_id
        )

    def _renew_if_active(self, service_id: str) -> None:
        lease_s = self._auto_renew.get(service_id)
        if lease_s is None or self.transport.closed:
            return
        self._request({"op": "renew", "service_id": service_id, "lease_s": lease_s})
        self._schedule_renew(service_id, lease_s)

    def renew(self, service_id: str, lease_s: float = DEFAULT_LEASE_S) -> Promise:
        return self._request({"op": "renew", "service_id": service_id, "lease_s": lease_s})

    def unregister(self, service_id: str) -> Promise:
        self._auto_renew.pop(service_id, None)
        return self._request({"op": "unregister", "service_id": service_id})

    def lookup(self, query: Query) -> Promise:
        """Find services; fulfills with a list of :class:`ServiceDescription`.

        The server filters hard constraints; the client re-ranks locally
        with the full consumer QoS (including benefit and spatial terms).
        """
        span: Any = NOOP_SPAN
        if TRACER.enabled:
            span = TRACER.span(
                "discovery.lookup",
                node=self.transport.local_address.node,
                service_type=query.service_type,
            )
        with TRACER.activate(span):
            promise = self._request({"op": "lookup", "query": query.to_dict()})
        results: Promise = Promise()

        def unpack(settled: Promise) -> None:
            if settled.rejected:
                span.set_label(outcome="failed")
                span.finish()
                results.reject(settled.error())  # type: ignore[arg-type]
                return
            descriptions = [
                ServiceDescription.from_dict(raw)
                for raw in settled.result().get("results", [])
            ]
            matcher = Matcher()
            ranked = matcher.match(descriptions, query)
            span.set_label(outcome="ok", matches=len(ranked))
            span.finish()
            results.fulfill([m.description for m in ranked])

        promise.on_settle(unpack)
        return results
