"""System-wide event management (Section 3.10).

"Ideally, the middleware should react to events from all system components
(services suppliers, services consumers and network)."

The :class:`SystemEventBus` is that reaction point: it attaches to any mix
of components — simulated nodes, registries, discovery agents, transaction
managers, QoS contracts, MiLAN instances — normalizes their event streams
onto one dot-separated topic tree, and lets applications subscribe with
the same wildcard patterns publish/subscribe uses:

=========================  =============================================
topic                      payload
=========================  =============================================
``node.crashed``           {"node": id}
``node.recovered``         {"node": id}
``node.depleted``          {"node": id}
``service.registered``     {"service": id, "type": t}
``service.unregistered``   {"service": id, "type": t}
``service.expired``        {"service": id, "type": t}
``service.discovered``     {"service": id, "type": t}
``qos.violated``           {"contract": id, "supplier": id}
``qos.repaired``           {"contract": id, "supplier": id}
``txn.established``        {"txn": id, "supplier": id}
``txn.transferred``        {"txn": id, "from": id, "to": id}
``txn.completed``          {"txn": id}
``txn.aborted``            {"txn": id}
``milan.state_changed``    {"from": s, "to": s}
``milan.reconfigured``     {"active": [ids], "lifetime_s": x}
``milan.infeasible``       {"state": s}
=========================  =============================================

Every event is counted into the bus's :class:`~repro.obs.metrics.
MetricsRegistry` (one counter per topic, readable through the compatible
:class:`~repro.obs.metrics.MetricsRecorder` facade on :attr:`metrics`), and
can be forwarded to a network
:class:`~repro.transactions.pubsub.PubSubClient` so remote operators
observe the system live.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.milan import Milan
from repro.discovery.distributed import DistributedDiscovery
from repro.discovery.registry import RegistryServer
from repro.netsim.network import Network
from repro.obs.metrics import MetricsRecorder, MetricsRegistry
from repro.qos.contract import QoSContract
from repro.transactions.manager import TransactionManager
from repro.transactions.pubsub import PubSubClient, topic_matches

Handler = Callable[[str, Dict[str, Any]], None]


class SystemEventBus:
    """Aggregates component events onto one wildcard-subscribable stream.

    Per-topic counting lives in an :class:`MetricsRegistry` (``registry``;
    one counter named after each topic). :attr:`metrics` is a recorder
    bound to that registry, kept for the historical
    ``bus.metrics.count(topic)`` API.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRecorder] = None,
        forward_to: Optional[PubSubClient] = None,
        forward_prefix: str = "system",
        registry: Optional[MetricsRegistry] = None,
    ):
        if registry is None:
            registry = getattr(metrics, "registry", None) or MetricsRegistry()
        self.registry = registry
        self.metrics = (
            metrics if metrics is not None else MetricsRecorder(registry=registry)
        )
        self.forward_to = forward_to
        self.forward_prefix = forward_prefix
        self._subscribers: List[Tuple[str, Handler]] = []
        self.history: List[Tuple[str, Dict[str, Any]]] = []
        self.events_published = 0

    # -------------------------------------------------------------- emitting

    def publish(self, topic: str, payload: Dict[str, Any]) -> None:
        """Publish one system event (components call this via the watchers)."""
        self.events_published += 1
        self.metrics.incr(topic)
        self.history.append((topic, payload))
        for pattern, handler in list(self._subscribers):
            if topic_matches(pattern, topic):
                handler(topic, payload)
        if self.forward_to is not None:
            self.forward_to.publish(f"{self.forward_prefix}.{topic}", payload)

    def subscribe(self, pattern: str, handler: Handler) -> None:
        """Subscribe with a pub/sub topic pattern (``*``, ``#`` wildcards)."""
        self._subscribers.append((pattern, handler))

    def events_matching(self, pattern: str) -> List[Tuple[str, Dict[str, Any]]]:
        return [(t, p) for t, p in self.history if topic_matches(pattern, t)]

    # -------------------------------------------------------------- watchers

    def watch_network(self, network: Network) -> None:
        """node.crashed / node.recovered / node.depleted for every node."""
        for node in network.nodes():
            node.events.on(
                "crashed",
                lambda n: self.publish("node.crashed", {"node": n.node_id}),
            )
            node.events.on(
                "recovered",
                lambda n: self.publish("node.recovered", {"node": n.node_id}),
            )
            node.events.on(
                "depleted",
                lambda n: self.publish("node.depleted", {"node": n.node_id}),
            )

    def watch_registry(self, server: RegistryServer) -> None:
        def service_event(kind: str):
            return lambda d: self.publish(
                f"service.{kind}", {"service": d.service_id, "type": d.service_type}
            )

        server.events.on("registered", service_event("registered"))
        server.events.on("unregistered", service_event("unregistered"))
        server.events.on("expired", service_event("expired"))

    def watch_discovery(self, agent: DistributedDiscovery) -> None:
        agent.events.on(
            "service_discovered",
            lambda d: self.publish(
                "service.discovered",
                {"service": d.service_id, "type": d.service_type},
            ),
        )

    def watch_contract(self, contract: QoSContract) -> None:
        contract.events.on(
            "violated",
            lambda c: self.publish(
                "qos.violated",
                {"contract": c.contract_id, "supplier": c.supplier_id},
            ),
        )
        contract.events.on(
            "repaired",
            lambda c: self.publish(
                "qos.repaired",
                {"contract": c.contract_id, "supplier": c.supplier_id},
            ),
        )

    def watch_transactions(self, manager: TransactionManager) -> None:
        manager.events.on(
            "established",
            lambda t: self.publish(
                "txn.established",
                {"txn": t.transaction_id, "supplier": t.supplier.service_id},
            ),
        )
        manager.events.on(
            "transferred",
            lambda t, old: self.publish(
                "txn.transferred",
                {"txn": t.transaction_id, "from": old,
                 "to": t.supplier.service_id},
            ),
        )
        manager.events.on(
            "completed",
            lambda t: self.publish("txn.completed", {"txn": t.transaction_id}),
        )
        manager.events.on(
            "aborted",
            lambda t: self.publish("txn.aborted", {"txn": t.transaction_id}),
        )

    def watch_milan(self, milan: Milan) -> None:
        milan.events.on(
            "state_changed",
            lambda old, new: self.publish(
                "milan.state_changed", {"from": old, "to": new}
            ),
        )
        milan.events.on(
            "reconfigured",
            lambda config, score: self.publish(
                "milan.reconfigured",
                {"active": sorted(config.active_sensors),
                 "lifetime_s": score.lifetime_s},
            ),
        )
        milan.events.on(
            "infeasible",
            lambda state: self.publish("milan.infeasible", {"state": state}),
        )
