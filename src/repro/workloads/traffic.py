"""Traffic models: seeded arrival processes for workload scenarios.

A traffic model answers "when do requests arrive, and how big are they" —
nothing else. Open-loop models pre-compute an arrival schedule as a pure
function of ``(model, seed, horizon, rate)``; the closed-loop model
instead drives a fixed population of clients that each wait for the
previous response plus a think time (so offered load backs off when the
system slows down — the classic open/closed distinction).

Invariants every model guarantees (pinned by Hypothesis properties in
``tests/test_workload_traffic.py``):

* arrival times are strictly positive, non-decreasing, and < ``horizon_s``;
* sizes are positive integers within the model's declared bounds;
* the same ``(seed, horizon, rate)`` always yields the identical schedule,
  and RNG streams are label-split so models never share draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import random

from repro.workloads.registry import traffic_model
from repro.util.rng import split_rng


@dataclass(frozen=True)
class Arrival:
    """One open-loop request: seconds from scenario start + payload bytes."""

    at: float
    size: int


class TrafficModel:
    """Base class; subclasses register with :func:`~repro.workloads.registry.traffic_model`."""

    #: Filled by the decorator.
    name: str = ""
    description: str = ""
    #: Closed-loop models drive clients instead of a precomputed schedule.
    closed_loop: bool = False
    #: Fixed request payload size unless the model varies it per arrival.
    size_bytes: int = 64

    def _stream(self, seed: int, label: str = "") -> random.Random:
        return split_rng(seed, f"traffic:{self.name}:{label}")

    def arrivals(self, seed: int, horizon_s: float,
                 rate_rps: float) -> Tuple[Arrival, ...]:
        raise NotImplementedError

    def spec(self) -> Dict[str, Any]:
        """Canonical parameters, embedded in the scorecard."""
        return {"name": self.name, "closed_loop": self.closed_loop,
                "size_bytes": self.size_bytes}


def _poisson_times(rng: random.Random, rate_rps: float,
                   start_s: float, end_s: float) -> List[float]:
    """Homogeneous Poisson arrival times in [start_s, end_s)."""
    times: List[float] = []
    t = start_s
    while True:
        t += rng.expovariate(rate_rps)
        if t >= end_s:
            return times
        times.append(t)


@traffic_model("diurnal", description="sinusoidal day/night rate curve "
               "(one full cycle per horizon), thinned Poisson arrivals")
class DiurnalTraffic(TrafficModel):
    """Non-homogeneous Poisson: rate(t) = rate * (1 + amp * sin(2*pi*t/H)).

    One "day" is compressed into the scenario horizon, so every run sees a
    full peak and trough. Arrivals come from thinning a homogeneous
    process at the peak rate, which keeps the schedule a pure function of
    the seed.
    """

    def __init__(self, amplitude: float = 0.6):
        self.amplitude = amplitude

    def arrivals(self, seed: int, horizon_s: float,
                 rate_rps: float) -> Tuple[Arrival, ...]:
        rng = self._stream(seed)
        peak = rate_rps * (1.0 + self.amplitude)
        out: List[Arrival] = []
        for t in _poisson_times(rng, peak, 0.0, horizon_s):
            rate_t = rate_rps * (
                1.0 + self.amplitude * math.sin(2.0 * math.pi * t / horizon_s)
            )
            if rng.random() < rate_t / peak:
                out.append(Arrival(t, self.size_bytes))
        return tuple(out)

    def spec(self) -> Dict[str, Any]:
        return {**super().spec(), "amplitude": self.amplitude}


@traffic_model("heavy_tail", description="Poisson arrivals with bounded-"
               "Pareto flow sizes (most requests small, a few huge)")
class HeavyTailTraffic(TrafficModel):
    """Constant-rate arrivals whose sizes follow a bounded Pareto law."""

    def __init__(self, alpha: float = 1.4, min_size: int = 32,
                 max_size: int = 4096):
        self.alpha = alpha
        self.min_size = min_size
        self.max_size = max_size

    def arrivals(self, seed: int, horizon_s: float,
                 rate_rps: float) -> Tuple[Arrival, ...]:
        rng = self._stream(seed)
        out: List[Arrival] = []
        for t in _poisson_times(rng, rate_rps, 0.0, horizon_s):
            u = 1.0 - rng.random()  # in (0, 1]; never a zero division below
            size = int(self.min_size / u ** (1.0 / self.alpha))
            out.append(Arrival(t, min(self.max_size, size)))
        return tuple(out)

    def spec(self) -> Dict[str, Any]:
        return {**super().spec(), "alpha": self.alpha,
                "min_size": self.min_size, "max_size": self.max_size}


@traffic_model("flash_crowd", description="steady base load plus a "
               "multiplied spike window (the PR-9 crowd shape)")
class FlashCrowdTraffic(TrafficModel):
    """Baseline Poisson plus a rate-multiplied spike window.

    The spike window is a fixed fraction of the horizon so the same model
    composes with any scenario length; :meth:`spike_window` exposes it for
    the property tests and for archetypes that want to judge in-spike
    behavior separately.
    """

    size_bytes = 48

    def __init__(self, spike_start_frac: float = 0.4,
                 spike_duration_frac: float = 0.2,
                 multiplier: float = 6.0):
        self.spike_start_frac = spike_start_frac
        self.spike_duration_frac = spike_duration_frac
        self.multiplier = multiplier

    def spike_window(self, horizon_s: float) -> Tuple[float, float]:
        start = self.spike_start_frac * horizon_s
        return (start, start + self.spike_duration_frac * horizon_s)

    def arrivals(self, seed: int, horizon_s: float,
                 rate_rps: float) -> Tuple[Arrival, ...]:
        rng = self._stream(seed)
        times = _poisson_times(rng, rate_rps, 0.0, horizon_s)
        spike_start, spike_end = self.spike_window(horizon_s)
        times += _poisson_times(
            rng, rate_rps * (self.multiplier - 1.0), spike_start, spike_end
        )
        times.sort()
        return tuple(Arrival(t, self.size_bytes) for t in times)

    def spec(self) -> Dict[str, Any]:
        return {**super().spec(), "spike_start_frac": self.spike_start_frac,
                "spike_duration_frac": self.spike_duration_frac,
                "multiplier": self.multiplier}


@traffic_model("closed_loop", description="fixed client population, each "
               "waiting for its response plus an exponential think time")
class ClosedLoopTraffic(TrafficModel):
    """Closed-loop arrivals: offered load self-limits under slowdown.

    The mean think time is derived from the archetype's nominal rate
    (``clients / rate``) so open- and closed-loop scenarios offer
    comparable load when the system keeps up. :meth:`arrivals` returns the
    zero-service-time projection of the think streams — what the clients
    *would* submit if every response were instant — which is what the
    reproducibility and monotonicity properties quantify over; the runner
    drives the real request-response loop via :meth:`think_s`.
    """

    closed_loop = True

    def __init__(self, clients: int = 4):
        self.clients = clients

    def think_mean_s(self, rate_rps: float) -> float:
        return self.clients / rate_rps

    def think_s(self, rng: random.Random, rate_rps: float) -> float:
        return rng.expovariate(1.0 / self.think_mean_s(rate_rps))

    def client_stream(self, seed: int, client: int) -> random.Random:
        return self._stream(seed, f"client{client}")

    def arrivals(self, seed: int, horizon_s: float,
                 rate_rps: float) -> Tuple[Arrival, ...]:
        times: List[float] = []
        for client in range(self.clients):
            rng = self.client_stream(seed, client)
            t = 0.0
            while True:
                t += self.think_s(rng, rate_rps)
                if t >= horizon_s:
                    break
                times.append(t)
        times.sort()
        return tuple(Arrival(t, self.size_bytes) for t in times)

    def spec(self) -> Dict[str, Any]:
        return {**super().spec(), "clients": self.clients}
