"""CLI for the workload scenario registry.

* ``python -m repro.workloads list`` — registered archetypes, traffic
  models, and the full scenario crossing;
* ``python -m repro.workloads run patient_fleet:diurnal --seed 0`` — run
  one scenario and print its scorecard;
* ``python -m repro.workloads smoke --golden tests/golden`` — run every
  registered scenario, validate schemas, compare against goldens (the CI
  smoke step); exits non-zero on any violation or mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.workloads import (
    ARCHETYPES,
    TRAFFIC_MODELS,
    canonical_bytes,
    run_scenario,
    scenario_names,
    validate_scorecard,
)


def golden_path(directory: Path, name: str, seed: int) -> Path:
    archetype, traffic = name.split(":")
    return directory / f"{archetype}__{traffic}__seed{seed}.json"


def _cmd_list(_args: argparse.Namespace) -> int:
    print("archetypes:")
    for name in sorted(ARCHETYPES):
        info = ARCHETYPES[name]
        print(f"  {name:<18} {info.description}")
    print("traffic models:")
    for name in sorted(TRAFFIC_MODELS):
        info = TRAFFIC_MODELS[name]
        print(f"  {name:<18} {info.description}")
    names = scenario_names()
    print(f"scenarios ({len(names)}):")
    for name in names:
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    overrides: Dict[str, Any] = {}
    if args.horizon is not None:
        overrides["horizon_s"] = args.horizon
    if args.chaos is not None:
        overrides["chaos_mix"] = args.chaos
    card = run_scenario(args.scenario, seed=args.seed, **overrides)
    text = json.dumps(card, sort_keys=True, indent=2)
    if args.json is not None:
        Path(args.json).write_text(text + "\n")
    print(text)
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    golden_dir: Optional[Path] = (
        Path(args.golden) if args.golden is not None else None
    )
    cards: List[Dict[str, Any]] = []
    problems: List[str] = []
    for name in scenario_names():
        card = run_scenario(name, seed=args.seed)
        cards.append(card)
        for issue in validate_scorecard(card):
            problems.append(f"{name}: schema: {issue}")
        if golden_dir is not None:
            path = golden_path(golden_dir, name, args.seed)
            if not path.exists():
                problems.append(f"{name}: missing golden {path}")
            elif canonical_bytes(json.loads(path.read_text())) != \
                    canonical_bytes(card):
                problems.append(f"{name}: scorecard differs from {path}")
        status = "ok" if card["ok"] else "VIOLATIONS"
        print(f"{name:<32} arrivals={card['offered']['arrivals']:<5} "
              f"goodput={card['goodput']['ok']:<5} "
              f"p95={card['latency']['p95_s']:.4f}s {status}")
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(cards, sort_keys=True, indent=2) + "\n"
        )
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.workloads")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show registered archetypes/traffic/scenarios")

    run_p = sub.add_parser("run", help="run one scenario, print its scorecard")
    run_p.add_argument("scenario", help="scenario name, 'archetype:traffic'")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--horizon", type=float, default=None,
                       help="override the scenario horizon (virtual seconds)")
    run_p.add_argument("--chaos", default=None,
                       help="compose a chaos fault mix (churn/partition/corrupt)")
    run_p.add_argument("--json", default=None,
                       help="also write the scorecard to this file")

    smoke_p = sub.add_parser(
        "smoke", help="run every scenario; validate schemas and goldens"
    )
    smoke_p.add_argument("--seed", type=int, default=0)
    smoke_p.add_argument("--golden", default=None,
                         help="golden directory to compare scorecards against")
    smoke_p.add_argument("--json", default=None,
                         help="write all scorecards to this file")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
