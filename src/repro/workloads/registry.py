"""The workload plugin registry: archetypes x traffic models.

Brain-score-style composition (ROADMAP item 3): an **archetype** is an
application shape built on the middleware stack (what the requests *do*);
a **traffic model** is an arrival process (when requests arrive and how
big they are). Registering either side with a decorator makes every
crossing a runnable scenario for free — ``patient_fleet:diurnal`` is the
patient-monitoring fleet driven by a diurnal rate curve, and a new traffic
model immediately applies to every archetype (and vice versa).

The platform stays policy-free in the Dearle et al. sense: nothing in the
runner knows what any particular archetype or traffic model does; the
registry is the only coupling point, and it couples by name.

Scenario names are ``"<archetype>:<traffic>"``. Everything a scenario does
derives from ``(name, seed)`` — see :mod:`repro.workloads.runner` for the
determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class Archetype:
    """Base class for application archetypes.

    Subclasses are registered with :func:`archetype` and must implement
    :meth:`issue`; the scenario runner owns all arrival timing, latency
    measurement, and scorecard assembly, so an archetype only decides what
    one request *is* and reports archetype-specific detail at the end.

    Construction builds the complete deployment (network, fabric, service
    endpoints) as a pure function of ``seed``; ``self.network`` must be set
    (the runner reads its simulator clock, drives its event loop, and sums
    its battery drain into the scorecard's energy section).
    """

    #: Filled in by the :func:`archetype` decorator.
    name: str = ""
    description: str = ""
    #: Nominal offered rate handed to open-loop traffic models (req/s).
    rate_rps: float = 1.0
    #: The per-request latency target the SLO section judges against.
    slo_target_s: float = 0.5

    def __init__(self, seed: int):
        self.seed = seed
        self.network: Any = None
        #: Set by the runner before traffic starts. Recording history must
        #: never change what an archetype *does* (same wire traffic either
        #: way), only what it remembers for the simtest oracles.
        self.record_history = False

    # ------------------------------------------------------------- contract

    @property
    def sim(self) -> Any:
        return self.network.sim

    def issue(self, index: int, size: int,
              done: Callable[[str], None]) -> None:
        """Issue one request of ``size`` payload bytes.

        ``done`` must be called exactly once with ``"ok"``, ``"failed"``,
        or ``"refused"`` (admission-shed before any network traffic) when
        the request settles; requests still pending at the end of the run
        are counted by the runner, not by the archetype.
        """
        raise NotImplementedError

    # ---------------------------------------------------- optional hooks

    def fault_targets(self) -> Sequence[str]:
        """Node ids a chaos mix may crash without destroying the scenario
        outright (never the node hosting the only copy of the service)."""
        return ()

    def partition_groups(self) -> Optional[List[List[str]]]:
        """Candidate partition groups for the ``partition`` mix, or None
        if this deployment has no meaningful split."""
        return None

    def detail(self) -> Dict[str, Any]:
        """Archetype-specific scorecard section (deterministic values only)."""
        return {}

    def history(self) -> List[Tuple[Any, ...]]:
        """Operation history for the simtest oracles, as
        ``(obj, client, op, args, invoke, response, result)`` tuples —
        the same shape :mod:`repro.simtest.world` records. Empty when the
        archetype has nothing linearizable to check."""
        return []

    def consistency_violations(self) -> List[str]:
        """End-of-run consistency checks beyond linearizability (e.g.
        acked-implies-applied on every replica). Empty means clean."""
        return []

    def close(self) -> None:
        """Tear down transports and timers."""


@dataclass(frozen=True)
class ArchetypeInfo:
    name: str
    factory: Callable[[int], Archetype]
    description: str


@dataclass(frozen=True)
class TrafficInfo:
    name: str
    factory: Callable[[], Any]
    description: str


#: The registries. Plugins land here via the decorators below; the
#: built-ins register at import of :mod:`repro.workloads`.
ARCHETYPES: Dict[str, ArchetypeInfo] = {}
TRAFFIC_MODELS: Dict[str, TrafficInfo] = {}

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def _check_name(kind: str, name: str) -> None:
    if not name or not set(name) <= _NAME_CHARS:
        raise ConfigurationError(
            f"{kind} name {name!r} must be non-empty lowercase "
            "[a-z0-9_] (it becomes half of a 'archetype:traffic' scenario id)"
        )


def archetype(
    name: str,
    *,
    rate_rps: float,
    slo_target_s: float,
    description: str = "",
) -> Callable[[type], type]:
    """Class decorator registering an :class:`Archetype` subclass."""
    _check_name("archetype", name)

    def register(cls: type) -> type:
        if name in ARCHETYPES:
            raise ConfigurationError(f"archetype {name!r} already registered")
        if not issubclass(cls, Archetype):
            raise ConfigurationError(
                f"archetype {name!r} must subclass workloads.Archetype"
            )
        cls.name = name
        cls.rate_rps = float(rate_rps)
        cls.slo_target_s = float(slo_target_s)
        cls.description = description
        ARCHETYPES[name] = ArchetypeInfo(name, cls, description)
        return cls

    return register


def traffic_model(name: str, *, description: str = "") -> Callable[[type], type]:
    """Class decorator registering a :class:`~repro.workloads.traffic.TrafficModel`."""
    _check_name("traffic model", name)

    def register(cls: type) -> type:
        if name in TRAFFIC_MODELS:
            raise ConfigurationError(
                f"traffic model {name!r} already registered"
            )
        cls.name = name
        cls.description = description
        TRAFFIC_MODELS[name] = TrafficInfo(name, cls, description)
        return cls

    return register


# --------------------------------------------------------------- lookup


def scenario_names() -> List[str]:
    """Every registered scenario: the full archetype x traffic crossing."""
    return [
        f"{arch}:{traffic}"
        for arch in sorted(ARCHETYPES)
        for traffic in sorted(TRAFFIC_MODELS)
    ]


def parse_scenario(name: str) -> Tuple[ArchetypeInfo, TrafficInfo]:
    """Resolve ``"archetype:traffic"`` to its registry entries."""
    parts = name.split(":")
    if len(parts) != 2:
        raise ConfigurationError(
            f"scenario name {name!r} must be 'archetype:traffic'"
        )
    arch, traffic = parts
    if arch not in ARCHETYPES:
        raise ConfigurationError(
            f"unknown archetype {arch!r}; registered: {sorted(ARCHETYPES)}"
        )
    if traffic not in TRAFFIC_MODELS:
        raise ConfigurationError(
            f"unknown traffic model {traffic!r}; "
            f"registered: {sorted(TRAFFIC_MODELS)}"
        )
    return ARCHETYPES[arch], TRAFFIC_MODELS[traffic]
