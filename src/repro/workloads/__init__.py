"""Workload archetypes x traffic models: the scenario registry.

ROADMAP item 3. Importing this package registers the built-in archetypes
and traffic models; ``python -m repro.workloads list`` shows everything,
``run <archetype>:<traffic> --seed N`` executes one scenario and prints
its scorecard, and the same scenarios are sweep axes
(``python -m repro.experiments sweep workload:<scenario>``), chaos
substrates (``chaos_mix=...``), and simtest worlds
(:mod:`repro.simtest.workloads`).
"""

from repro.workloads.registry import (
    ARCHETYPES,
    TRAFFIC_MODELS,
    Archetype,
    ArchetypeInfo,
    TrafficInfo,
    archetype,
    parse_scenario,
    scenario_names,
    traffic_model,
)
from repro.workloads.scorecard import (
    SCHEMA,
    canonical_bytes,
    validate_scorecard,
)
from repro.workloads.traffic import Arrival, TrafficModel
from repro.workloads.runner import (
    DEFAULT_HORIZON_S,
    ScenarioRun,
    ScenarioSpec,
    parse_spec,
    run_scenario,
    sweep_rows,
)

# Register the built-ins (traffic models registered by the traffic import).
import repro.workloads.archetypes  # noqa: E402,F401

__all__ = [
    "ARCHETYPES",
    "TRAFFIC_MODELS",
    "Archetype",
    "ArchetypeInfo",
    "Arrival",
    "DEFAULT_HORIZON_S",
    "SCHEMA",
    "ScenarioRun",
    "ScenarioSpec",
    "TrafficInfo",
    "TrafficModel",
    "archetype",
    "canonical_bytes",
    "parse_scenario",
    "parse_spec",
    "run_scenario",
    "scenario_names",
    "sweep_rows",
    "traffic_model",
    "validate_scorecard",
]
