"""Built-in application archetypes.

Importing this package registers every built-in archetype; each module
holds one archetype built on a different slice of the middleware stack.
"""

from repro.workloads.archetypes import api, chat, patient, telemetry  # noqa: F401
