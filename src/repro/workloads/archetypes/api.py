"""Request–reply API traffic through admission-controlled RPC.

Two edge clients call an echo API on the hub. Each client fronts its RPC
endpoint with an :class:`~repro.qos.admission.AdmissionController` sized
below the archetype's peak offered rate, so diurnal crests and flash
crowds are shed at the edge (``refused``) instead of queueing into
collapse — the PR-9 overload-protection story as a workload.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import AdmissionRefused
from repro.netsim import topology
from repro.netsim.energy import Battery
from repro.qos.admission import AdmissionController, PriorityClass
from repro.transactions.rpc import RpcEndpoint
from repro.transport.base import Address
from repro.transport.simnet import SimFabric
from repro.workloads.registry import Archetype, archetype

_PORT = "api"
_CLIENTS = ("leaf0", "leaf1")


@archetype(
    "api_rpc",
    rate_rps=8.0,
    slo_target_s=0.2,
    description="request-reply API calls through edge admission control "
    "(peaks shed as refusals, not queues)",
)
class ApiRpc(Archetype):
    def __init__(self, seed: int):
        super().__init__(seed)
        self.network = topology.star(
            2, seed=seed, battery_factory=lambda _nid: Battery(5.0),
        )
        self.fabric = SimFabric(self.network)
        self.server = RpcEndpoint(self.fabric.endpoint("hub", _PORT))
        self.server.expose("echo", lambda n: n)
        self.clients: Dict[str, RpcEndpoint] = {}
        self.admissions: Dict[str, AdmissionController] = {}
        for client_id in _CLIENTS:
            transport = self.fabric.endpoint(client_id, f"{_PORT}.c")
            # Per-client guaranteed rate: half the nominal offered rate
            # plus headroom. Baseline traffic passes; diurnal peaks
            # (1.6x) and flash-crowd spikes (6x) exceed it and shed.
            admission = AdmissionController(
                transport.scheduler.now,
                capacity_per_s=self.rate_rps / 2 + 2.0,
                classes=[PriorityClass("api", self.rate_rps / 2 + 1.0)],
            )
            self.admissions[client_id] = admission
            self.clients[client_id] = RpcEndpoint(
                transport, admission=admission, admission_class="api",
            )

    def issue(self, index: int, size: int,
              done: Callable[[str], None]) -> None:
        client_id = _CLIENTS[index % len(_CLIENTS)]
        promise = self.clients[client_id].call(
            Address("hub", _PORT), "echo", {"n": size},
            timeout_s=1.0, retries=1,
        )

        def settle(settled) -> None:
            if settled.fulfilled and settled.result() == size:
                done("ok")
            elif isinstance(settled.error(), AdmissionRefused):
                done("refused")
            else:
                done("failed")

        promise.on_settle(settle)

    def fault_targets(self) -> Sequence[str]:
        return ("leaf1",)

    def partition_groups(self) -> Optional[List[List[str]]]:
        return [["leaf1"]]

    def detail(self) -> Dict[str, object]:
        return {
            "served": self.server.calls_served,
            "admission": {
                client_id: {
                    "admitted": self.admissions[client_id].admitted,
                    "rejected": self.admissions[client_id].rejected,
                }
                for client_id in _CLIENTS
            },
        }

    def close(self) -> None:
        self.server.transport.close()
        for client in self.clients.values():
            client.transport.close()
