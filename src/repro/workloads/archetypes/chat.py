"""Chat/pubsub fan-out over the Linda tuple space.

One publisher ``out``\\ s a message tuple per request; three subscribers
``rd`` it (non-destructive, so one write serves every reader — the
tuple-space idiom for fan-out). A request is done when the slowest
subscriber has the message, so latency here is *fan-out completion* time.

The tuple-space protocol has no timeouts or retries (a lost frame wedges
the pending promise forever), so this archetype runs on the lossless
``IDEAL_RADIO`` profile; loss injected by a chaos mix shows up as
``pending`` requests, which is the honest accounting for this protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.netsim import topology
from repro.netsim.energy import Battery
from repro.netsim.medium import IDEAL_RADIO
from repro.transactions.tuplespace import TupleSpaceClient, TupleSpaceServer
from repro.transport.base import Address
from repro.transport.simnet import SimFabric
from repro.workloads.registry import Archetype, archetype

_TS_PORT = "ts"
_SUBSCRIBERS = ("leaf1", "leaf2", "leaf3")


@archetype(
    "chat_fanout",
    rate_rps=3.0,
    slo_target_s=0.5,
    description="pubsub fan-out over the tuple space: one out, three "
    "subscriber rds per message",
)
class ChatFanout(Archetype):
    def __init__(self, seed: int):
        super().__init__(seed)
        self.network = topology.star(
            4, seed=seed, radio_profile=IDEAL_RADIO,
            battery_factory=lambda _nid: Battery(5.0),
        )
        self.fabric = SimFabric(self.network)
        self.server = TupleSpaceServer(self.fabric.endpoint("hub", _TS_PORT))
        space = Address("hub", _TS_PORT)
        self.publisher = TupleSpaceClient(
            self.fabric.endpoint("leaf0", f"{_TS_PORT}.pub"), space
        )
        self.subscribers = {
            leaf: TupleSpaceClient(
                self.fabric.endpoint(leaf, f"{_TS_PORT}.sub"), space
            )
            for leaf in _SUBSCRIBERS
        }
        self._history: List[Tuple[Any, ...]] = []

    def _record(self, obj: Tuple[Any, ...], client: str, op: str,
                args: Tuple[Any, ...], promise) -> None:
        if not self.record_history:
            return
        invoked = self.sim.now()
        slot = len(self._history)
        self._history.append(
            (obj, client, op, args, invoked, None, None)
        )
        promise.on_settle(
            lambda settled: self._history.__setitem__(
                slot,
                (obj, client, op, args, invoked, self.sim.now(),
                 settled.result() if settled.fulfilled else None),
            )
        )

    def issue(self, index: int, size: int,
              done: Callable[[str], None]) -> None:
        obj = ("ts", f"m{index}")
        payload = "x" * min(size, 512)
        # rd is non-destructive and the tuple persists, so subscribers need
        # not be armed before the out lands — late rds match the stored
        # tuple. Confirmed out keeps publish behavior (and therefore wire
        # traffic) identical whether or not history is being recorded.
        out_promise = self.publisher.out("chat", index, payload, confirm=True)
        assert out_promise is not None
        self._record(obj, "publisher", "out", ("chat", index, payload),
                     out_promise)
        remaining = {"n": len(self.subscribers)}

        def one_received(settled) -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                done("ok")

        for leaf, client in sorted(self.subscribers.items()):
            promise = client.rd("chat", index, None)
            self._record(obj, leaf, "rd", (), promise)
            promise.on_settle(one_received)

    def history(self) -> List[Tuple[Any, ...]]:
        return list(self._history)

    def detail(self) -> Dict[str, object]:
        return {
            "tuples_stored": len(self.server),
            "outs": self.server.outs,
            "reads": self.server.reads,
        }

    def close(self) -> None:
        self.server.transport.close()
        self.publisher.transport.close()
        for client in self.subscribers.values():
            client.transport.close()
