"""The paper's Section 4 archetype: a patient-monitoring sensor fleet.

A monitor on the star hub polls vital-sign sensors on battery-powered
leaves over the full middleware stack (discovery adverts, RPC with
retries). MiLAN decides which sensor answers for each variable, so the
request mix follows the QoS-aware selection rather than a fixed table.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.milan import Milan
from repro.core.policy import health_monitor_policy
from repro.core.sensors import SensorInfo
from repro.netsim import topology
from repro.netsim.energy import Battery
from repro.transport.base import Address
from repro.transport.simnet import SimFabric
from repro.middleware import MiddlewareNode
from repro.workloads.registry import Archetype, archetype

#: The Section 3.1 health-scenario sensors, one per leaf.
_SENSORS = (
    SensorInfo("bp-cuff", {"blood_pressure": 0.95}, active_power_w=0.02),
    SensorInfo("ecg", {"heart_rate": 0.95, "blood_pressure": 0.3},
               active_power_w=0.03),
    SensorInfo("ppg", {"heart_rate": 0.8, "oxygen_saturation": 0.9},
               active_power_w=0.01),
    SensorInfo("spo2", {"oxygen_saturation": 0.85}, active_power_w=0.012),
)

#: The vitals the monitor cycles through, one per request.
_VITALS = ("blood_pressure", "heart_rate", "oxygen_saturation")


@archetype(
    "patient_fleet",
    rate_rps=4.0,
    slo_target_s=0.3,
    description="Section 4 patient monitor polling MiLAN-selected "
    "vital-sign sensors over discovery + RPC",
)
class PatientFleet(Archetype):
    def __init__(self, seed: int):
        super().__init__(seed)
        self.network = topology.star(
            len(_SENSORS), seed=seed,
            battery_factory=lambda _nid: Battery(5.0),
        )
        self.fabric = SimFabric(self.network)
        self.nodes: Dict[str, MiddlewareNode] = {
            node_id: MiddlewareNode(self.fabric, node_id)
            for node_id in self.network.node_ids()
        }
        self.monitor = self.nodes["hub"]

        self.host_of: Dict[str, str] = {}
        for i, sensor in enumerate(_SENSORS):
            host = f"leaf{i}"
            self.host_of[sensor.sensor_id] = host
            self.nodes[host].provide(
                sensor.sensor_id, "vital-sensor",
                {"read": lambda variable, sid=sensor.sensor_id:
                    f"{sid}:{variable}"},
            )

        # MiLAN selects the sensor set; the monitor polls only selected
        # sensors, querying the most reliable one for each vital.
        self.milan = Milan(health_monitor_policy())
        for sensor in _SENSORS:
            self.milan.add_sensor(sensor)
        self.reads_by_sensor: Dict[str, int] = {}

    def _sensor_for(self, variable: str) -> SensorInfo:
        active = self.milan.active_sensor_ids()
        candidates = [
            s for s in _SENSORS
            if variable in s.reliabilities and (not active or s.sensor_id in active)
        ] or [s for s in _SENSORS if variable in s.reliabilities]
        return max(candidates,
                   key=lambda s: (s.reliabilities[variable], s.sensor_id))

    def issue(self, index: int, size: int,
              done: Callable[[str], None]) -> None:
        variable = _VITALS[index % len(_VITALS)]
        sensor = self._sensor_for(variable)
        host = self.host_of[sensor.sensor_id]
        self.reads_by_sensor[sensor.sensor_id] = (
            self.reads_by_sensor.get(sensor.sensor_id, 0) + 1
        )
        promise = self.monitor.rpc.call(
            Address(host, "svc"), "read", {"variable": variable},
            timeout_s=1.0, retries=2,
        )
        expected = f"{sensor.sensor_id}:{variable}"
        promise.on_settle(
            lambda settled: done(
                "ok" if settled.fulfilled and settled.result() == expected
                else "failed"
            )
        )

    def fault_targets(self) -> Sequence[str]:
        # ecg + spo2 hosts: MiLAN has fallback sensors for their vitals.
        return ("leaf1", "leaf3")

    def partition_groups(self) -> Optional[List[List[str]]]:
        return [["leaf1"], ["leaf3"]]

    def detail(self) -> Dict[str, object]:
        return {
            "milan_satisfied": self.milan.application_satisfied(),
            "active_sensors": sorted(self.milan.active_sensor_ids()),
            "reconfigurations": self.milan.reconfigurations,
            "reads_by_sensor": dict(sorted(self.reads_by_sensor.items())),
        }

    def close(self) -> None:
        for node in self.nodes.values():
            node.close()
