"""Telemetry ingestion into the replicated ledger.

A gateway streams per-shard telemetry totals into a three-member replica
group as idempotent ledger transfers (one account per shard, drawn from an
``ingress`` pool so conservation is checkable on every replica). Periodic
balance reads double as linearizable-read probes for the simtest oracles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.netsim import topology
from repro.netsim.energy import Battery
from repro.replication.client import GroupClient
from repro.replication.replica import ReplicationParams, deploy_group
from repro.replication.services import LedgerMachine, ReplicatedLedger
from repro.transport.base import Address
from repro.transport.simnet import SimFabric
from repro.workloads.registry import Archetype, archetype

_PORT = "rled"
_MEMBERS = ("n0_1", "n1_0", "n1_1")
_SHARDS = ("s0", "s1", "s2", "s3")
_INGRESS_POOL = 1_000_000

#: Tight timers: the group lives on a well-connected 2x2 grid, and chaos
#: mixes need failover to complete inside the scenario's fault window.
_PARAMS = ReplicationParams(
    hb_interval_s=0.5,
    hb_timeout_multiplier=3.0,
    elect_timeout_s=0.8,
    sync_timeout_s=0.8,
    coord_timeout_s=1.6,
    beacon_interval_s=0.5,
    write_timeout_s=4.0,
)


@archetype(
    "telemetry_ledger",
    rate_rps=6.0,
    slo_target_s=0.4,
    description="gateway ingesting telemetry as idempotent transfers into "
    "a 3-replica ledger group",
)
class TelemetryLedger(Archetype):
    def __init__(self, seed: int):
        super().__init__(seed)
        self.network = topology.grid(
            2, 2, spacing=60.0, seed=seed,
            battery_factory=lambda _nid: Battery(50.0),
        )
        self.fabric = SimFabric(self.network)
        self.initial_accounts: Dict[str, int] = {
            "ingress": _INGRESS_POOL, **{s: 0 for s in _SHARDS}
        }
        self.replicas = deploy_group(
            lambda node_id, port: self.fabric.endpoint(node_id, port),
            _MEMBERS,
            lambda: LedgerMachine(dict(self.initial_accounts)),
            port=_PORT, params=_PARAMS, group="tele",
        )
        self.client = GroupClient(
            self.fabric.endpoint("n0_0", f"{_PORT}.gw"),
            [Address(m, _PORT) for m in _MEMBERS],
            request_timeout_s=1.0, max_attempts=8,
        )
        self.ledger = ReplicatedLedger(self.client)
        self.acked: Dict[str, int] = {}
        self._history: List[Tuple[Any, ...]] = []
        # Balance probes run on a fixed cadence in every mode (history
        # recording must not change traffic); they start once the runner
        # drives the simulator.
        self._probe_index = 0
        self.sim.schedule_at(1.0, self._probe)

    def _probe(self) -> None:
        shard = _SHARDS[self._probe_index % len(_SHARDS)]
        self._probe_index += 1
        promise = self.ledger.balance(shard)
        self._record(("ledger",), "gateway", "balance", (shard,), promise)
        self.sim.schedule_at(self.sim.now() + 2.0, self._probe)

    def _record(self, obj: Tuple[Any, ...], client: str, op: str,
                args: Tuple[Any, ...], promise) -> None:
        if not self.record_history:
            return
        invoked = self.sim.now()
        slot = len(self._history)
        self._history.append((obj, client, op, args, invoked, None, None))
        promise.on_settle(
            lambda settled: self._history.__setitem__(
                slot,
                (obj, client, op, args, invoked, self.sim.now(),
                 settled.result() if settled.fulfilled else None),
            )
        )

    def issue(self, index: int, size: int,
              done: Callable[[str], None]) -> None:
        txid = f"t{index}"
        shard = _SHARDS[index % len(_SHARDS)]
        amount = 1 + size % 16
        promise = self.ledger.transfer(txid, "ingress", shard, amount)
        self._record(("ledger",), "gateway", "transfer",
                     (txid, "ingress", shard, amount), promise)

        def settle(settled) -> None:
            if settled.fulfilled and settled.result() is True:
                self.acked[txid] = amount
                done("ok")
            else:
                done("failed")

        promise.on_settle(settle)

    def fault_targets(self) -> Sequence[str]:
        # Backups only: the group keeps its 2/3 quorum through one crash.
        return ("n0_1", "n1_0")

    def partition_groups(self) -> Optional[List[List[str]]]:
        return [["n0_1"], ["n1_0"]]

    def history(self) -> List[Tuple[Any, ...]]:
        return list(self._history)

    def consistency_violations(self) -> List[str]:
        violations: List[str] = []
        total = sum(self.initial_accounts.values())
        head = self.replicas[_MEMBERS[0]]
        for member in _MEMBERS:
            machine = self.replicas[member].machine
            if sum(machine.balances.values()) != total:
                violations.append(
                    f"conservation broken on {member}: "
                    f"total={sum(machine.balances.values())}"
                )
            missing = set(self.acked) - machine.applied_txids
            if missing:
                violations.append(
                    f"{len(missing)} acked txids missing on {member}"
                )
        for member in _MEMBERS[1:]:
            replica = self.replicas[member]
            if (replica.applied_index != head.applied_index
                    or replica.machine.snapshot() != head.machine.snapshot()):
                violations.append(
                    f"{member} diverged from {_MEMBERS[0]} "
                    f"({replica.applied_index} != {head.applied_index})"
                )
        return violations

    def detail(self) -> Dict[str, object]:
        primaries = sorted(
            m for m in _MEMBERS if self.replicas[m].role == "primary"
        )
        return {
            "primary": primaries[0] if len(primaries) == 1 else None,
            "terms": {m: self.replicas[m].term for m in _MEMBERS},
            "applied_index": {
                m: self.replicas[m].applied_index for m in _MEMBERS
            },
            "acked": len(self.acked),
            "shard_totals": dict(
                sorted(
                    (s, self.replicas[_MEMBERS[0]].machine.balances.get(s, 0))
                    for s in _SHARDS
                )
            ),
        }

    def close(self) -> None:
        for replica in self.replicas.values():
            replica.close()
        self.client.close()
