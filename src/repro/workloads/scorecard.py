"""Scorecard schema, validation, and canonical byte encoding.

A scorecard is the single artifact a scenario run produces. Two rules make
it useful as a golden-test substrate:

1. **Canonical bytes.** :func:`canonical_bytes` is the only way scorecards
   are compared — sorted keys, no whitespace, UTF-8. Two runs agree iff
   their canonical bytes agree, so "byte-identical" has one definition
   shared by the conformance tests, the goldens, and the CI smoke step.

2. **Schema over taste.** :func:`validate_scorecard` checks structure
   (every section present, every field the right type) so a scenario that
   forgets to fill in its SLO section fails loudly in the conformance
   suite instead of producing a quietly hollow golden.

Floats in scorecards come from the deterministic virtual-time simulator and
seeded RNG streams, so their ``repr`` round-trips exactly — JSON encoding
does not introduce cross-run drift.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

#: section -> field -> allowed types. ``dict`` values are free-form
#: (archetype- or mix-specific) but must be dicts.
SCHEMA: Dict[str, Dict[str, tuple]] = {
    "": {  # top-level scalars
        "scenario": (str,),
        "archetype": (str,),
        "traffic": (str,),
        "seed": (int,),
        "horizon_s": (float, int),
        "ok": (bool,),
    },
    "offered": {
        "arrivals": (int,),
        "bytes": (int,),
        "closed_loop": (bool,),
    },
    "latency": {
        "count": (int,),
        "p50_s": (float, int),
        "p95_s": (float, int),
        "p99_s": (float, int),
        "max_s": (float, int),
    },
    "goodput": {
        "ok": (int,),
        "ok_per_s": (float, int),
    },
    "energy": {
        "consumed": (float, int),
        "capacity": (float, int),
    },
    "slo": {
        "target_s": (float, int),
        "violations": (int,),
        "violation_fraction": (float, int),
        "met": (bool,),
    },
    "drops": {
        "refused": (int,),
        "failed": (int,),
        "pending": (int,),
    },
    "faults": {},           # free-form counts from the chaos mix (or empty)
    "traffic_spec": {},     # the traffic model's spec() dict
    "archetype_detail": {},  # archetype-specific detail() dict
}


def canonical_bytes(card: Mapping[str, Any]) -> bytes:
    """The one true encoding used for byte-identity comparisons."""
    return json.dumps(
        card, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def validate_scorecard(card: Mapping[str, Any]) -> List[str]:
    """Return a list of schema violations (empty means valid)."""
    problems: List[str] = []
    if not isinstance(card, Mapping):
        return [f"scorecard must be a mapping, got {type(card).__name__}"]

    for section, fields in SCHEMA.items():
        if section == "":
            holder: Any = card
            where = "top level"
        else:
            if section not in card:
                problems.append(f"missing section {section!r}")
                continue
            holder = card[section]
            where = section
            if not isinstance(holder, Mapping):
                problems.append(f"section {section!r} must be a mapping")
                continue
        for field, types in fields.items():
            if field not in holder:
                problems.append(f"{where}: missing field {field!r}")
            elif not isinstance(holder[field], types) or (
                # bool is an int subclass; reject it where ints are expected
                types == (int,) and isinstance(holder[field], bool)
            ):
                problems.append(
                    f"{where}: field {field!r} has type "
                    f"{type(holder[field]).__name__}, expected "
                    f"{'/'.join(t.__name__ for t in types)}"
                )

    known = {s for s in SCHEMA if s}
    known |= set(SCHEMA[""])
    for key in card:
        if key not in known:
            problems.append(f"unknown top-level key {key!r}")

    if not problems:
        lat, off = card["latency"], card["offered"]
        drops = card["drops"]
        settled = card["goodput"]["ok"] + drops["failed"] + drops["refused"]
        if settled + drops["pending"] != off["arrivals"]:
            problems.append(
                "accounting: ok+failed+refused+pending "
                f"({settled + drops['pending']}) != arrivals "
                f"({off['arrivals']})"
            )
        if lat["count"] > off["arrivals"]:
            problems.append("latency count exceeds arrivals")
        frac = card["slo"]["violation_fraction"]
        if not 0.0 <= frac <= 1.0:
            problems.append(f"slo.violation_fraction {frac} outside [0,1]")
    return problems
