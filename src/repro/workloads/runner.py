"""Compile ``(archetype, traffic, seed)`` into a run; emit a scorecard.

The determinism contract: a scorecard is a pure function of
``(scenario name, seed)`` plus the explicit spec overrides. The runner
resets the process-wide metrics registry at the start of every run, all
randomness flows through label-split streams of the seed, and all times
are virtual — so two runs of the same spec produce byte-identical
canonical scorecards (:func:`repro.workloads.scorecard.canonical_bytes`),
in this process or any other.

Division of labor: the *archetype* decides what one request is, the
*traffic model* decides when requests arrive, and the runner owns
everything else — scheduling, latency measurement, SLO judgment, energy
accounting, optional chaos fault composition, and scorecard assembly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.netsim.chaos import schedule_mix_faults
from repro.netsim.failures import FailureInjector
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.workloads.registry import (
    ARCHETYPES,
    TRAFFIC_MODELS,
    Archetype,
    parse_scenario,
)
from repro.workloads.scorecard import validate_scorecard

#: Default scenario length. Long enough for a full diurnal cycle and a
#: flash-crowd spike-and-recovery at the built-in archetype rates.
DEFAULT_HORIZON_S = 24.0

#: Quiesce time past the horizon: in-flight requests settle, replica
#: groups converge, chaos heals complete before invariants are judged.
GRACE_S = 8.0

#: A scenario meets its SLO when at most this fraction of arrivals
#: violated the latency target (or failed outright).
SLO_BUDGET = 0.05


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario configuration; everything derives from these fields."""

    archetype: str
    traffic: str
    seed: int = 0
    horizon_s: float = DEFAULT_HORIZON_S
    chaos_mix: Optional[str] = None
    record_history: bool = False

    def __post_init__(self) -> None:
        parse_scenario(self.name)  # raises on unknown halves
        if self.horizon_s <= 0:
            raise ConfigurationError(
                f"horizon must be positive, got {self.horizon_s!r}"
            )

    @property
    def name(self) -> str:
        return f"{self.archetype}:{self.traffic}"


def parse_spec(name: str, seed: int = 0, **overrides: Any) -> ScenarioSpec:
    arch_info, traffic_info = parse_scenario(name)
    return ScenarioSpec(
        archetype=arch_info.name, traffic=traffic_info.name, seed=seed,
        **overrides,
    )


class ScenarioRun:
    """Builds the deployment, drives traffic, and assembles the scorecard."""

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec
        self.registry = get_registry()
        self.registry.reset()

        self.archetype: Archetype = ARCHETYPES[spec.archetype].factory(spec.seed)
        self.archetype.record_history = spec.record_history
        self.traffic = TRAFFIC_MODELS[spec.traffic].factory()
        if self.archetype.network is None:
            raise ConfigurationError(
                f"archetype {spec.archetype!r} did not set self.network"
            )
        self.sim = self.archetype.network.sim
        self.latency = self.registry.histogram(
            "workload.latency_s", scenario=spec.name
        )

        # Per-node energy baseline (finite batteries only).
        self._battery_start: Dict[str, float] = {}
        for node in self.archetype.network.nodes():
            if math.isfinite(node.battery.capacity):
                self._battery_start[node.node_id] = node.battery.remaining

        self.issued = 0
        self.offered_bytes = 0
        self.ok = 0
        self.failed = 0
        self.refused = 0
        self.slo_violations = 0

        self.fault_counts: Dict[str, int] = {}
        self.last_heal_s = 0.0
        if spec.chaos_mix is not None:
            injector = FailureInjector(self.archetype.network, seed=spec.seed)
            self.fault_counts, self.last_heal_s = schedule_mix_faults(
                injector, spec.chaos_mix, spec.seed,
                start_s=0.25 * spec.horizon_s, end_s=0.75 * spec.horizon_s,
                crash_targets=self.archetype.fault_targets(),
                partition_groups=self.archetype.partition_groups(),
                label=spec.name,
            )

        if self.traffic.closed_loop:
            self._schedule_closed_loop()
        else:
            self._schedule_open_loop()

    # ------------------------------------------------------------- traffic

    def _issue(self, index: int, size: int, and_then=None) -> None:
        self.issued += 1
        self.offered_bytes += size
        started = self.sim.now()
        once = {"settled": False}

        def done(status: str) -> None:
            if once["settled"]:
                return
            once["settled"] = True
            if status == "ok":
                self.ok += 1
                elapsed = self.sim.now() - started
                self.latency.observe(elapsed)
                if elapsed > self.archetype.slo_target_s:
                    self.slo_violations += 1
            elif status == "refused":
                self.refused += 1
            else:
                self.failed += 1
                self.slo_violations += 1
            if and_then is not None:
                and_then()

        self.archetype.issue(index, size, done)

    def _schedule_open_loop(self) -> None:
        arrivals = self.traffic.arrivals(
            self.spec.seed, self.spec.horizon_s, self.archetype.rate_rps
        )
        for index, arrival in enumerate(arrivals):
            self.sim.schedule_at(arrival.at, self._issue, index, arrival.size)

    def _schedule_closed_loop(self) -> None:
        counter = {"index": 0}
        size = self.traffic.size_bytes

        def loop(client: int, rng) -> None:
            if self.sim.now() >= self.spec.horizon_s:
                return
            index = counter["index"]
            counter["index"] += 1

            def next_request() -> None:
                # The closed loop: think, then issue the next request.
                self.sim.schedule_at(
                    self.sim.now()
                    + self.traffic.think_s(rng, self.archetype.rate_rps),
                    loop, client, rng,
                )

            self._issue(index, size, and_then=next_request)

        for client in range(self.traffic.clients):
            rng = self.traffic.client_stream(self.spec.seed, client)
            first = self.traffic.think_s(rng, self.archetype.rate_rps)
            self.sim.schedule_at(first, loop, client, rng)

    # --------------------------------------------------------------- running

    def run(self) -> Dict[str, Any]:
        spec = self.spec
        TRACER.instant("workload.start", scenario=spec.name, seed=spec.seed)
        self.sim.run_until(spec.horizon_s)
        self.sim.run_until(
            max(spec.horizon_s, self.last_heal_s) + GRACE_S
        )
        card = self._scorecard()
        problems = validate_scorecard(card)
        if problems:  # a registry bug, not a scenario outcome
            raise ConfigurationError(
                f"scenario {spec.name!r} produced an invalid scorecard: "
                + "; ".join(problems)
            )
        self._publish(card)
        self.archetype.close()
        return card

    def _scorecard(self) -> Dict[str, Any]:
        spec = self.spec
        arch = self.archetype
        pending = self.issued - self.ok - self.failed - self.refused
        consumed = 0.0
        capacity = 0.0
        for node in arch.network.nodes():
            start = self._battery_start.get(node.node_id)
            if start is not None:
                consumed += start - node.battery.remaining
                capacity += node.battery.capacity
        violation_fraction = (
            self.slo_violations / self.issued if self.issued else 0.0
        )
        violations = arch.consistency_violations()
        detail = dict(arch.detail())
        detail["consistency_violations"] = sorted(violations)
        return {
            "scenario": spec.name,
            "archetype": spec.archetype,
            "traffic": spec.traffic,
            "seed": spec.seed,
            "horizon_s": round(spec.horizon_s, 9),
            "offered": {
                "arrivals": self.issued,
                "bytes": self.offered_bytes,
                "closed_loop": bool(self.traffic.closed_loop),
            },
            "latency": {
                "count": self.latency.count,
                "p50_s": round(self.latency.quantile(0.50), 9),
                "p95_s": round(self.latency.quantile(0.95), 9),
                "p99_s": round(self.latency.quantile(0.99), 9),
                "max_s": round(
                    self.latency.maximum if self.latency.count else 0.0, 9
                ),
            },
            "goodput": {
                "ok": self.ok,
                "ok_per_s": round(self.ok / spec.horizon_s, 9),
            },
            "energy": {
                "consumed": round(consumed, 9),
                "capacity": round(capacity, 9),
            },
            "slo": {
                "target_s": round(arch.slo_target_s, 9),
                "violations": self.slo_violations,
                "violation_fraction": round(violation_fraction, 9),
                "met": violation_fraction <= SLO_BUDGET,
            },
            "drops": {
                "refused": self.refused,
                "failed": self.failed,
                "pending": pending,
            },
            "faults": dict(self.fault_counts),
            "traffic_spec": self.traffic.spec(),
            "archetype_detail": detail,
            "ok": not violations,
        }

    def _publish(self, card: Dict[str, Any]) -> None:
        labels = {"scenario": self.spec.name, "seed": str(self.spec.seed)}
        self.registry.gauge("workload.goodput_per_s", **labels).set(
            card["goodput"]["ok_per_s"]
        )
        self.registry.counter("workload.slo_violations", **labels).inc(
            card["slo"]["violations"]
        )
        self.registry.counter("workload.refused", **labels).inc(
            card["drops"]["refused"]
        )
        TRACER.instant(
            "workload.end", scenario=self.spec.name, seed=self.spec.seed,
            ok=card["ok"],
        )


def run_scenario(name: str, seed: int = 0, **overrides: Any) -> Dict[str, Any]:
    """Run one scenario end to end; returns its scorecard."""
    return ScenarioRun(parse_spec(name, seed, **overrides)).run()


def sweep_rows(name: str, seed: int, **overrides: Any) -> Dict[str, Any]:
    """One flat result row per scenario run, for the sweep runner."""
    card = run_scenario(name, seed, **overrides)
    return {
        "scenario": name,
        "seed": seed,
        "arrivals": card["offered"]["arrivals"],
        "ok": card["goodput"]["ok"],
        "ok_per_s": card["goodput"]["ok_per_s"],
        "p95_s": card["latency"]["p95_s"],
        "slo_violations": card["slo"]["violations"],
        "slo_met": card["slo"]["met"],
        "refused": card["drops"]["refused"],
        "failed": card["drops"]["failed"],
        "pending": card["drops"]["pending"],
        "energy_consumed": card["energy"]["consumed"],
        "consistent": card["ok"],
    }
