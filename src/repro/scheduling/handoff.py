"""Transaction handoff for departing suppliers.

Section 3.7: "if a service is about to be discontinued (e.g., a mobile
service moving out of range), then the transactions involving it should be
either completed, or transferred to different services matching the
constraints. These interactions can be scheduled with high priority, and
possibly allocated more bandwidth."

The :class:`HandoffManager` watches the physical distance between each
active transaction's consumer and supplier nodes. When a supplier crosses
``warn_fraction`` of radio range, the manager (a) boosts the transaction's
bandwidth flow to privileged, and (b) asks the transaction manager to
transfer it to another matching supplier — *before* the link breaks.
Experiment E7 runs the same mobile scenario with the manager on and off.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.errors import ConfigurationError
from repro.netsim.network import Network
from repro.scheduling.bandwidth import BandwidthAllocator
from repro.transactions.manager import TransactionManager
from repro.transactions.transaction import Transaction
from repro.util.events import EventEmitter


class HandoffManager:
    """Proactive, position-aware transaction migration."""

    def __init__(
        self,
        network: Network,
        manager: TransactionManager,
        consumer_node_id: str,
        warn_fraction: float = 0.8,
        check_interval_s: float = 1.0,
        bandwidth: Optional[BandwidthAllocator] = None,
    ):
        if not 0.0 < warn_fraction <= 1.0:
            raise ConfigurationError(
                f"warn fraction must be in (0, 1], got {warn_fraction!r}"
            )
        self.network = network
        self.manager = manager
        self.consumer_node_id = consumer_node_id
        self.warn_fraction = warn_fraction
        self.check_interval_s = check_interval_s
        self.bandwidth = bandwidth
        self.events = EventEmitter()
        self.handoffs_initiated = 0
        self._in_progress: Set[str] = set()
        self._boosted: Dict[str, str] = {}  # transaction id -> flow id
        self._timer = network.sim.schedule(check_interval_s, self._check)
        manager.events.on("transferred", self._on_transferred)

    # ------------------------------------------------------------ monitoring

    def _range_m(self) -> float:
        return self.network.medium.profile.range_m

    def _supplier_node_id(self, transaction: Transaction) -> Optional[str]:
        provider = transaction.supplier.provider
        node_id = provider.split(":", 1)[0]
        return node_id if node_id in self.network else None

    def _check(self) -> None:
        consumer = self.network.node(self.consumer_node_id)
        threshold = self.warn_fraction * self._range_m()
        for transaction in self.manager.transactions():
            if not transaction.active:
                continue
            if transaction.transaction_id in self._in_progress:
                continue
            supplier_id = self._supplier_node_id(transaction)
            if supplier_id is None:
                continue
            supplier = self.network.node(supplier_id)
            if not supplier.alive:
                continue
            if consumer.distance_to(supplier) >= threshold:
                self._initiate(transaction)
        self._timer = self.network.sim.schedule(self.check_interval_s, self._check)

    # -------------------------------------------------------------- handoff

    def _initiate(self, transaction: Transaction) -> None:
        self.handoffs_initiated += 1
        self._in_progress.add(transaction.transaction_id)
        if self.bandwidth is not None:
            flow_id = f"txn:{transaction.transaction_id}"
            if flow_id in self.bandwidth._flows:
                self.bandwidth.set_privileged(flow_id, True)
                self._boosted[transaction.transaction_id] = flow_id
        self.events.emit("handoff_started", transaction)
        self.manager.request_transfer(transaction)

    def _on_transferred(self, transaction: Transaction, old_supplier: str) -> None:
        if transaction.transaction_id not in self._in_progress:
            return
        self._in_progress.discard(transaction.transaction_id)
        flow_id = self._boosted.pop(transaction.transaction_id, None)
        if flow_id is not None and self.bandwidth is not None:
            self.bandwidth.set_privileged(flow_id, False)
        self.events.emit("handoff_completed", transaction, old_supplier)

    def stop(self) -> None:
        self._timer.cancel()
