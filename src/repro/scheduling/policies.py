"""Scheduling policies.

A policy maps a ready task to a sortable key; the scheduler always runs the
task with the smallest key and preempts when a smaller key arrives. Ties
break on activation time then task id, keeping runs deterministic.
"""

from __future__ import annotations

import math
from typing import Protocol, Tuple, runtime_checkable

from repro.scheduling.task import ScheduledTask

Key = Tuple[float, float, str]


@runtime_checkable
class SchedulingPolicy(Protocol):
    """Smaller key = runs first."""

    name: str

    def key(self, task: ScheduledTask, now: float) -> Key:
        ...


class FifoPolicy:
    """First come, first served — the no-policy baseline."""

    name = "fifo"

    def key(self, task: ScheduledTask, now: float) -> Key:
        return (task.activation_time, task.activation_time, task.task_id)


class PriorityPolicy:
    """Static priority (larger ``priority`` runs first)."""

    name = "priority"

    def key(self, task: ScheduledTask, now: float) -> Key:
        return (-float(task.priority), task.activation_time, task.task_id)


class EdfPolicy:
    """Earliest deadline first — optimal on a single processor."""

    name = "edf"

    def key(self, task: ScheduledTask, now: float) -> Key:
        return (task.absolute_deadline(), task.activation_time, task.task_id)


class RateMonotonicPolicy:
    """Shorter period = higher priority; aperiodic tasks run in the
    background (after all periodic ones)."""

    name = "rm"

    def key(self, task: ScheduledTask, now: float) -> Key:
        period = task.period_s if task.period_s is not None else float("inf")
        return (period, task.activation_time, task.task_id)


def rm_utilization_bound(n: int) -> float:
    """Liu & Layland's sufficient schedulability bound n(2^(1/n) - 1).

    A periodic task set with total utilization below this bound is
    guaranteed schedulable under rate-monotonic priorities.
    """
    if n <= 0:
        raise ValueError(f"task count must be positive, got {n}")
    return n * (2.0 ** (1.0 / n) - 1.0)


def total_utilization(tasks: list[ScheduledTask]) -> float:
    return math.fsum(t.utilization for t in tasks)


def rm_admissible(tasks: list[ScheduledTask]) -> bool:
    """Sufficient (not necessary) admission test for RM scheduling."""
    periodic = [t for t in tasks if t.periodic]
    if not periodic:
        return True
    return total_utilization(periodic) <= rm_utilization_bound(len(periodic))
