"""Bandwidth allocation.

Section 3.7: transactions of departing services "can be scheduled with high
priority, and possibly allocated more bandwidth"; the literature review also
cites bandwidth-reservation middleware [60]. A :class:`TokenBucket` paces
one flow; a :class:`BandwidthAllocator` manages reservations over a shared
link with admission control and lets privileged flows borrow headroom.

The allocator is *conserving*: across any schedule of ``reserve`` /
``release`` / ``try_send`` calls, the bits it grants inside a window
``[t0, t1]`` never exceed ``capacity_bps * (t1 - t0) + capacity_bps *
burst_s``. Three rules make that hold (and the Hypothesis property test in
``tests/test_bandwidth.py`` checks it under churn):

* every bucket rebuild carries the wall clock (``now``) so a rebuilt
  bucket never retro-refills from time it did not live through;
* a new reservation's initial burst is *carved out of the headroom
  bucket* rather than minted, so reserve/release churn cannot create
  tokens out of thin air;
* releasing a flow returns its unspent tokens to the headroom bucket
  (clamped to the headroom burst), never to a fresh full bucket.

Callers that pace real traffic should pass the current virtual time to
``reserve``/``release`` (the default ``now=0.0`` keeps construction-time
reservations byte-compatible with the historical behavior).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AdmissionRefused, ConfigurationError


@dataclass
class TokenBucket:
    """Classic token bucket: ``rate_bps`` sustained, ``burst_bits`` burst."""

    rate_bps: float
    burst_bits: float
    tokens: float = -1.0
    last_update: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate_bps!r}")
        if self.burst_bits <= 0:
            raise ConfigurationError(f"burst must be positive, got {self.burst_bits!r}")
        if self.tokens < 0:
            self.tokens = self.burst_bits

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last_update)
        self.tokens = min(self.burst_bits, self.tokens + elapsed * self.rate_bps)
        self.last_update = now

    def try_consume(self, bits: float, now: float) -> bool:
        """Take ``bits`` if available; returns False (taking nothing) if not."""
        self._refill(now)
        if bits <= self.tokens:
            self.tokens -= bits
            return True
        return False

    def time_until_available(self, bits: float, now: float) -> float:
        """Seconds until ``bits`` tokens will exist (0 if available now)."""
        self._refill(now)
        if bits <= self.tokens:
            return 0.0
        if bits > self.burst_bits:
            return float("inf")  # can never burst that much at once
        return (bits - self.tokens) / self.rate_bps


class BandwidthAllocator:
    """Reservation-based sharing of one link's capacity.

    Flows reserve a sustained rate; admission fails when the sum of
    reservations would exceed capacity. A flow marked privileged (the
    "about to hand off" case) may additionally draw from the unreserved
    headroom bucket.
    """

    def __init__(self, capacity_bps: float, burst_s: float = 0.25):
        if capacity_bps <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_bps!r}")
        self.capacity_bps = capacity_bps
        self.burst_s = burst_s
        self._flows: Dict[str, TokenBucket] = {}
        self._privileged: Dict[str, bool] = {}
        self._reserved_bps = 0.0
        self._headroom: Optional[TokenBucket] = TokenBucket(
            capacity_bps, capacity_bps * burst_s
        )

    def _rebuild_headroom(self, now: float, carry_tokens: float) -> None:
        """Re-size the headroom bucket to the current free rate.

        ``carry_tokens`` is the token balance the new bucket inherits
        (clamped to its burst). The bucket is stamped with ``now`` so its
        first refill covers only time that actually elapses after the
        rebuild — constructing it with the default ``last_update=0.0``
        would hand the next ``try_send`` a full retroactive refill.
        """
        free = max(0.0, self.capacity_bps - self._reserved_bps)
        if free > 0:
            self._headroom = TokenBucket(
                free, free * self.burst_s,
                tokens=min(max(carry_tokens, 0.0), free * self.burst_s),
                last_update=now,
            )
        else:
            self._headroom = None

    def _recompute_reserved(self) -> None:
        # Recomputed from the live flows instead of maintained by +=/-=:
        # float increments drift over reserve/release churn and eventually
        # refuse admissions that fit (or admit over capacity).
        self._reserved_bps = sum(b.rate_bps for b in self._flows.values())

    # ------------------------------------------------------------ reservation

    def reserve(self, flow_id: str, rate_bps: float,
                privileged: bool = False, now: float = 0.0) -> None:
        """Admit a flow at ``rate_bps``; raises :class:`AdmissionRefused`
        when the link cannot carry it alongside existing reservations.

        The flow's initial burst is funded by the headroom bucket: it gets
        ``min(rate_bps * burst_s, headroom tokens at now)``, and that amount
        leaves the headroom. A fresh allocator therefore still grants every
        first reservation its full burst, but churning reservations cannot
        mint tokens the link never had.
        """
        if flow_id in self._flows:
            raise ConfigurationError(f"flow {flow_id!r} already reserved")
        if self._reserved_bps + rate_bps > self.capacity_bps:
            raise AdmissionRefused(
                f"cannot reserve {rate_bps:g} bps for {flow_id!r}: "
                f"{self.capacity_bps - self._reserved_bps:g} bps free"
            )
        available = 0.0
        if self._headroom is not None:
            self._headroom._refill(now)
            available = self._headroom.tokens
        initial = min(rate_bps * self.burst_s, available)
        self._flows[flow_id] = TokenBucket(
            rate_bps, rate_bps * self.burst_s,
            # A zero carve-out still needs a live bucket; tokens=0 is valid.
            tokens=initial, last_update=now,
        )
        self._privileged[flow_id] = privileged
        self._recompute_reserved()
        self._rebuild_headroom(now, available - initial)

    def release(self, flow_id: str, now: float = 0.0) -> None:
        """Drop a reservation; unspent tokens return to the headroom."""
        bucket = self._flows.pop(flow_id, None)
        self._privileged.pop(flow_id, None)
        if bucket is not None:
            bucket._refill(now)
            carry = bucket.tokens
            if self._headroom is not None:
                self._headroom._refill(now)
                carry += self._headroom.tokens
            self._recompute_reserved()
            self._rebuild_headroom(now, carry)

    def set_privileged(self, flow_id: str, privileged: bool) -> None:
        """Boost (or unboost) a flow — the handoff manager calls this."""
        if flow_id not in self._flows:
            raise ConfigurationError(f"unknown flow {flow_id!r}")
        self._privileged[flow_id] = privileged

    @property
    def reserved_bps(self) -> float:
        return self._reserved_bps

    @property
    def free_bps(self) -> float:
        return max(0.0, self.capacity_bps - self._reserved_bps)

    def flows(self) -> Dict[str, float]:
        """Live reservations: flow id -> reserved rate (bps)."""
        return {fid: b.rate_bps for fid, b in self._flows.items()}

    # ------------------------------------------------------------------ usage

    def try_send(self, flow_id: str, bits: float, now: float) -> bool:
        """Charge ``bits`` against the flow's reservation (and headroom for
        privileged flows). Returns False if the flow must wait."""
        bucket = self._flows.get(flow_id)
        if bucket is None:
            raise ConfigurationError(f"unknown flow {flow_id!r}")
        if bucket.try_consume(bits, now):
            return True
        if self._privileged.get(flow_id) and self._headroom is not None:
            return self._headroom.try_consume(bits, now)
        return False

    def time_until_available(self, flow_id: str, bits: float, now: float) -> float:
        """Seconds until ``try_send(flow_id, bits)`` would succeed.

        For a privileged flow this is the *minimum* over its own bucket and
        the headroom bucket — the flow's own refill estimate alone would
        make callers sleep longer than ``try_send`` actually requires.
        """
        bucket = self._flows.get(flow_id)
        if bucket is None:
            raise ConfigurationError(f"unknown flow {flow_id!r}")
        wait = bucket.time_until_available(bits, now)
        if self._privileged.get(flow_id) and self._headroom is not None:
            wait = min(wait, self._headroom.time_until_available(bits, now))
        return wait
