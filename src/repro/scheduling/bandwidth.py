"""Bandwidth allocation.

Section 3.7: transactions of departing services "can be scheduled with high
priority, and possibly allocated more bandwidth"; the literature review also
cites bandwidth-reservation middleware [60]. A :class:`TokenBucket` paces
one flow; a :class:`BandwidthAllocator` manages reservations over a shared
link with admission control and lets privileged flows borrow headroom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AdmissionRefused, ConfigurationError


@dataclass
class TokenBucket:
    """Classic token bucket: ``rate_bps`` sustained, ``burst_bits`` burst."""

    rate_bps: float
    burst_bits: float
    tokens: float = -1.0
    last_update: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate_bps!r}")
        if self.burst_bits <= 0:
            raise ConfigurationError(f"burst must be positive, got {self.burst_bits!r}")
        if self.tokens < 0:
            self.tokens = self.burst_bits

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last_update)
        self.tokens = min(self.burst_bits, self.tokens + elapsed * self.rate_bps)
        self.last_update = now

    def try_consume(self, bits: float, now: float) -> bool:
        """Take ``bits`` if available; returns False (taking nothing) if not."""
        self._refill(now)
        if bits <= self.tokens:
            self.tokens -= bits
            return True
        return False

    def time_until_available(self, bits: float, now: float) -> float:
        """Seconds until ``bits`` tokens will exist (0 if available now)."""
        self._refill(now)
        if bits <= self.tokens:
            return 0.0
        if bits > self.burst_bits:
            return float("inf")  # can never burst that much at once
        return (bits - self.tokens) / self.rate_bps


class BandwidthAllocator:
    """Reservation-based sharing of one link's capacity.

    Flows reserve a sustained rate; admission fails when the sum of
    reservations would exceed capacity. A flow marked privileged (the
    "about to hand off" case) may additionally draw from the unreserved
    headroom bucket.
    """

    def __init__(self, capacity_bps: float, burst_s: float = 0.25):
        if capacity_bps <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_bps!r}")
        self.capacity_bps = capacity_bps
        self.burst_s = burst_s
        self._flows: Dict[str, TokenBucket] = {}
        self._privileged: Dict[str, bool] = {}
        self._reserved_bps = 0.0
        self._headroom: Optional[TokenBucket] = None
        self._rebuild_headroom()

    def _rebuild_headroom(self) -> None:
        free = max(0.0, self.capacity_bps - self._reserved_bps)
        if free > 0:
            tokens = self._headroom.tokens if self._headroom else -1.0
            self._headroom = TokenBucket(free, free * self.burst_s, tokens=min(
                tokens, free * self.burst_s) if tokens >= 0 else -1.0)
        else:
            self._headroom = None

    # ------------------------------------------------------------ reservation

    def reserve(self, flow_id: str, rate_bps: float, privileged: bool = False) -> None:
        """Admit a flow at ``rate_bps``; raises :class:`AdmissionRefused`
        when the link cannot carry it alongside existing reservations."""
        if flow_id in self._flows:
            raise ConfigurationError(f"flow {flow_id!r} already reserved")
        if self._reserved_bps + rate_bps > self.capacity_bps:
            raise AdmissionRefused(
                f"cannot reserve {rate_bps:g} bps for {flow_id!r}: "
                f"{self.capacity_bps - self._reserved_bps:g} bps free"
            )
        self._flows[flow_id] = TokenBucket(rate_bps, rate_bps * self.burst_s)
        self._privileged[flow_id] = privileged
        self._reserved_bps += rate_bps
        self._rebuild_headroom()

    def release(self, flow_id: str) -> None:
        bucket = self._flows.pop(flow_id, None)
        self._privileged.pop(flow_id, None)
        if bucket is not None:
            self._reserved_bps -= bucket.rate_bps
            self._rebuild_headroom()

    def set_privileged(self, flow_id: str, privileged: bool) -> None:
        """Boost (or unboost) a flow — the handoff manager calls this."""
        if flow_id not in self._flows:
            raise ConfigurationError(f"unknown flow {flow_id!r}")
        self._privileged[flow_id] = privileged

    @property
    def reserved_bps(self) -> float:
        return self._reserved_bps

    @property
    def free_bps(self) -> float:
        return max(0.0, self.capacity_bps - self._reserved_bps)

    # ------------------------------------------------------------------ usage

    def try_send(self, flow_id: str, bits: float, now: float) -> bool:
        """Charge ``bits`` against the flow's reservation (and headroom for
        privileged flows). Returns False if the flow must wait."""
        bucket = self._flows.get(flow_id)
        if bucket is None:
            raise ConfigurationError(f"unknown flow {flow_id!r}")
        if bucket.try_consume(bits, now):
            return True
        if self._privileged.get(flow_id) and self._headroom is not None:
            return self._headroom.try_consume(bits, now)
        return False
