"""Schedulable tasks.

A :class:`ScheduledTask` is a unit of middleware work — typically the
processing step of one transaction delivery — with a cost (execution time on
the virtual processor), an optional relative deadline, a priority, and an
optional period (periodic tasks re-arrive automatically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError

Action = Callable[[], Any]


@dataclass
class ScheduledTask:
    """One schedulable unit.

    Attributes:
        task_id: unique identifier.
        cost_s: processor time a single activation consumes.
        deadline_s: relative deadline from activation (None = best-effort).
        priority: larger = more urgent (used by PriorityPolicy).
        period_s: re-activation period (None = one-shot).
        action: optional callback run at completion of each activation.
    """

    task_id: str
    cost_s: float
    deadline_s: Optional[float] = None
    priority: int = 0
    period_s: Optional[float] = None
    action: Optional[Action] = field(default=None, repr=False)

    # Per-activation bookkeeping, managed by the scheduler.
    activation_time: float = 0.0
    remaining_s: float = 0.0
    activations: int = 0
    completions: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.cost_s <= 0:
            raise ConfigurationError(f"task cost must be positive, got {self.cost_s!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline_s!r}"
            )
        if self.period_s is not None and self.period_s <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period_s!r}")

    @property
    def periodic(self) -> bool:
        return self.period_s is not None

    @property
    def utilization(self) -> float:
        """cost/period for periodic tasks; 0 for one-shots."""
        if self.period_s is None:
            return 0.0
        return self.cost_s / self.period_s

    def absolute_deadline(self) -> float:
        """Deadline of the current activation (inf when best-effort)."""
        if self.deadline_s is None:
            return float("inf")
        return self.activation_time + self.deadline_s
