"""Grid task-to-processor scheduling.

Section 3.7's closing observation: "Similar scheduling concerns arise in
grid computing where middleware must consider the scheduling of tasks to
processors." These are the classic independent-task mapping heuristics on
heterogeneous processors; the E7 bench compares their makespans.

All functions are pure: they take tasks and processors and return a
:class:`GridSchedule` (assignment + makespan) without touching any clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GridTask:
    """An independent task with an abstract amount of work."""

    task_id: str
    work: float  # abstract operations

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ConfigurationError(f"work must be positive, got {self.work!r}")


@dataclass(frozen=True)
class Processor:
    """A processor with a speed (operations per second)."""

    proc_id: str
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {self.speed!r}")

    def runtime(self, task: GridTask) -> float:
        return task.work / self.speed


@dataclass
class GridSchedule:
    """Result of a mapping heuristic."""

    algorithm: str
    assignment: Dict[str, str] = field(default_factory=dict)  # task -> proc
    finish_times: Dict[str, float] = field(default_factory=dict)  # proc -> busy until

    @property
    def makespan(self) -> float:
        if not self.finish_times:
            return 0.0
        return max(self.finish_times.values())


def _check_inputs(tasks: List[GridTask], processors: List[Processor]) -> None:
    if not processors:
        raise ConfigurationError("need at least one processor")
    ids = [t.task_id for t in tasks]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("duplicate task ids")


def schedule_round_robin(tasks: List[GridTask], processors: List[Processor]) -> GridSchedule:
    """Speed-blind rotation — the naive baseline."""
    _check_inputs(tasks, processors)
    schedule = GridSchedule("round-robin", finish_times={p.proc_id: 0.0 for p in processors})
    for i, task in enumerate(tasks):
        processor = processors[i % len(processors)]
        schedule.assignment[task.task_id] = processor.proc_id
        schedule.finish_times[processor.proc_id] += processor.runtime(task)
    return schedule


def schedule_list(tasks: List[GridTask], processors: List[Processor]) -> GridSchedule:
    """List scheduling: largest task first onto the processor that finishes
    it earliest (a 2-approximation of optimal makespan)."""
    _check_inputs(tasks, processors)
    schedule = GridSchedule("list", finish_times={p.proc_id: 0.0 for p in processors})
    for task in sorted(tasks, key=lambda t: (-t.work, t.task_id)):
        best = min(
            processors,
            key=lambda p: (schedule.finish_times[p.proc_id] + p.runtime(task), p.proc_id),
        )
        schedule.assignment[task.task_id] = best.proc_id
        schedule.finish_times[best.proc_id] += best.runtime(task)
    return schedule


def _min_completion(
    task: GridTask, processors: List[Processor], finish: Dict[str, float]
) -> Tuple[float, Processor]:
    best = min(
        processors, key=lambda p: (finish[p.proc_id] + p.runtime(task), p.proc_id)
    )
    return finish[best.proc_id] + best.runtime(task), best


def _min_min_family(
    tasks: List[GridTask], processors: List[Processor], take_max: bool, name: str
) -> GridSchedule:
    _check_inputs(tasks, processors)
    schedule = GridSchedule(name, finish_times={p.proc_id: 0.0 for p in processors})
    remaining = list(tasks)
    while remaining:
        # For each task, its best completion time; then pick the task whose
        # best completion is smallest (min-min) or largest (max-min).
        choices = [
            (_min_completion(task, processors, schedule.finish_times), task)
            for task in remaining
        ]
        choices.sort(key=lambda entry: (entry[0][0], entry[1].task_id))
        (completion, processor), chosen = choices[-1] if take_max else choices[0]
        schedule.assignment[chosen.task_id] = processor.proc_id
        schedule.finish_times[processor.proc_id] = completion
        remaining.remove(chosen)
    return schedule


def schedule_min_min(tasks: List[GridTask], processors: List[Processor]) -> GridSchedule:
    """Min-min: repeatedly place the task that can finish soonest."""
    return _min_min_family(tasks, processors, take_max=False, name="min-min")


def schedule_max_min(tasks: List[GridTask], processors: List[Processor]) -> GridSchedule:
    """Max-min: repeatedly place the task whose best finish is latest
    (gets big tasks out of the way early)."""
    return _min_min_family(tasks, processors, take_max=True, name="max-min")
