"""Scheduling (Section 3.7).

The paper asks the middleware to "decide on interaction order based on
priority or bandwidth constraints", to finish or hand off transactions whose
suppliers are about to leave, and notes the same concerns in grid computing.
Correspondingly:

* :mod:`repro.scheduling.task` / :mod:`repro.scheduling.policies` /
  :mod:`repro.scheduling.scheduler` — a preemptive virtual-processor
  scheduler with FIFO, static-priority, EDF, and rate-monotonic policies
  (the paper's first middleware citation, Mizunuma et al. [6], is
  rate-monotonic middleware),
* :mod:`repro.scheduling.bandwidth` — token-bucket bandwidth allocation and
  reservation-based admission,
* :mod:`repro.scheduling.handoff` — proactive transaction handoff for
  suppliers moving out of range,
* :mod:`repro.scheduling.gridsched` — task-to-processor scheduling
  (list scheduling, min-min, max-min).
"""

from repro.scheduling.bandwidth import BandwidthAllocator, TokenBucket
from repro.scheduling.gridsched import (
    GridTask,
    Processor,
    schedule_list,
    schedule_max_min,
    schedule_min_min,
    schedule_round_robin,
)
from repro.scheduling.handoff import HandoffManager
from repro.scheduling.policies import (
    EdfPolicy,
    FifoPolicy,
    PriorityPolicy,
    RateMonotonicPolicy,
    rm_utilization_bound,
)
from repro.scheduling.scheduler import TaskScheduler
from repro.scheduling.task import ScheduledTask

__all__ = [
    "BandwidthAllocator",
    "TokenBucket",
    "GridTask",
    "Processor",
    "schedule_list",
    "schedule_max_min",
    "schedule_min_min",
    "schedule_round_robin",
    "HandoffManager",
    "EdfPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "RateMonotonicPolicy",
    "rm_utilization_bound",
    "TaskScheduler",
    "ScheduledTask",
]
