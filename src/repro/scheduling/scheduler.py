"""The preemptive virtual-processor scheduler.

Models one unit-speed processor executing middleware work over the
simulator's virtual time. The policy picks which ready *activation* runs; a
newly arriving activation with a smaller key preempts the running one (its
remaining cost is preserved). Each activation of a periodic task is its own
record, so a task re-arriving while its previous activation still queues
(the overload case) is handled correctly.

Deadline misses are detected at completion; with ``drop_late`` the
activation is abandoned at its deadline instead of finishing uselessly —
which of these a system wants is application-specific, so both are
supported and benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.errors import AdmissionRefused
from repro.netsim.simulator import EventHandle, Simulator
from repro.scheduling.policies import SchedulingPolicy
from repro.scheduling.policies import rm_admissible
from repro.scheduling.task import ScheduledTask
from repro.util.events import EventEmitter


@dataclass
class _Activation:
    """One arrival of a task: its own clock and remaining cost."""

    task: ScheduledTask
    activation_time: float
    remaining_s: float
    index: int  # per-task activation counter

    def absolute_deadline(self) -> float:
        if self.task.deadline_s is None:
            return float("inf")
        return self.activation_time + self.task.deadline_s

    def key_view(self) -> ScheduledTask:
        """A task view whose per-activation fields reflect this activation.

        Policies read ``activation_time`` / ``absolute_deadline`` from the
        task, so we materialize them here without mutating shared state
        beyond these two scratch fields (safe: keys are computed
        synchronously).
        """
        self.task.activation_time = self.activation_time
        return self.task


class TaskScheduler:
    """Single-processor preemptive scheduler.

    Events (via :attr:`events`): ``"completed"`` (task, response_time_s),
    ``"missed"`` (task, lateness_s), ``"dropped"`` (task).
    """

    def __init__(
        self,
        sim: Simulator,
        policy: SchedulingPolicy,
        drop_late: bool = False,
        admission_control: bool = False,
    ):
        self.sim = sim
        self.policy = policy
        self.drop_late = drop_late
        self.admission_control = admission_control
        self.events = EventEmitter()
        self._task_ids: Set[str] = set()
        self._admitted: List[ScheduledTask] = []
        self._ready: List[_Activation] = []
        self._running: Optional[_Activation] = None
        self._running_started = 0.0
        self._completion_handle: Optional[EventHandle] = None
        self._cancelled: Set[str] = set()
        self.completed = 0
        self.missed = 0
        self.dropped = 0
        self.preemptions = 0
        self.response_times: List[float] = []

    # ------------------------------------------------------------- submitting

    def submit(self, task: ScheduledTask, delay_s: float = 0.0) -> None:
        """Add a task; its first activation happens after ``delay_s``.

        With admission control on, a periodic task that would push the set
        past the rate-monotonic bound is refused.
        """
        if self.admission_control and task.periodic:
            if not rm_admissible(self._admitted + [task]):
                raise AdmissionRefused(
                    f"task {task.task_id!r} would exceed the schedulable bound"
                )
        self._task_ids.add(task.task_id)
        self._admitted.append(task)
        self._cancelled.discard(task.task_id)
        self.sim.schedule(delay_s, self._activate, task)

    def cancel(self, task_id: str) -> None:
        """Stop future activations (queued/running ones finish normally)."""
        self._cancelled.add(task_id)
        self._admitted = [t for t in self._admitted if t.task_id != task_id]

    # ------------------------------------------------------------- activation

    def _activate(self, task: ScheduledTask) -> None:
        if task.task_id in self._cancelled:
            return
        task.activations += 1
        activation = _Activation(
            task, self.sim.now(), task.cost_s, task.activations
        )
        if task.periodic:
            self.sim.schedule(task.period_s, self._activate, task)
        if self.drop_late and task.deadline_s is not None:
            self.sim.schedule(task.deadline_s, self._deadline_check, activation)
        self._ready.append(activation)
        self._dispatch()

    # --------------------------------------------------------------- dispatch

    def _key(self, activation: _Activation) -> tuple:
        return self.policy.key(activation.key_view(), self.sim.now())

    def _dispatch(self) -> None:
        if not self._ready:
            return
        best = min(self._ready, key=self._key)
        if self._running is None:
            self._start(best)
            return
        if self._key(best) < self._key(self._running):
            self._preempt()
            self._start(min(self._ready, key=self._key))

    def _start(self, activation: _Activation) -> None:
        self._ready.remove(activation)
        self._running = activation
        self._running_started = self.sim.now()
        self._completion_handle = self.sim.schedule(
            activation.remaining_s, self._complete, activation
        )

    def _preempt(self) -> None:
        assert self._running is not None
        executed = self.sim.now() - self._running_started
        self._running.remaining_s = max(0.0, self._running.remaining_s - executed)
        if self._completion_handle is not None:
            self._completion_handle.cancel()
        self.preemptions += 1
        self._ready.append(self._running)
        self._running = None

    def _complete(self, activation: _Activation) -> None:
        self._running = None
        self._completion_handle = None
        now = self.sim.now()
        task = activation.task
        response = now - activation.activation_time
        task.completions += 1
        self.completed += 1
        self.response_times.append(response)
        if task.deadline_s is not None and response > task.deadline_s + 1e-12:
            task.misses += 1
            self.missed += 1
            self.events.emit("missed", task, response - task.deadline_s)
        else:
            self.events.emit("completed", task, response)
        if task.action is not None:
            task.action()
        self._dispatch()

    def _deadline_check(self, activation: _Activation) -> None:
        """drop_late mode: abandon an activation that reached its deadline."""
        if self._running is activation:
            if self._completion_handle is not None:
                self._completion_handle.cancel()
            self._running = None
            self._completion_handle = None
        elif activation in self._ready:
            self._ready.remove(activation)
        else:
            return  # already completed
        task = activation.task
        task.misses += 1
        self.dropped += 1
        self.missed += 1
        self.events.emit("dropped", task)
        self.events.emit("missed", task, 0.0)
        self._dispatch()

    # ---------------------------------------------------------------- metrics

    def miss_rate(self) -> float:
        total = self.completed + self.dropped
        if total == 0:
            return 0.0
        return self.missed / total

    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)
