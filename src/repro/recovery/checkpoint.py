"""Checkpointing: bounding how much log recovery must replay.

A checkpoint record carries a snapshot of the committed state plus the set
of transactions live at snapshot time. Recovery starts from the most recent
checkpoint instead of the beginning of the log; the E8 bench sweeps the
checkpoint interval to show the recovery-time / runtime-overhead tradeoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.recovery.wal import CHECKPOINT, LogRecord, WriteAheadLog


@dataclass(frozen=True)
class Checkpoint:
    """Decoded checkpoint contents.

    ``redo_from_lsn`` is where recovery must start scanning: the minimum
    BEGIN lsn among transactions live at checkpoint time (their updates may
    precede the checkpoint but commit after it), or just past the
    checkpoint when none were live. Replaying a little extra history is
    harmless — updates are idempotent after-images — but starting too late
    would lose committed writes.
    """

    lsn: int
    state: Dict[str, Any]
    live_transactions: List[str]
    redo_from_lsn: int

    @staticmethod
    def from_record(record: LogRecord) -> "Checkpoint":
        payload = record.payload or {}
        return Checkpoint(
            lsn=record.lsn,
            state=dict(payload.get("state", {})),
            live_transactions=list(payload.get("live", [])),
            redo_from_lsn=int(payload.get("redo_from", record.lsn + 1)),
        )


class CheckpointManager:
    """Writes checkpoints every ``interval_ops`` logged operations."""

    def __init__(self, log: WriteAheadLog, interval_ops: int = 100):
        if interval_ops <= 0:
            raise ValueError(f"checkpoint interval must be positive, got {interval_ops}")
        self.log = log
        self.interval_ops = interval_ops
        self._ops_since_checkpoint = 0
        self.checkpoints_taken = 0

    def note_operation(self) -> bool:
        """Count one logged operation; returns True when a checkpoint is due."""
        self._ops_since_checkpoint += 1
        return self._ops_since_checkpoint >= self.interval_ops

    def take(
        self,
        state: Dict[str, Any],
        live_transactions: List[str],
        redo_from_lsn: Optional[int] = None,
    ) -> LogRecord:
        """Write a checkpoint record and reset the counter."""
        record = self.log.append(
            CHECKPOINT,
            payload={
                "state": dict(state),
                "live": list(live_transactions),
                # Filled in with the record's own lsn + 1 when no live
                # transaction pins an earlier redo point.
                "redo_from": redo_from_lsn if redo_from_lsn is not None else -1,
            },
        )
        if redo_from_lsn is None:
            # Rewrite the payload marker now that the lsn is known. The
            # record object is immutable, so re-encode a corrected one in
            # place of the tail blob.
            corrected = LogRecord(
                record.lsn, CHECKPOINT, payload={
                    "state": dict(state),
                    "live": list(live_transactions),
                    "redo_from": record.lsn + 1,
                },
            )
            self.log.storage.blobs[-1] = corrected.encode()
            record = corrected
        self._ops_since_checkpoint = 0
        self.checkpoints_taken += 1
        return record

    def latest(self) -> Optional[Checkpoint]:
        record = self.log.last_checkpoint()
        return Checkpoint.from_record(record) if record is not None else None
