"""Write-ahead logging over stable storage.

:class:`StableStorage` is the piece of the world that survives a crash: in
the simulation it is simply an object the crashed component does *not* own,
with optional corruption injection for the recovery tests. The
:class:`WriteAheadLog` appends checksummed records to it; on recovery the
log is scanned forward and the first integrity violation truncates the tail
(a half-written record at crash time must not poison recovery).

Record kinds used by the transactional store: ``BEGIN``, ``UPDATE`` (with
before/after images), ``COMMIT``, ``ABORT``, ``CHECKPOINT``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import LogCorruptionError
from repro.interop.codec import BinaryCodec

BEGIN = "BEGIN"
UPDATE = "UPDATE"
COMMIT = "COMMIT"
ABORT = "ABORT"
CHECKPOINT = "CHECKPOINT"

_codec = BinaryCodec()


@dataclass(frozen=True)
class LogRecord:
    """One durable log entry."""

    lsn: int
    kind: str
    txid: Optional[str] = None
    key: Optional[str] = None
    before: Any = None
    after: Any = None
    payload: Any = None  # checkpoint snapshots, etc.

    def encode(self) -> bytes:
        body = _codec.encode(
            {
                "lsn": self.lsn,
                "kind": self.kind,
                "txid": self.txid,
                "key": self.key,
                "before": self.before,
                "after": self.after,
                "payload": self.payload,
            }
        )
        checksum = zlib.crc32(body)
        return checksum.to_bytes(4, "big") + body

    @staticmethod
    def decode(raw: bytes) -> "LogRecord":
        if len(raw) < 4:
            raise LogCorruptionError("log record too short for checksum")
        expected = int.from_bytes(raw[:4], "big")
        body = raw[4:]
        if zlib.crc32(body) != expected:
            raise LogCorruptionError("log record checksum mismatch")
        fields = _codec.decode(body)
        return LogRecord(
            lsn=fields["lsn"],
            kind=fields["kind"],
            txid=fields.get("txid"),
            key=fields.get("key"),
            before=fields.get("before"),
            after=fields.get("after"),
            payload=fields.get("payload"),
        )


@dataclass
class StableStorage:
    """Crash-surviving storage: an append-only list of encoded records.

    Failure injection: :meth:`corrupt_tail` flips bytes in the last record,
    :meth:`truncate` models a torn write.
    """

    blobs: List[bytes] = field(default_factory=list)

    def append(self, blob: bytes) -> None:
        # Durable storage holds real bytes only — a lazy wire frame handed
        # in here is materialized, never stored by reference.
        self.blobs.append(bytes(blob))

    def __len__(self) -> int:
        return len(self.blobs)

    def corrupt_tail(self) -> None:
        if not self.blobs:
            return
        last = bytearray(self.blobs[-1])
        last[-1] ^= 0xFF
        self.blobs[-1] = bytes(last)

    def truncate(self, keep: int) -> None:
        del self.blobs[keep:]


class WriteAheadLog:
    """Appends and scans checksummed records on stable storage.

    Opening the log repairs a torn tail: blobs from the first corrupt one
    onward are discarded, exactly as a database truncates a half-written
    tail at restart. Without this, a record appended *after* a corrupt blob
    would be invisible to every future scan — silent data loss.
    """

    def __init__(self, storage: Optional[StableStorage] = None):
        self.storage = storage if storage is not None else StableStorage()
        self.truncated_on_open = self._repair_tail()
        self._next_lsn = self._scan_next_lsn()

    def _repair_tail(self) -> int:
        """Drop blobs from the first corrupt one; returns how many."""
        valid = 0
        for blob in self.storage.blobs:
            try:
                LogRecord.decode(blob)
            except LogCorruptionError:
                break
            valid += 1
        dropped = len(self.storage.blobs) - valid
        if dropped:
            self.storage.truncate(valid)
        return dropped

    def _scan_next_lsn(self) -> int:
        highest = 0
        for record in self.scan():
            highest = max(highest, record.lsn)
        return highest + 1

    # --------------------------------------------------------------- writing

    def append(
        self,
        kind: str,
        txid: Optional[str] = None,
        key: Optional[str] = None,
        before: Any = None,
        after: Any = None,
        payload: Any = None,
    ) -> LogRecord:
        record = LogRecord(self._next_lsn, kind, txid, key, before, after, payload)
        self._next_lsn += 1
        self.storage.append(record.encode())
        return record

    # --------------------------------------------------------------- reading

    def scan(self, from_lsn: int = 0) -> Iterator[LogRecord]:
        """Yield records with lsn >= from_lsn, stopping at the first
        corrupt entry (the torn tail) — records before it are intact
        because the log is append-only."""
        for blob in self.storage.blobs:
            try:
                record = LogRecord.decode(blob)
            except LogCorruptionError:
                return
            if record.lsn >= from_lsn:
                yield record

    def last_checkpoint(self) -> Optional[LogRecord]:
        found: Optional[LogRecord] = None
        for record in self.scan():
            if record.kind == CHECKPOINT:
                found = record
        return found

    def records(self) -> List[LogRecord]:
        return list(self.scan())

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())


def committed_transactions(records: List[LogRecord]) -> Dict[str, bool]:
    """Map txid -> committed? over a record list (analysis pass)."""
    outcome: Dict[str, bool] = {}
    for record in records:
        if record.kind == BEGIN and record.txid is not None:
            outcome.setdefault(record.txid, False)
        elif record.kind == COMMIT and record.txid is not None:
            outcome[record.txid] = True
        elif record.kind == ABORT and record.txid is not None:
            outcome[record.txid] = False
    return outcome
