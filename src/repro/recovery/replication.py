"""Primary-backup replication with client-driven failover.

The "sophisticated" end of Section 3.8's recovery spectrum, combined with
the reliability middleware of the literature review ([48, 56]): a
:class:`PrimaryReplica` applies writes, forwards them (with sequence
numbers) to :class:`BackupReplica` peers, and acknowledges the client after
``ack_quorum`` backups confirm. A :class:`ReplicationClient` talks to the
first live replica in its list: when the primary stops answering it retries
down the list, and a backup asked to serve promotes itself (it has every
acknowledged write, by the quorum rule with ack_quorum == number of
backups).

Protocol (codec dicts)::

    client write: {"op": "w", "rid", "key", "value"}
    client read:  {"op": "r", "rid", "key"}
    replicate:    {"op": "repl", "seq", "key", "value"}
    repl ack:     {"op": "repl_ack", "seq"}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import DeliveryError
from repro.interop.codec import Codec, get_codec
from repro.interop.frames import WireFrame, decode_payload
from repro.transport.base import Address, Transport
from repro.util.ids import IdGenerator
from repro.util.promise import Promise


@dataclass
class _PendingWrite:
    source: Address
    rid: Any
    key: str
    value: Any
    acks: Set[str] = field(default_factory=set)


class _ReplicaBase:
    def __init__(self, transport: Transport, codec: Optional[Codec]):
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self.data: Dict[str, Any] = {}
        self.applied_seq = 0

    def _send(self, destination: Address, message: Dict[str, Any]) -> None:
        if not isinstance(message, WireFrame):
            message = WireFrame(message, self.codec)
        self.transport.send(destination, message)


class PrimaryReplica(_ReplicaBase):
    """The write coordinator."""

    def __init__(
        self,
        transport: Transport,
        backups: List[Address],
        ack_quorum: Optional[int] = None,
        codec: Optional[Codec] = None,
    ):
        super().__init__(transport, codec)
        self.backups = list(backups)
        self.ack_quorum = len(backups) if ack_quorum is None else ack_quorum
        self._pending: Dict[int, _PendingWrite] = {}
        self.writes_applied = 0
        transport.set_receiver(self._on_message)

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = decode_payload(self.codec, payload)
        op = message.get("op")
        if op == "w":
            self._handle_write(source, message)
        elif op == "r":
            self._send(
                source,
                {"op": "r_ack", "rid": message["rid"],
                 "value": self.data.get(message["key"]), "role": "primary"},
            )
        elif op == "repl_ack":
            self._handle_repl_ack(source, message)

    def _handle_write(self, source: Address, message: Dict[str, Any]) -> None:
        self.applied_seq += 1
        seq = self.applied_seq
        key, value = message["key"], message["value"]
        self.data[key] = value
        self.writes_applied += 1
        pending = _PendingWrite(source, message["rid"], key, value)
        self._pending[seq] = pending
        # Replication always happens; the quorum only controls when the
        # client is acknowledged (0 = immediately, asynchronous replication).
        repl = WireFrame(
            {"op": "repl", "seq": seq, "key": key, "value": value}, self.codec
        )
        for backup in self.backups:
            self._send(backup, repl)
        if self.ack_quorum == 0 or not self.backups:
            self._acknowledge(seq)

    def _handle_repl_ack(self, source: Address, message: Dict[str, Any]) -> None:
        pending = self._pending.get(message["seq"])
        if pending is None:
            return
        pending.acks.add(str(source))
        if len(pending.acks) >= self.ack_quorum:
            self._acknowledge(message["seq"])

    def _acknowledge(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is None:
            return
        self._send(
            pending.source,
            {"op": "w_ack", "rid": pending.rid, "seq": seq, "role": "primary"},
        )


class BackupReplica(_ReplicaBase):
    """Applies replicated writes in sequence order; serves reads (and, after
    promotion, writes) if clients fail over to it."""

    def __init__(self, transport: Transport, codec: Optional[Codec] = None):
        super().__init__(transport, codec)
        self.promoted = False
        # Out-of-order replication buffer: seq -> (key, value).
        self._buffer: Dict[int, Tuple[str, Any]] = {}
        transport.set_receiver(self._on_message)

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = decode_payload(self.codec, payload)
        op = message.get("op")
        if op == "repl":
            self._buffer[message["seq"]] = (message["key"], message["value"])
            self._apply_in_order()
            self._send(source, {"op": "repl_ack", "seq": message["seq"]})
        elif op == "r":
            self._send(
                source,
                {"op": "r_ack", "rid": message["rid"],
                 "value": self.data.get(message["key"]),
                 "role": "backup" if not self.promoted else "primary"},
            )
        elif op == "w":
            # A write reaching a backup means the client failed over:
            # promote and serve (single-backup failover model).
            self.promoted = True
            self.applied_seq += 1
            self.data[message["key"]] = message["value"]
            self._send(
                source,
                {"op": "w_ack", "rid": message["rid"], "seq": self.applied_seq,
                 "role": "promoted"},
            )

    def _apply_in_order(self) -> None:
        while self.applied_seq + 1 in self._buffer:
            seq = self.applied_seq + 1
            key, value = self._buffer.pop(seq)
            self.data[key] = value
            self.applied_seq = seq


class ReplicationClient:
    """Writes/reads against the replica group, failing over down the list."""

    def __init__(
        self,
        transport: Transport,
        replicas: List[Address],
        codec: Optional[Codec] = None,
        request_timeout_s: float = 1.0,
    ):
        self.transport = transport
        self.replicas = list(replicas)
        self.codec = codec if codec is not None else get_codec("binary")
        self.request_timeout_s = request_timeout_s
        self._rids = IdGenerator(f"repl:{transport.local_address}")
        # rid -> (promise, message dict, replica index)
        self._pending: Dict[str, Tuple[Promise, Dict[str, Any], int]] = {}
        self.failovers = 0
        transport.set_receiver(self._on_message)

    def write(self, key: str, value: Any) -> Promise:
        return self._request({"op": "w", "key": key, "value": value})

    def read(self, key: str) -> Promise:
        return self._request({"op": "r", "key": key})

    def _request(self, message: Dict[str, Any]) -> Promise:
        rid = self._rids.next()
        message["rid"] = rid
        promise: Promise = Promise()
        self._pending[rid] = (promise, message, 0)
        self._transmit(rid)
        return promise

    def _transmit(self, rid: str) -> None:
        promise, message, index = self._pending[rid]
        self.transport.send(self.replicas[index], WireFrame(message, self.codec))
        self.transport.scheduler.schedule(self.request_timeout_s, self._timeout, rid, index)

    def _timeout(self, rid: str, index_at_send: int) -> None:
        entry = self._pending.get(rid)
        if entry is None:
            return
        promise, message, index = entry
        if index != index_at_send:
            return  # already failed over since this timer was set
        if index + 1 < len(self.replicas):
            self.failovers += 1
            self._pending[rid] = (promise, message, index + 1)
            self._transmit(rid)
            return
        del self._pending[rid]
        promise.reject(DeliveryError(f"no replica answered request {rid}"))

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = decode_payload(self.codec, payload)
        entry = self._pending.pop(message.get("rid"), None)
        if entry is None:
            return
        promise, _message, _index = entry
        if message.get("op") == "w_ack":
            promise.fulfill({"seq": message.get("seq"), "role": message.get("role")})
        else:
            promise.fulfill(message.get("value"))
