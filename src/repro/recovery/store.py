"""A transactional key-value store with log-based crash recovery.

The "critical transactions" target of Section 3.8. Semantics:

* ``begin() -> txid``; writes inside a transaction are invisible to readers
  until ``commit`` (read-committed with own-writes visibility);
* every write is WAL-logged (before/after images) *before* touching any
  state — the write-ahead rule;
* ``crash()`` throws away all volatile state; ``recover()`` rebuilds from
  the most recent checkpoint plus the log: redo committed transactions,
  discard (never apply) uncommitted ones.

Invariant the property tests hammer: after any crash at any point, exactly
the committed transactions' effects are visible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.errors import RecoveryError, TransactionAborted
from repro.recovery.checkpoint import CheckpointManager
from repro.recovery.wal import (
    ABORT,
    BEGIN,
    CHECKPOINT,
    COMMIT,
    UPDATE,
    StableStorage,
    WriteAheadLog,
    committed_transactions,
)
from repro.util.ids import IdGenerator


class TransactionalStore:
    """Crash-recoverable KV store."""

    def __init__(
        self,
        storage: Optional[StableStorage] = None,
        checkpoint_interval_ops: int = 100,
    ):
        self.storage = storage if storage is not None else StableStorage()
        self.log = WriteAheadLog(self.storage)
        self.checkpoints = CheckpointManager(self.log, checkpoint_interval_ops)
        self._ids = IdGenerator("tx")
        # Volatile state (lost on crash):
        self._committed: Dict[str, Any] = {}
        self._pending: Dict[str, Dict[str, Any]] = {}  # txid -> key -> value
        self._pending_begin_lsn: Dict[str, int] = {}
        self._crashed = False
        self.recoveries = 0
        self.last_recovery_records_scanned = 0
        self.recover()

    # ------------------------------------------------------------- liveness

    def crash(self) -> None:
        """Lose all volatile state (stable storage survives)."""
        self._committed = {}
        self._pending = {}
        self._pending_begin_lsn = {}
        self._crashed = True

    def _check_up(self) -> None:
        if self._crashed:
            raise RecoveryError("store has crashed; call recover() first")

    # ------------------------------------------------------------- recovery

    def recover(self) -> None:
        """Rebuild committed state from checkpoint + log."""
        checkpoint = self.checkpoints.latest()
        if checkpoint is not None:
            state: Dict[str, Any] = dict(checkpoint.state)
            # Start redo at the earliest BEGIN of a transaction live at
            # checkpoint time: its pre-checkpoint updates are not in the
            # snapshot but may have committed afterwards. Replaying already-
            # snapshotted updates is harmless (after-images are idempotent).
            start_lsn = min(checkpoint.redo_from_lsn, checkpoint.lsn + 1)
        else:
            state = {}
            start_lsn = 0
        records = list(self.log.scan(start_lsn))
        outcomes = committed_transactions(records)
        if checkpoint is not None:
            # Transactions that only appear as pre-checkpoint BEGINs are
            # classified by their post-checkpoint outcome records.
            for record in records:
                if record.kind == COMMIT and record.txid is not None:
                    outcomes[record.txid] = True
        for record in records:
            if record.kind == UPDATE and outcomes.get(record.txid):
                if record.after is None:
                    state.pop(record.key, None)
                else:
                    state[record.key] = record.after
        self._committed = state
        self._pending = {}
        self._crashed = False
        self.recoveries += 1
        self.last_recovery_records_scanned = len(records)

    # ----------------------------------------------------------- transactions

    def begin(self) -> str:
        self._check_up()
        txid = self._ids.next()
        record = self.log.append(BEGIN, txid=txid)
        self._pending[txid] = {}
        self._pending_begin_lsn[txid] = record.lsn
        return txid

    def _require_tx(self, txid: str) -> Dict[str, Any]:
        try:
            return self._pending[txid]
        except KeyError:
            raise TransactionAborted(f"transaction {txid!r} is not active") from None

    def put(self, txid: str, key: str, value: Any) -> None:
        self._check_up()
        writes = self._require_tx(txid)
        before = writes.get(key, self._committed.get(key))
        self.log.append(UPDATE, txid=txid, key=key, before=before, after=value)
        writes[key] = value
        self._maybe_checkpoint()

    def delete(self, txid: str, key: str) -> None:
        self._check_up()
        writes = self._require_tx(txid)
        before = writes.get(key, self._committed.get(key))
        self.log.append(UPDATE, txid=txid, key=key, before=before, after=None)
        writes[key] = None
        self._maybe_checkpoint()

    def get(self, key: str, txid: Optional[str] = None) -> Any:
        """Committed value — or the transaction's own uncommitted write when
        ``txid`` is given (read-your-writes)."""
        self._check_up()
        if txid is not None and txid in self._pending and key in self._pending[txid]:
            return self._pending[txid][key]
        return self._committed.get(key)

    def commit(self, txid: str) -> None:
        self._check_up()
        writes = self._require_tx(txid)
        # Write-ahead rule: COMMIT hits the log before state mutates.
        self.log.append(COMMIT, txid=txid)
        for key, value in writes.items():
            if value is None:
                self._committed.pop(key, None)
            else:
                self._committed[key] = value
        del self._pending[txid]
        self._pending_begin_lsn.pop(txid, None)
        self._maybe_checkpoint()

    def abort(self, txid: str) -> None:
        self._check_up()
        self._require_tx(txid)
        self.log.append(ABORT, txid=txid)
        del self._pending[txid]
        self._pending_begin_lsn.pop(txid, None)

    def _maybe_checkpoint(self) -> None:
        if self.checkpoints.note_operation():
            redo_from = (
                min(self._pending_begin_lsn.values())
                if self._pending_begin_lsn
                else None
            )
            self.checkpoints.take(self._committed, list(self._pending), redo_from)

    # ------------------------------------------------------------- inspection

    def snapshot(self) -> Dict[str, Any]:
        self._check_up()
        return dict(self._committed)

    def active_transactions(self) -> Set[str]:
        return set(self._pending)

    def __len__(self) -> int:
        self._check_up()
        return len(self._committed)
