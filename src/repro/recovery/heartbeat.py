"""Heartbeat failure detection.

Every monitored peer sends periodic heartbeats; the detector suspects a
peer after ``timeout_multiplier`` missed intervals and unsuspects on the
next heartbeat. This is the standard eventually-perfect-detector
construction under partial synchrony — good enough to drive failover in
:mod:`repro.recovery.replication` and rebinding in the QoS degradation
manager.

Wire format: ``{"op": "hb", "from": node, "seq": n}`` (fire-and-forget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.interop.codec import BinaryCodec, Codec, get_codec, try_decode_dict
from repro.interop.frames import TailIntPacker, WireFrame
from repro.transport.base import Address, Transport
from repro.util.events import EventEmitter, Subscription


@dataclass
class PeerState:
    last_heard: float
    last_seq: int
    suspected: bool = False


class HeartbeatDetector:
    """Sends own heartbeats and watches peers' (both optional).

    Events (via :attr:`events`): ``"suspect"`` (peer node id),
    ``"alive"`` (peer node id) on recovery from suspicion.
    """

    def __init__(
        self,
        transport: Transport,
        interval_s: float = 1.0,
        timeout_multiplier: float = 3.0,
        codec: Optional[Codec] = None,
    ):
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval_s!r}")
        if timeout_multiplier < 1.0:
            raise ConfigurationError(
                f"timeout multiplier must be >= 1, got {timeout_multiplier!r}"
            )
        self.transport = transport
        self.interval_s = interval_s
        self.timeout_s = interval_s * timeout_multiplier
        self.codec = codec if codec is not None else get_codec("binary")
        self.events = EventEmitter()
        self._targets: List[Address] = []
        self._watched: Dict[str, PeerState] = {}
        self._seq = 0
        self.heartbeats_sent = 0
        self.malformed_frames = 0
        # Beacons share a fixed schema where only the seq varies: compile
        # the constant prefix once instead of re-encoding every period.
        beacon_base = {"op": "hb", "from": transport.local_address.node}
        self._beacon: Optional[TailIntPacker] = (
            TailIntPacker(self.codec, beacon_base, "seq")
            if isinstance(self.codec, BinaryCodec) else None
        )
        transport.set_receiver(self._on_message)
        self._beat_timer = transport.scheduler.schedule(interval_s, self._beat)
        self._check_timer = transport.scheduler.schedule(interval_s, self._check)

    # ----------------------------------------------------------- membership

    def send_to(self, peer: Address) -> None:
        """Start heartbeating toward a peer."""
        if peer not in self._targets:
            self._targets.append(peer)

    def watch(self, node_id: str) -> None:
        """Start monitoring heartbeats from a node."""
        if node_id not in self._watched:
            self._watched[node_id] = PeerState(
                last_heard=self.transport.scheduler.now(), last_seq=-1
            )

    def unwatch(self, node_id: str) -> None:
        self._watched.pop(node_id, None)

    # --------------------------------------------------------- subscriptions

    def on_suspect(self, callback) -> Subscription:
        """Invoke ``callback(node_id)`` when a watched peer becomes suspected.

        Fires exactly once per alive→suspected transition: the ``suspected``
        flag on :class:`PeerState` only flips on a state change, so a flapping
        peer produces alternating suspect/alive callbacks, never a storm of
        duplicate suspects.
        """
        return self.events.on("suspect", callback)

    def on_recover(self, callback) -> Subscription:
        """Invoke ``callback(node_id)`` when a suspected peer is heard again.

        Exactly once per suspected→alive transition (see :meth:`on_suspect`).
        """
        return self.events.on("alive", callback)

    # -------------------------------------------------------------- queries

    def suspected(self, node_id: str) -> bool:
        state = self._watched.get(node_id)
        return state.suspected if state is not None else False

    def alive_peers(self) -> Set[str]:
        return {n for n, s in self._watched.items() if not s.suspected}

    # -------------------------------------------------------------- plumbing

    def _beat(self) -> None:
        if self.transport.closed:
            return
        self._seq += 1
        if self._beacon is not None:
            frame = self._beacon.frame(self._seq)
        else:
            frame = WireFrame(
                {"op": "hb", "from": self.transport.local_address.node,
                 "seq": self._seq},
                self.codec,
            )
        for peer in self._targets:
            self.heartbeats_sent += 1
            self.transport.send(peer, frame)
        self._beat_timer = self.transport.scheduler.schedule(self.interval_s, self._beat)

    def _check(self) -> None:
        if self.transport.closed:
            return
        now = self.transport.scheduler.now()
        for node_id, state in self._watched.items():
            if not state.suspected and now - state.last_heard > self.timeout_s:
                state.suspected = True
                self.events.emit("suspect", node_id)
        self._check_timer = self.transport.scheduler.schedule(self.interval_s, self._check)

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = try_decode_dict(self.codec, payload)
        if message is None:
            # Corrupted frame (chaos injection): drop, never raise.
            self.malformed_frames += 1
            return
        if message.get("op") != "hb":
            return
        node_id = message.get("from")
        state = self._watched.get(node_id)
        if state is None:
            return
        seq = message.get("seq", 0)
        if not isinstance(seq, int) or seq <= state.last_seq:
            return  # stale, duplicated, or mangled heartbeat
        state.last_seq = seq
        state.last_heard = self.transport.scheduler.now()
        if state.suspected:
            state.suspected = False
            self.events.emit("alive", node_id)

    def stop(self) -> None:
        self._beat_timer.cancel()
        self._check_timer.cancel()
