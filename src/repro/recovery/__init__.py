"""Recovery (Section 3.8).

"If middleware works with critical transactions, it must include a recovery
system to deal with failures. Sometimes a simple log-based scheme can be
used, while other times, sophisticated database recovery mechanisms must be
incorporated." Both are here:

* :mod:`repro.recovery.wal` — a checksummed write-ahead log over stable
  storage (the simple log-based scheme),
* :mod:`repro.recovery.checkpoint` — snapshot management bounding recovery
  work,
* :mod:`repro.recovery.store` — a transactional key-value store with
  redo/undo recovery (the database-style mechanism), crash-injectable,
* :mod:`repro.recovery.heartbeat` — a heartbeat failure detector,
* :mod:`repro.recovery.replication` — primary-backup replication with
  failover.
"""

from repro.recovery.checkpoint import Checkpoint, CheckpointManager
from repro.recovery.heartbeat import HeartbeatDetector
from repro.recovery.replication import BackupReplica, PrimaryReplica, ReplicationClient
from repro.recovery.store import TransactionalStore
from repro.recovery.wal import LogRecord, StableStorage, WriteAheadLog

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "HeartbeatDetector",
    "BackupReplica",
    "PrimaryReplica",
    "ReplicationClient",
    "TransactionalStore",
    "LogRecord",
    "StableStorage",
    "WriteAheadLog",
]
