"""The transaction manager.

Section 3.6: "A transaction should be established by the middleware based
on matching specifications including QoS constraints."

:meth:`TransactionManager.establish` takes a discovery query (with consumer
QoS) and a :class:`TransactionSpec`; the manager looks the supplier up,
binds a QoS contract, and then *drives* the interaction over RPC:

* ``ON_DEMAND`` — one call, then the transaction completes;
* ``CONTINUOUS`` — a call every ``interval_s`` until stopped;
* ``INTERMITTENT`` — calls at the spec's predicted times.

When a supplier stops answering (``failure_threshold`` consecutive
failures), the manager re-runs discovery and transfers the transaction to
the next best supplier — the §3.7 "completed, or transferred to different
services matching the constraints" behaviour — aborting only when no
feasible supplier remains.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol

from repro.discovery.description import ServiceDescription
from repro.discovery.matching import Query
from repro.errors import ServiceNotFoundError
from repro.obs.tracing import NOOP_SPAN, TRACER, Span
from repro.qos.contract import ContractTerms, QoSContract
from repro.transactions.rpc import RpcEndpoint
from repro.transactions.transaction import (
    DataCallback,
    Transaction,
    TransactionKind,
    TransactionSpec,
    TransactionState,
)
from repro.transport.base import Address
from repro.util.events import EventEmitter
from repro.util.ids import IdGenerator
from repro.util.promise import Promise


class DiscoveryService(Protocol):
    """Anything that can look services up (registry client, distributed
    agent, adaptive agent — they all expose this)."""

    def lookup(self, query: Query) -> Promise:
        ...


class TransactionManager:
    """Creates and drives transactions for one consumer node.

    Events (via :attr:`events`): ``"established"`` (transaction),
    ``"transferred"`` (transaction, old_supplier_id), ``"aborted"``
    (transaction), ``"completed"`` (transaction).
    """

    def __init__(
        self,
        rpc: RpcEndpoint,
        discovery: DiscoveryService,
        contract_terms: ContractTerms = ContractTerms(),
        failure_threshold: int = 3,
        call_timeout_s: float = 1.0,
    ):
        self.rpc = rpc
        self.discovery = discovery
        self.contract_terms = contract_terms
        self.failure_threshold = failure_threshold
        self.call_timeout_s = call_timeout_s
        self.events = EventEmitter()
        self._ids = IdGenerator(f"txn:{rpc.transport.local_address}")
        self._transactions: Dict[str, Transaction] = {}
        self._queries: Dict[str, Query] = {}
        self._consecutive_failures: Dict[str, int] = {}
        # transaction id -> open root span covering the whole transaction
        self._txn_spans: Dict[str, Span] = {}

    # ------------------------------------------------------------ inspection

    def transactions(self) -> List[Transaction]:
        return list(self._transactions.values())

    def get(self, transaction_id: str) -> Optional[Transaction]:
        return self._transactions.get(transaction_id)

    def _now(self) -> float:
        return self.rpc.transport.scheduler.now()

    # ------------------------------------------------------------- establish

    def establish(
        self,
        query: Query,
        spec: TransactionSpec,
        on_data: Optional[DataCallback] = None,
    ) -> Promise:
        """Discover a supplier and start the transaction.

        Fulfills with the :class:`Transaction`; rejects with
        :class:`ServiceNotFoundError` if discovery finds nothing feasible.
        """
        promise: Promise = Promise()
        root: Any = NOOP_SPAN
        phase: Any = NOOP_SPAN
        if TRACER.enabled:
            root = TRACER.span(
                "txn.transaction",
                node=self.rpc.transport.local_address.node,
                service_type=query.service_type,
            )
            phase = TRACER.span("txn.establish", parent=root)
        with TRACER.activate(phase):
            self.discovery.lookup(query).on_settle(
                lambda settled: self._on_lookup(
                    settled, query, spec, on_data, promise, root, phase
                )
            )
        return promise

    def _on_lookup(
        self,
        settled: Promise,
        query: Query,
        spec: TransactionSpec,
        on_data: Optional[DataCallback],
        promise: Promise,
        root: Any = NOOP_SPAN,
        phase: Any = NOOP_SPAN,
    ) -> None:
        if settled.rejected:
            phase.set_label(outcome="lookup-failed")
            phase.finish()
            root.set_label(state="failed")
            root.finish()
            promise.reject(settled.error())  # type: ignore[arg-type]
            return
        results: List[ServiceDescription] = settled.result()
        if not results:
            phase.set_label(outcome="no-supplier")
            phase.finish()
            root.set_label(state="failed")
            root.finish()
            promise.reject(
                ServiceNotFoundError(f"no supplier matched {query.service_type!r}")
            )
            return
        supplier = results[0]
        transaction_id = self._ids.next()
        contract = QoSContract(
            f"{transaction_id}-contract",
            str(self.rpc.transport.local_address),
            supplier.service_id,
            self.contract_terms,
        )
        transaction = Transaction(transaction_id, spec, supplier, on_data, contract)
        transaction.created_at = self._now()
        self._transactions[transaction_id] = transaction
        self._queries[transaction_id] = query
        self._consecutive_failures[transaction_id] = 0
        if isinstance(root, Span):
            root.set_label(txn=transaction_id, supplier=supplier.service_id)
            self._txn_spans[transaction_id] = root
        phase.set_label(outcome="established")
        phase.finish()
        transaction.transition(TransactionState.ACTIVE)
        self.events.emit("established", transaction)
        with TRACER.activate(root if isinstance(root, Span) else None):
            self._start_driving(transaction)
        promise.fulfill(transaction)

    # --------------------------------------------------------------- driving

    def _start_driving(self, transaction: Transaction) -> None:
        kind = transaction.spec.kind
        if kind == TransactionKind.ON_DEMAND:
            self._fire(transaction, complete_after=True)
        elif kind == TransactionKind.CONTINUOUS:
            self._schedule_next_period(transaction)
        elif kind == TransactionKind.INTERMITTENT:
            now = self._now()
            for when in transaction.spec.predicted_times:
                # Episodes whose predicted time passed while the transaction
                # was being established fire immediately rather than being
                # silently skipped.
                self.rpc.transport.scheduler.schedule(
                    max(0.0, when - now), self._fire_if_active, transaction, False
                )

    def _schedule_next_period(self, transaction: Transaction) -> None:
        self.rpc.transport.scheduler.schedule(
            transaction.spec.interval_s, self._periodic_fire, transaction
        )

    def _periodic_fire(self, transaction: Transaction) -> None:
        if transaction.finished:
            return
        if transaction.active:
            self._fire(transaction, complete_after=False)
        self._schedule_next_period(transaction)

    def _fire_if_active(self, transaction: Transaction, complete_after: bool) -> None:
        if transaction.active:
            self._fire(transaction, complete_after)

    def _fire(self, transaction: Transaction, complete_after: bool) -> None:
        started = self._now()
        destination = Address.parse(transaction.supplier.provider)
        delivery: Any = NOOP_SPAN
        if TRACER.enabled:
            delivery = TRACER.span(
                "txn.delivery",
                parent=self._txn_spans.get(transaction.transaction_id),
                node=self.rpc.transport.local_address.node,
                txn=transaction.transaction_id,
                operation=transaction.spec.operation,
                supplier=transaction.supplier.service_id,
            )
        with TRACER.activate(delivery):
            call = self.rpc.call(
                destination,
                transaction.spec.operation,
                transaction.spec.params,
                timeout_s=self.call_timeout_s,
            )
        call.on_settle(
            lambda settled: self._on_call_settled(
                settled, transaction, started, complete_after, delivery
            )
        )

    def _on_call_settled(
        self,
        settled: Promise,
        transaction: Transaction,
        started: float,
        complete_after: bool,
        span: Any = NOOP_SPAN,
    ) -> None:
        span.set_label(status="ok" if settled.fulfilled else "failed")
        span.finish()
        if transaction.finished:
            return
        if settled.fulfilled:
            self._consecutive_failures[transaction.transaction_id] = 0
            transaction.deliver(settled.result(), self._now() - started)
            if complete_after:
                self._finish(transaction, TransactionState.COMPLETED)
            return
        transaction.delivery_failed()
        failures = self._consecutive_failures.get(transaction.transaction_id, 0) + 1
        self._consecutive_failures[transaction.transaction_id] = failures
        if failures >= self.failure_threshold:
            self._attempt_transfer(transaction, complete_after)
        elif transaction.spec.kind != TransactionKind.CONTINUOUS:
            # One-shot fires (on-demand, intermittent episodes) retry
            # immediately; continuous streams are retried by their cadence.
            self._fire(transaction, complete_after)

    # -------------------------------------------------------------- transfer

    def request_transfer(self, transaction: Transaction) -> None:
        """Proactively move a transaction off its current supplier.

        Used by the handoff manager when the supplier is about to leave
        radio range (Section 3.7): the transaction is re-matched and
        retargeted before deliveries start failing.
        """
        self._attempt_transfer(transaction, complete_after=False)

    def _attempt_transfer(self, transaction: Transaction, complete_after: bool) -> None:
        """Re-discover and retarget; abort if the world has nothing left."""
        query = self._queries.get(transaction.transaction_id)
        if query is None or transaction.finished:
            return
        if transaction.state == TransactionState.ACTIVE:
            transaction.transition(TransactionState.SUSPENDED)

        transfer: Any = NOOP_SPAN
        if TRACER.enabled:
            transfer = TRACER.span(
                "txn.transfer",
                parent=self._txn_spans.get(transaction.transaction_id),
                node=self.rpc.transport.local_address.node,
                txn=transaction.transaction_id,
                old_supplier=transaction.supplier.service_id,
            )

        def on_relookup(settled: Promise) -> None:
            if transaction.finished:
                transfer.set_label(outcome="already-finished")
                transfer.finish()
                return
            candidates: List[ServiceDescription] = (
                settled.result() if settled.fulfilled else []
            )
            replacements = [
                c for c in candidates
                if c.service_id != transaction.supplier.service_id
            ]
            if not replacements:
                transfer.set_label(outcome="aborted")
                transfer.finish()
                self._finish(transaction, TransactionState.ABORTED)
                return
            old_supplier = transaction.supplier.service_id
            transfer.set_label(outcome="transferred",
                               new_supplier=replacements[0].service_id)
            transfer.finish()
            transaction.retarget(replacements[0])
            transaction.transition(TransactionState.TRANSFERRED)
            transaction.transition(TransactionState.ACTIVE)
            self._consecutive_failures[transaction.transaction_id] = 0
            if transaction.contract is not None:
                transaction.contract.reset_window()
            self.events.emit("transferred", transaction, old_supplier)
            if complete_after or transaction.spec.kind == TransactionKind.ON_DEMAND:
                self._fire(transaction, complete_after=True)

        with TRACER.activate(transfer):
            self.discovery.lookup(query).on_settle(on_relookup)

    # ------------------------------------------------------------- stopping

    def stop(self, transaction: Transaction) -> None:
        """Gracefully complete a transaction (continuous streams end here)."""
        if not transaction.finished:
            self._finish(transaction, TransactionState.COMPLETED)

    def abort(self, transaction: Transaction) -> None:
        if not transaction.finished:
            self._finish(transaction, TransactionState.ABORTED)

    def _finish(self, transaction: Transaction, state: TransactionState) -> None:
        transaction.transition(state)
        transaction.completed_at = self._now()
        root = self._txn_spans.pop(transaction.transaction_id, None)
        if root is not None:
            root.set_label(state=str(getattr(state, "value", state)))
            root.finish()
        event = "completed" if state == TransactionState.COMPLETED else "aborted"
        self.events.emit(event, transaction)
