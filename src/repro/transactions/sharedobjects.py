"""Distributed shared objects with invalidation-based caching.

The "shared memory" and "remote objects to physically distributed objects"
strand of the literature review ([61, 69]): a :class:`SharedObjectHost`
holds the authoritative copies; :class:`SharedObjectCache` clients read
through a local cache that the host invalidates on writes. Reads of a
cached object cost nothing on the wire; writes cost one update plus one
invalidation per caching node — the classic trade the E6 workload measures.

Protocol (codec dicts)::

    get:        {"op": "get", "rid", "key"}           -> value + version
    put:        {"op": "put", "rid", "key", "value"}  -> new version
    watch:      {"op": "watch", "key"}   (register for invalidations)
    invalidate: {"op": "invalidate", "key", "version"}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.interop.codec import Codec, get_codec
from repro.transport.base import Address, Transport
from repro.util.ids import IdGenerator
from repro.util.promise import Promise


@dataclass
class _Stored:
    value: Any
    version: int


class SharedObjectHost:
    """Authoritative object store with watcher invalidation."""

    def __init__(self, transport: Transport, codec: Optional[Codec] = None):
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self._objects: Dict[str, _Stored] = {}
        self._watchers: Dict[str, Set[Address]] = {}
        self.reads_served = 0
        self.writes_served = 0
        self.invalidations_sent = 0
        transport.set_receiver(self._on_message)

    def value(self, key: str) -> Any:
        stored = self._objects.get(key)
        return stored.value if stored else None

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        if op == "get":
            self.reads_served += 1
            stored = self._objects.get(message["key"])
            self.transport.send(
                source,
                self.codec.encode(
                    {
                        "op": "got",
                        "rid": message["rid"],
                        "value": stored.value if stored else None,
                        "version": stored.version if stored else 0,
                    }
                ),
            )
        elif op == "put":
            self.writes_served += 1
            key = message["key"]
            stored = self._objects.get(key)
            version = (stored.version if stored else 0) + 1
            self._objects[key] = _Stored(message["value"], version)
            self._invalidate(key, version, exclude=source)
            self.transport.send(
                source,
                self.codec.encode(
                    {"op": "put_ack", "rid": message["rid"], "version": version}
                ),
            )
        elif op == "watch":
            self._watchers.setdefault(message["key"], set()).add(source)

    def _invalidate(self, key: str, version: int, exclude: Address) -> None:
        for watcher in sorted(self._watchers.get(key, ()), key=str):
            if watcher == exclude:
                continue
            self.invalidations_sent += 1
            self.transport.send(
                watcher,
                self.codec.encode({"op": "invalidate", "key": key, "version": version}),
            )


class SharedObjectCache:
    """A caching client: reads hit the cache until invalidated."""

    def __init__(
        self,
        transport: Transport,
        host_address: Address,
        codec: Optional[Codec] = None,
    ):
        self.transport = transport
        self.host_address = host_address
        self.codec = codec if codec is not None else get_codec("binary")
        self._rids = IdGenerator(f"so:{transport.local_address}")
        # rid -> (promise, key for cache fill or None)
        self._pending: Dict[str, Tuple[Promise, Optional[str]]] = {}
        self._cache: Dict[str, Tuple[Any, int]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.invalidations_received = 0
        transport.set_receiver(self._on_message)

    # ------------------------------------------------------------------- API

    def read(self, key: str) -> Promise:
        """Fulfills with the value; served locally when the cache is warm."""
        cached = self._cache.get(key)
        promise: Promise = Promise()
        if cached is not None:
            self.cache_hits += 1
            promise.fulfill(cached[0])
            return promise
        self.cache_misses += 1
        rid = self._rids.next()
        self._pending[rid] = (promise, key)
        self.transport.send(
            self.host_address,
            self.codec.encode({"op": "watch", "key": key}),
        )
        self.transport.send(
            self.host_address,
            self.codec.encode({"op": "get", "rid": rid, "key": key}),
        )
        return promise

    def write(self, key: str, value: Any) -> Promise:
        """Fulfills with the new version; updates the local cache eagerly."""
        rid = self._rids.next()
        promise: Promise = Promise()
        self._pending[rid] = (promise, None)

        def update_cache(settled: Promise) -> None:
            if settled.fulfilled:
                self._cache[key] = (value, settled.result())

        promise.on_settle(update_cache)
        self.transport.send(
            self.host_address,
            self.codec.encode({"op": "watch", "key": key}),
        )
        self.transport.send(
            self.host_address,
            self.codec.encode({"op": "put", "rid": rid, "key": key, "value": value}),
        )
        return promise

    def cached_version(self, key: str) -> int:
        entry = self._cache.get(key)
        return entry[1] if entry else 0

    # -------------------------------------------------------------- plumbing

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        if op == "invalidate":
            self.invalidations_received += 1
            cached = self._cache.get(message["key"])
            if cached is not None and cached[1] < message["version"]:
                del self._cache[message["key"]]
            return
        entry = self._pending.pop(message.get("rid"), None)
        if entry is None:
            return
        promise, cache_key = entry
        if op == "got":
            if cache_key is not None and message.get("version", 0) > 0:
                self._cache[cache_key] = (message.get("value"), message["version"])
            promise.fulfill(message.get("value"))
        elif op == "put_ack":
            promise.fulfill(message.get("version"))
