"""Distributed shared objects with invalidation-based caching.

The "shared memory" and "remote objects to physically distributed objects"
strand of the literature review ([61, 69]): a :class:`SharedObjectHost`
holds the authoritative copies; :class:`SharedObjectCache` clients read
through a local cache that the host invalidates on writes. Reads of a
cached object cost nothing on the wire; writes cost one update plus one
invalidation per caching node — the classic trade the E6 workload measures.

Protocol (codec dicts)::

    get:        {"op": "get", "rid", "key", "watch": true}   -> value + version
    put:        {"op": "put", "rid", "key", "value", "watch": true} -> new version
    watch:      {"op": "watch", "key"}   (standalone registration, legacy)
    invalidate: {"op": "invalidate", "key", "version"[, "wid"]}
    inv_ack:    {"op": "inv_ack", "wid"}  (write-through-acks mode only)

Watch registration rides *inside* the get/put message rather than as a
separate frame: over a lossy transport a standalone watch could be dropped
while the put it accompanied got through, leaving a cache that fills itself
but never hears invalidations — a stale-read hole no amount of host-side
care can close.

Consistency: by default writes are acknowledged as soon as the host
applies them, while invalidations race toward the caches — reads are
*coherent* (version-monotone per client) but a cache may serve a stale
value for one invalidation flight-time after a remote write completed.
With ``write_through_acks=True`` the host withholds the write ack until
every watcher has acknowledged its invalidation, which closes that window
and makes the register **linearizable**: once a write returns, no cache
anywhere still holds the old value. The simulation-testing framework
(:mod:`repro.simtest`) checks exactly that with a Wing–Gong linearizability
pass over recorded histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.interop.codec import Codec, get_codec
from repro.transport.base import Address, Transport
from repro.util.ids import IdGenerator
from repro.util.promise import Promise


@dataclass
class _Stored:
    value: Any
    version: int


class SharedObjectHost:
    """Authoritative object store with watcher invalidation.

    ``write_through_acks=True`` selects the linearizable write protocol:
    the put ack is withheld until every watcher (other than the writer)
    has acknowledged the invalidation, so a completed write guarantees no
    cache still serves the old value. While a key has writes in that state
    the host also *defers* reads of it — answering a get mid-invalidation
    would let a reader observe the new value while another cache can still
    serve the old one, which breaks the real-time order linearizability
    promises. A watcher that is down or partitioned stalls the write (and
    reads of that key) until it acks — callers see pending promises, not
    stale-read anomalies.
    """

    def __init__(self, transport: Transport, codec: Optional[Codec] = None,
                 write_through_acks: bool = False):
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self.write_through_acks = write_through_acks
        self._objects: Dict[str, _Stored] = {}
        self._watchers: Dict[str, Set[Address]] = {}
        # wid -> (writer address, rid, key, version, watchers yet to ack).
        self._pending_writes: Dict[
            int, Tuple[Address, Any, str, int, Set[Address]]
        ] = {}
        self._next_wid = 0
        # key -> count of writes still gathering inv_acks; gets on such a
        # key are deferred until the count drains back to zero.
        self._pending_by_key: Dict[str, int] = {}
        self._deferred_gets: Dict[str, List[Tuple[Address, Any]]] = {}
        self.reads_served = 0
        self.writes_served = 0
        self.invalidations_sent = 0
        transport.set_receiver(self._on_message)

    def value(self, key: str) -> Any:
        stored = self._objects.get(key)
        return stored.value if stored else None

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        if op == "get":
            key = message["key"]
            if message.get("watch"):
                self._watchers.setdefault(key, set()).add(source)
            if self._get_must_wait(key):
                self._deferred_gets.setdefault(key, []).append(
                    (source, message["rid"])
                )
                return
            self._answer_get(source, message["rid"], key)
        elif op == "put":
            self.writes_served += 1
            key = message["key"]
            if message.get("watch"):
                self._watchers.setdefault(key, set()).add(source)
            stored = self._objects.get(key)
            version = (stored.version if stored else 0) + 1
            self._objects[key] = _Stored(message["value"], version)
            waiting = self._invalidate(key, version, exclude=source)
            if self.write_through_acks and waiting:
                wid = self._next_wid = self._next_wid + 1
                self._pending_writes[wid] = (source, message["rid"], key,
                                             version, set(waiting))
                self._pending_by_key[key] = self._pending_by_key.get(key, 0) + 1
                for watcher in waiting:
                    self._send_invalidate(watcher, key, version, wid)
                return
            for watcher in waiting:
                self._send_invalidate(watcher, key, version, None)
            self.transport.send(
                source,
                self.codec.encode(
                    {"op": "put_ack", "rid": message["rid"], "version": version}
                ),
            )
        elif op == "inv_ack":
            self._on_inv_ack(source, message.get("wid"))
        elif op == "watch":
            self._watchers.setdefault(message["key"], set()).add(source)

    def _get_must_wait(self, key: str) -> bool:
        """Whether a get must be deferred behind in-flight invalidations.

        In write-through mode, answering a get while a write's invalidations
        are still outstanding leaks the new value to one reader while another
        cache can still serve the old one — a non-linearizable interleaving.
        """
        return bool(self.write_through_acks and self._pending_by_key.get(key))

    def _invalidate(self, key: str, version: int, exclude: Address) -> List[Address]:
        """Watchers owed an invalidation for this write, in stable order."""
        return [
            watcher
            for watcher in sorted(self._watchers.get(key, ()), key=str)
            if watcher != exclude
        ]

    def _send_invalidate(self, watcher: Address, key: str, version: int,
                         wid: Optional[int]) -> None:
        self.invalidations_sent += 1
        message: Dict[str, Any] = {"op": "invalidate", "key": key,
                                   "version": version}
        if wid is not None:
            message["wid"] = wid
        self.transport.send(watcher, self.codec.encode(message))

    def _answer_get(self, source: Address, rid: Any, key: str) -> None:
        self.reads_served += 1
        stored = self._objects.get(key)
        self.transport.send(
            source,
            self.codec.encode(
                {
                    "op": "got",
                    "rid": rid,
                    "value": stored.value if stored else None,
                    "version": stored.version if stored else 0,
                }
            ),
        )

    def _on_inv_ack(self, source: Address, wid: Any) -> None:
        pending = self._pending_writes.get(wid)
        if pending is None:
            return
        writer, rid, key, version, waiting = pending
        waiting.discard(source)
        if waiting:
            return
        del self._pending_writes[wid]
        self.transport.send(
            writer,
            self.codec.encode({"op": "put_ack", "rid": rid, "version": version}),
        )
        remaining = self._pending_by_key.get(key, 1) - 1
        if remaining > 0:
            self._pending_by_key[key] = remaining
            return
        self._pending_by_key.pop(key, None)
        for reader, reader_rid in self._deferred_gets.pop(key, ()):
            self._answer_get(reader, reader_rid, key)


class SharedObjectCache:
    """A caching client: reads hit the cache until invalidated."""

    def __init__(
        self,
        transport: Transport,
        host_address: Address,
        codec: Optional[Codec] = None,
    ):
        self.transport = transport
        self.host_address = host_address
        self.codec = codec if codec is not None else get_codec("binary")
        self._rids = IdGenerator(f"so:{transport.local_address}")
        # rid -> (promise, key for cache fill or None)
        self._pending: Dict[str, Tuple[Promise, Optional[str]]] = {}
        self._cache: Dict[str, Tuple[Any, int]] = {}
        # key -> lowest version still admissible in the cache: invalidations
        # raise it so a late-arriving get reply or put ack (reordered behind
        # the invalidation that outdates it) can never re-cache stale data.
        self._floor: Dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.invalidations_received = 0
        transport.set_receiver(self._on_message)

    # ------------------------------------------------------------------- API

    def read(self, key: str) -> Promise:
        """Fulfills with the value; served locally when the cache is warm."""
        cached = self._cache.get(key)
        promise: Promise = Promise()
        if cached is not None:
            self.cache_hits += 1
            promise.fulfill(cached[0])
            return promise
        self.cache_misses += 1
        rid = self._rids.next()
        self._pending[rid] = (promise, key)
        self.transport.send(
            self.host_address,
            self.codec.encode(
                {"op": "get", "rid": rid, "key": key, "watch": True}
            ),
        )
        return promise

    def write(self, key: str, value: Any) -> Promise:
        """Fulfills with the new version; updates the local cache eagerly."""
        rid = self._rids.next()
        promise: Promise = Promise()
        self._pending[rid] = (promise, None)
        # The old cached value is unservable the moment the write is issued:
        # keeping it would let this client read its own stale data after
        # another client already observed the new value.
        self._cache.pop(key, None)

        def update_cache(settled: Promise) -> None:
            if settled.fulfilled:
                self._admit(key, value, settled.result())

        promise.on_settle(update_cache)
        self.transport.send(
            self.host_address,
            self.codec.encode(
                {"op": "put", "rid": rid, "key": key, "value": value,
                 "watch": True}
            ),
        )
        return promise

    def cached_version(self, key: str) -> int:
        entry = self._cache.get(key)
        return entry[1] if entry else 0

    # -------------------------------------------------------------- plumbing

    def _admit(self, key: str, value: Any, version: int) -> None:
        """Cache ``value`` unless a newer version or invalidation outranks it."""
        if version < self._floor.get(key, 0):
            return
        cached = self._cache.get(key)
        if cached is not None and cached[1] > version:
            return
        self._cache[key] = (value, version)

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        if op == "invalidate":
            self.invalidations_received += 1
            key, version = message["key"], message["version"]
            if self._floor.get(key, 0) < version:
                self._floor[key] = version
            cached = self._cache.get(key)
            if cached is not None and cached[1] < version:
                del self._cache[key]
            wid = message.get("wid")
            if wid is not None:
                # Write-through-acks host: confirm the stale copy is gone.
                self.transport.send(
                    source, self.codec.encode({"op": "inv_ack", "wid": wid})
                )
            return
        entry = self._pending.pop(message.get("rid"), None)
        if entry is None:
            return
        promise, cache_key = entry
        if op == "got":
            if cache_key is not None and message.get("version", 0) > 0:
                self._admit(cache_key, message.get("value"), message["version"])
            promise.fulfill(message.get("value"))
        elif op == "put_ack":
            promise.fulfill(message.get("version"))
