"""Linda-style tuple space.

The shared-memory/tuple-space middleware of the literature review ([69, 70];
LIME [68, 100] is the authors' own lineage). A tuple is a list of values; a
template is a list where ``None`` matches anything and a type-name string
like ``"?int"`` matches any value of that type. Operations:

* ``out(tuple)`` — write;
* ``rd(template)`` / ``in_(template)`` — blocking read / take (the promise
  settles when a match appears);
* ``rdp(template)`` / ``inp(template)`` — non-blocking probes (fulfill with
  the tuple or None immediately).

Blocked readers are served in arrival order; a single ``out`` wakes every
matching ``rd`` but only the first matching ``in``.

Protocol (codec dicts): ``{"op": out|rd|in|rdp|inp, "rid", "tuple"|"template"}``
answered by ``{"op": "tuple", "rid", "tuple": t or None}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.interop.codec import Codec, get_codec
from repro.transport.base import Address, Transport
from repro.util.ids import IdGenerator
from repro.util.promise import Promise

_TYPE_NAMES = {
    "?int": int,
    "?float": float,
    "?str": str,
    "?bool": bool,
    "?bytes": bytes,
    "?list": list,
    "?dict": dict,
}


def template_matches(template: List[Any], candidate: List[Any]) -> bool:
    """Match a template against a tuple."""
    if len(template) != len(candidate):
        return False
    for pattern, value in zip(template, candidate):
        if pattern is None:
            continue
        if isinstance(pattern, str) and pattern in _TYPE_NAMES:
            expected = _TYPE_NAMES[pattern]
            if expected in (int, float) and isinstance(value, bool):
                return False
            if not isinstance(value, expected):
                return False
            continue
        if pattern != value:
            return False
    return True


@dataclass
class _Waiter:
    source: Address
    rid: Any
    template: List[Any]
    destructive: bool


class TupleSpaceServer:
    """The space itself."""

    def __init__(self, transport: Transport, codec: Optional[Codec] = None):
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self._tuples: List[List[Any]] = []
        self._waiters: List[_Waiter] = []
        self.outs = 0
        self.takes = 0
        self.reads = 0
        transport.set_receiver(self._on_message)

    def __len__(self) -> int:
        return len(self._tuples)

    def snapshot(self) -> List[List[Any]]:
        return [list(t) for t in self._tuples]

    # -------------------------------------------------------------- protocol

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        rid = message.get("rid")
        if op == "out":
            self._handle_out(list(message["tuple"]))
            if rid is not None:
                self._answer(source, rid, list(message["tuple"]))
        elif op in ("rd", "in"):
            self._handle_blocking(source, rid, list(message["template"]), op == "in")
        elif op in ("rdp", "inp"):
            self._handle_probe(source, rid, list(message["template"]), op == "inp")

    def _answer(self, destination: Address, rid: Any, value: Optional[List[Any]]) -> None:
        self.transport.send(
            destination, self.codec.encode({"op": "tuple", "rid": rid, "tuple": value})
        )

    def _handle_out(self, new_tuple: List[Any]) -> None:
        self.outs += 1
        # Wake matching waiters: every rd, at most one in (which consumes).
        consumed = False
        remaining: List[_Waiter] = []
        for waiter in self._waiters:
            if consumed and waiter.destructive:
                remaining.append(waiter)
                continue
            if template_matches(waiter.template, new_tuple):
                self._answer(waiter.source, waiter.rid, new_tuple)
                if waiter.destructive:
                    self.takes += 1
                    consumed = True
                else:
                    self.reads += 1
            else:
                remaining.append(waiter)
        self._waiters = remaining
        if not consumed:
            self._tuples.append(new_tuple)

    def _find(self, template: List[Any]) -> Optional[int]:
        for i, candidate in enumerate(self._tuples):
            if template_matches(template, candidate):
                return i
        return None

    def _handle_blocking(
        self, source: Address, rid: Any, template: List[Any], destructive: bool
    ) -> None:
        index = self._find(template)
        if index is None:
            self._waiters.append(_Waiter(source, rid, template, destructive))
            return
        matched = self._tuples[index]
        if destructive:
            self.takes += 1
            del self._tuples[index]
        else:
            self.reads += 1
        self._answer(source, rid, matched)

    def _handle_probe(
        self, source: Address, rid: Any, template: List[Any], destructive: bool
    ) -> None:
        index = self._find(template)
        if index is None:
            self._answer(source, rid, None)
            return
        matched = self._tuples[index]
        if destructive:
            self.takes += 1
            del self._tuples[index]
        else:
            self.reads += 1
        self._answer(source, rid, matched)


class TupleSpaceClient:
    """A handle onto a tuple-space server."""

    def __init__(
        self,
        transport: Transport,
        space_address: Address,
        codec: Optional[Codec] = None,
    ):
        self.transport = transport
        self.space_address = space_address
        self.codec = codec if codec is not None else get_codec("binary")
        self._rids = IdGenerator(f"ts:{transport.local_address}")
        self._pending: Dict[str, Promise] = {}
        transport.set_receiver(self._on_message)

    def _request(self, message: Dict[str, Any]) -> Promise:
        rid = self._rids.next()
        message["rid"] = rid
        promise: Promise = Promise()
        self._pending[rid] = promise
        self.transport.send(self.space_address, self.codec.encode(message))
        return promise

    def out(self, *values: Any, confirm: bool = False) -> Optional[Promise]:
        """Write a tuple. Fire-and-forget unless ``confirm``."""
        if confirm:
            return self._request({"op": "out", "tuple": list(values)})
        self.transport.send(
            self.space_address,
            self.codec.encode({"op": "out", "tuple": list(values)}),
        )
        return None

    def rd(self, *template: Any) -> Promise:
        """Blocking read: fulfills (possibly much later) with a matching tuple."""
        return self._request({"op": "rd", "template": list(template)})

    def in_(self, *template: Any) -> Promise:
        """Blocking take: like rd but removes the tuple."""
        return self._request({"op": "in", "template": list(template)})

    def rdp(self, *template: Any) -> Promise:
        """Probe read: fulfills immediately with the tuple or None."""
        return self._request({"op": "rdp", "template": list(template)})

    def inp(self, *template: Any) -> Promise:
        """Probe take: fulfills immediately with the tuple or None."""
        return self._request({"op": "inp", "template": list(template)})

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        promise = self._pending.pop(message.get("rid"), None)
        if promise is not None:
            promise.fulfill(message.get("tuple"))
