"""Multimedia data streams (Section 3.10).

The paper's miscellaneous requirements include "multimedia data streams"
among the application types middleware must serve, with the §3.4
observation that real-time data is valuable only if it arrives in time.
This module provides the streaming pair:

* :class:`StreamingSource` — emits fixed-size media frames at a constant
  rate (CBR) over any transport, sequence-numbered and timestamped;
* :class:`StreamingSink` — receives frames into a **jitter buffer**: play-
  out of frame *k* happens at ``first_frame_arrival + playout_delay_s +
  k * frame_interval``; a frame that misses its slot is a **late drop**, a
  missing frame is an **underrun**. The continuity metric (frames played on
  time / frames expected) is the standard streaming-quality figure, and the
  playout delay is the knob trading latency for continuity.

Frames are tiny binary headers + opaque payload (codec-free: media bytes
are not structured data)::

    u32 seq | f64 media timestamp | payload
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.transport.base import Address, Transport

_HEADER = struct.Struct(">Id")

#: Accounted per-frame overhead of the streaming header.
STREAM_HEADER_BYTES = _HEADER.size


class StreamingSource:
    """Emits a CBR media stream to one sink."""

    def __init__(
        self,
        transport: Transport,
        sink: Address,
        frame_interval_s: float = 0.04,  # 25 fps
        frame_bytes: int = 512,
        total_frames: Optional[int] = None,
    ):
        if frame_interval_s <= 0:
            raise ConfigurationError(
                f"frame interval must be positive, got {frame_interval_s!r}"
            )
        if frame_bytes <= 0:
            raise ConfigurationError(
                f"frame size must be positive, got {frame_bytes!r}"
            )
        self.transport = transport
        self.sink = sink
        self.frame_interval_s = frame_interval_s
        self.frame_bytes = frame_bytes
        self.total_frames = total_frames
        self.frames_sent = 0
        self._running = False

    def start(self) -> None:
        """Begin emitting frames on the transport's scheduler."""
        if self._running:
            return
        self._running = True
        self._emit()

    def stop(self) -> None:
        self._running = False

    def _emit(self) -> None:
        if not self._running or self.transport.closed:
            return
        if self.total_frames is not None and self.frames_sent >= self.total_frames:
            self._running = False
            return
        seq = self.frames_sent
        timestamp = seq * self.frame_interval_s
        payload = _HEADER.pack(seq, timestamp) + bytes(self.frame_bytes)
        self.transport.send(self.sink, payload)
        self.frames_sent += 1
        self.transport.scheduler.schedule(self.frame_interval_s, self._emit)


class StreamingSink:
    """Receives frames into a jitter buffer and plays them on schedule."""

    def __init__(
        self,
        transport: Transport,
        frame_interval_s: float = 0.04,
        playout_delay_s: float = 0.2,
        stall_limit: int = 25,
    ):
        if playout_delay_s < 0:
            raise ConfigurationError(
                f"playout delay must be >= 0, got {playout_delay_s!r}"
            )
        if stall_limit < 1:
            raise ConfigurationError(f"stall limit must be >= 1, got {stall_limit!r}")
        self.transport = transport
        self.frame_interval_s = frame_interval_s
        self.playout_delay_s = playout_delay_s
        self.stall_limit = stall_limit
        self._buffer: Dict[int, float] = {}  # seq -> arrival time
        self._playout_started = False
        self._playout_stopped = False
        self._playout_epoch = 0.0
        self._next_seq = 0
        self._trailing_misses = 0
        self.frames_received = 0
        self.frames_played = 0
        self.late_drops = 0
        self.underruns = 0
        self.duplicate_frames = 0
        self.latencies: List[float] = []
        transport.set_receiver(self._on_frame)

    # -------------------------------------------------------------- receive

    def _now(self) -> float:
        return self.transport.scheduler.now()

    def _on_frame(self, source: Address, payload: bytes) -> None:
        if len(payload) < _HEADER.size:
            return
        seq, _timestamp = _HEADER.unpack_from(payload, 0)
        now = self._now()
        self.frames_received += 1
        if seq < self._next_seq:
            # Its playout slot already passed (or it's a duplicate).
            if seq in self._buffer:
                self.duplicate_frames += 1
            else:
                self.late_drops += 1
            return
        if seq in self._buffer:
            self.duplicate_frames += 1
            return
        self._buffer[seq] = now
        if not self._playout_started:
            self._playout_started = True
            self._playout_epoch = now + self.playout_delay_s
            self.transport.scheduler.schedule(self.playout_delay_s, self._play_tick)

    # --------------------------------------------------------------- playout

    def _play_tick(self) -> None:
        if self.transport.closed or self._playout_stopped:
            return
        seq = self._next_seq
        arrival = self._buffer.pop(seq, None)
        if arrival is not None:
            self.frames_played += 1
            self.latencies.append(self._now() - arrival)
            self._trailing_misses = 0
        else:
            self.underruns += 1
            if self._buffer:
                # Later frames exist: a genuine mid-stream glitch.
                self._trailing_misses = 0
            else:
                # Nothing buffered at all: possibly the stream ended.
                self._trailing_misses += 1
                if self._trailing_misses >= self.stall_limit:
                    # End of stream: the trailing empty slots were not
                    # playback glitches — roll them back and stop. The
                    # current slot was never advanced past, hence the -1.
                    self.underruns -= self._trailing_misses
                    self._next_seq -= self._trailing_misses - 1
                    self._trailing_misses = 0
                    self._playout_stopped = True
                    return
        self._next_seq += 1
        self.transport.scheduler.schedule(self.frame_interval_s, self._play_tick)

    # --------------------------------------------------------------- metrics

    @property
    def frames_expected(self) -> int:
        """Playout slots elapsed since the stream began.

        Trailing empty slots (a possibly-ended stream) are excluded as they
        accrue; if frames resume, they are re-counted as real underruns.
        """
        return self._next_seq - self._trailing_misses

    def continuity(self) -> float:
        """Frames played on time / playout slots (1.0 = glitch-free)."""
        expected = self.frames_expected
        if expected <= 0:
            return 0.0
        return self.frames_played / expected

    def mean_buffer_wait_s(self) -> float:
        """Average time frames sat in the jitter buffer before playout."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)
