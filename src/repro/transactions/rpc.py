"""Remote procedure calls.

An :class:`RpcEndpoint` both serves and calls: expose handlers with
:meth:`RpcEndpoint.expose`, invoke remote ones with :meth:`RpcEndpoint.call`
(promise-based, with timeout and optional retries) or
:meth:`RpcEndpoint.notify` (asynchronous one-way — Section 3.6 asks that
the interaction technology "provide asynchronous connections").

Optional :class:`~repro.interop.schema.InterfaceSchema` validation enforces
the markup-described contract on both parameters and results.

Protocol (codec dicts)::

    {"op": "call",   "rid": id, "method": name, "params": {...}}
    {"op": "notify",            "method": name, "params": {...}}
    {"op": "result", "rid": id, "value": ...}
    {"op": "error",  "rid": id, "type": exc type name, "msg": text}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import AdmissionRefused, RemoteError, RpcError, RpcTimeoutError, SchemaError
from repro.interop.codec import Codec, get_codec, try_decode_dict
from repro.interop.schema import InterfaceSchema
from repro.obs.tracing import NOOP_SPAN, TRACER
from repro.transport.base import Address, Transport
from repro.util.ids import IdGenerator
from repro.util.promise import Promise

Handler = Callable[..., Any]


@dataclass
class _PendingCall:
    promise: Promise
    destination: Address
    method: str
    params: Dict[str, Any]
    retries_left: int
    timeout_s: float
    timer: Any
    span: Any = NOOP_SPAN  # open rpc.call span; closed when the call settles


class RpcEndpoint:
    """A bidirectional RPC endpoint over one transport."""

    def __init__(
        self,
        transport: Transport,
        codec: Optional[Codec] = None,
        interface: Optional[InterfaceSchema] = None,
        default_timeout_s: float = 2.0,
        admission: Optional[Any] = None,
        admission_class: str = "normal",
    ):
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self.interface = interface
        self.default_timeout_s = default_timeout_s
        # Optional AdmissionController consulted before each outbound call;
        # refused calls reject immediately with a retry_after_s hint instead
        # of adding load (timeouts, retransmits) to an overloaded system.
        self.admission = admission
        self.admission_class = admission_class
        self._handlers: Dict[str, Handler] = {}
        self._rids = IdGenerator(f"rpc:{transport.local_address}")
        self._pending: Dict[str, _PendingCall] = {}
        self.calls_made = 0
        self.calls_served = 0
        self.timeouts = 0
        self.admission_rejected = 0
        self.malformed_frames = 0
        transport.set_receiver(self._on_message)

    # ---------------------------------------------------------------- serving

    def expose(self, method: str, handler: Handler) -> None:
        """Register a handler; it receives params as keyword arguments.

        With an interface schema attached, the method must exist in the
        schema and params/results are validated.
        """
        if self.interface is not None:
            self.interface.operation(method)  # raises if undeclared
        if method in self._handlers:
            raise RpcError(f"method {method!r} already exposed")
        self._handlers[method] = handler

    def _serve(self, source: Address, rid: Optional[str], method: str,
               params: Mapping[str, Any]) -> None:
        if TRACER.enabled:
            with TRACER.span("rpc.serve",
                             node=self.transport.local_address.node,
                             method=method, peer=source.node):
                self._serve_inner(source, rid, method, params)
        else:
            self._serve_inner(source, rid, method, params)

    def _serve_inner(self, source: Address, rid: Optional[str], method: str,
                     params: Mapping[str, Any]) -> None:
        handler = self._handlers.get(method)
        try:
            if handler is None:
                raise RpcError(f"no such method {method!r}")
            if self.interface is not None:
                self.interface.operation(method).validate_params(params)
            value = handler(**params)
            if self.interface is not None:
                self.interface.operation(method).validate_result(value)
        except Exception as exc:  # noqa: BLE001 - marshalled to the caller
            if rid is not None:
                self._send(source, {"op": "error", "rid": rid,
                                    "type": type(exc).__name__, "msg": str(exc)})
            return
        self.calls_served += 1
        if rid is not None:
            self._send(source, {"op": "result", "rid": rid, "value": value})

    # ---------------------------------------------------------------- calling

    def call(
        self,
        destination: Address,
        method: str,
        params: Optional[Mapping[str, Any]] = None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        priority: Optional[str] = None,
    ) -> Promise:
        """Invoke a remote method; fulfills with the result value.

        Rejects with :class:`RpcTimeoutError` after ``retries`` re-sends all
        time out, or :class:`RemoteError` if the handler raised. With an
        admission controller attached, a call the controller refuses rejects
        *immediately* with :class:`AdmissionRefused` carrying the
        ``retry_after_s`` pacing hint — nothing reaches the wire.
        ``priority`` selects the admission class (default
        :attr:`admission_class`).
        """
        params = dict(params or {})
        if self.admission is not None:
            cls = priority if priority is not None else self.admission_class
            retry_after = self.admission.try_admit(
                cls, now=self.transport.scheduler.now()
            )
            if retry_after is not None:
                self.admission_rejected += 1
                refused: Promise = Promise()
                refused.reject(AdmissionRefused(
                    f"call {method!r} refused by admission class {cls!r}",
                    retry_after_s=retry_after,
                ))
                return refused
        if self.interface is not None:
            try:
                self.interface.operation(method).validate_params(params)
            except SchemaError as exc:
                failed: Promise = Promise()
                failed.reject(exc)
                return failed
        rid = self._rids.next()
        promise: Promise = Promise()
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        pending = _PendingCall(promise, destination, method, params, retries, timeout, None)
        if TRACER.enabled:
            pending.span = TRACER.span(
                "rpc.call", node=self.transport.local_address.node,
                method=method, peer=destination.node,
            )
        self._pending[rid] = pending
        self._transmit_call(rid, pending)
        return promise

    def notify(
        self,
        destination: Address,
        method: str,
        params: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Asynchronous one-way invocation: no reply, no completion signal."""
        self.calls_made += 1
        self._send(destination, {"op": "notify", "method": method,
                                 "params": dict(params or {})})

    def _transmit_call(self, rid: str, pending: _PendingCall) -> None:
        self.calls_made += 1
        with TRACER.activate(pending.span):
            self._send(
                pending.destination,
                {"op": "call", "rid": rid, "method": pending.method,
                 "params": pending.params},
            )
        pending.timer = self.transport.scheduler.schedule(
            pending.timeout_s, self._on_call_timeout, rid
        )

    def _on_call_timeout(self, rid: str) -> None:
        pending = self._pending.get(rid)
        if pending is None:
            return
        if pending.retries_left > 0:
            pending.retries_left -= 1
            self._transmit_call(rid, pending)
            return
        del self._pending[rid]
        self.timeouts += 1
        pending.span.set_label(status="timeout")
        pending.span.finish()
        pending.promise.reject(
            RpcTimeoutError(
                f"call {pending.method!r} to {pending.destination} timed out"
            )
        )

    # -------------------------------------------------------------- receiving

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = try_decode_dict(self.codec, payload)
        if message is None:
            self.malformed_frames += 1
            return
        op = message.get("op")
        if op == "call":
            method = message.get("method")
            if not isinstance(method, str):
                self.malformed_frames += 1
                return
            self._serve(source, message.get("rid"), method,
                        message.get("params", {}))
        elif op == "notify":
            method = message.get("method")
            if not isinstance(method, str):
                self.malformed_frames += 1
                return
            self._serve(source, None, method, message.get("params", {}))
        elif op in ("result", "error"):
            pending = self._pending.pop(message.get("rid"), None)
            if pending is None:
                return  # late reply after timeout: drop
            if pending.timer is not None:
                cancel = getattr(pending.timer, "cancel", None)
                if cancel is not None:
                    cancel()
            pending.span.set_label(status="ok" if op == "result" else "error")
            pending.span.finish()
            if op == "result":
                pending.promise.fulfill(message.get("value"))
            else:
                pending.promise.reject(
                    RemoteError(message.get("type", "Exception"), message.get("msg", ""))
                )

    def _send(self, destination: Address, message: Dict[str, Any]) -> None:
        self.transport.send(destination, self.codec.encode(message))
