"""The transaction abstraction.

Section 3.6: "We use the word transaction to denote this interaction
between a service supplier and a service consumer. ... Transactions can be
classified as continuous, intermittent with some prediction, or on demand
scheduling."

A :class:`Transaction` is the middleware-visible record of one such
interaction: who talks to whom, in which mode, under which QoS contract,
and in which lifecycle state. The :class:`TransactionManager` creates and
drives them; the scheduler and handoff manager reorder and migrate them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.discovery.description import ServiceDescription
from repro.errors import TransactionError
from repro.qos.contract import QoSContract
from repro.util.events import EventEmitter


class TransactionKind(enum.Enum):
    """The paper's three transaction classes."""

    CONTINUOUS = "continuous"  # periodic data flow (sensor streams)
    INTERMITTENT = "intermittent"  # predicted episodes (scheduled bursts)
    ON_DEMAND = "on_demand"  # single request/response


class TransactionState(enum.Enum):
    PENDING = "pending"  # created, supplier not yet engaged
    ACTIVE = "active"  # data flowing
    SUSPENDED = "suspended"  # paused (e.g. during handoff)
    TRANSFERRED = "transferred"  # moved to a different supplier
    COMPLETED = "completed"
    ABORTED = "aborted"


#: Legal lifecycle moves.
_ALLOWED = {
    TransactionState.PENDING: {TransactionState.ACTIVE, TransactionState.ABORTED},
    TransactionState.ACTIVE: {
        TransactionState.SUSPENDED,
        TransactionState.COMPLETED,
        TransactionState.ABORTED,
        TransactionState.TRANSFERRED,
    },
    TransactionState.SUSPENDED: {
        TransactionState.ACTIVE,
        TransactionState.TRANSFERRED,
        TransactionState.ABORTED,
    },
    TransactionState.TRANSFERRED: {TransactionState.ACTIVE, TransactionState.ABORTED},
    TransactionState.COMPLETED: set(),
    TransactionState.ABORTED: set(),
}

DataCallback = Callable[[Any, float], None]  # (value, latency_s)


@dataclass
class TransactionSpec:
    """Static parameters of a transaction."""

    kind: TransactionKind
    operation: str = "read"
    params: dict = field(default_factory=dict)
    interval_s: float = 1.0  # CONTINUOUS: data period
    predicted_times: tuple = ()  # INTERMITTENT: absolute activation times
    deadline_s: Optional[float] = None  # relative completion deadline
    priority: int = 0  # larger = more urgent


class Transaction:
    """One supplier-consumer interaction, with a guarded state machine.

    Events (via :attr:`events`): ``"state_changed"`` (transaction, old, new)
    and ``"data"`` (transaction, value, latency_s).
    """

    def __init__(
        self,
        transaction_id: str,
        spec: TransactionSpec,
        supplier: ServiceDescription,
        on_data: Optional[DataCallback] = None,
        contract: Optional[QoSContract] = None,
    ):
        self.transaction_id = transaction_id
        self.spec = spec
        self.supplier = supplier
        self.on_data = on_data
        self.contract = contract
        self.state = TransactionState.PENDING
        self.events = EventEmitter()
        self.deliveries = 0
        self.failures = 0
        self.created_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.transfers = 0

    # ---------------------------------------------------------------- state

    def transition(self, new_state: TransactionState) -> None:
        if new_state not in _ALLOWED[self.state]:
            raise TransactionError(
                f"transaction {self.transaction_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        old, self.state = self.state, new_state
        self.events.emit("state_changed", self, old, new_state)

    @property
    def finished(self) -> bool:
        return self.state in (TransactionState.COMPLETED, TransactionState.ABORTED)

    @property
    def active(self) -> bool:
        return self.state == TransactionState.ACTIVE

    # ----------------------------------------------------------------- data

    def deliver(self, value: Any, latency_s: float) -> None:
        """Record a successful data delivery."""
        self.deliveries += 1
        if self.contract is not None:
            self.contract.observe(latency_s, success=True)
        if self.on_data is not None:
            self.on_data(value, latency_s)
        self.events.emit("data", self, value, latency_s)

    def delivery_failed(self) -> None:
        self.failures += 1
        if self.contract is not None:
            self.contract.observe_failure()

    def retarget(self, new_supplier: ServiceDescription) -> None:
        """Point the transaction at a different supplier (handoff)."""
        self.supplier = new_supplier
        self.transfers += 1

    def __repr__(self) -> str:
        return (
            f"<Transaction {self.transaction_id} {self.spec.kind.value} "
            f"{self.state.value} supplier={self.supplier.service_id}>"
        )
