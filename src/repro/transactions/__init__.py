"""Transactions (Section 3.6): how suppliers and consumers interact.

The paper uses "transaction" for the middleware-established interaction
between a service supplier and a service consumer, classified as
**continuous**, **intermittent with some prediction**, or **on demand**
(:mod:`repro.transactions.transaction`), established by matching
specifications including QoS constraints
(:mod:`repro.transactions.manager`).

The interaction technologies the literature review enumerates are each
implemented over the common transport abstraction:

* RPC with synchronous futures and asynchronous one-ways
  (:mod:`repro.transactions.rpc`),
* message-oriented middleware with queues and redelivery
  (:mod:`repro.transactions.messaging`),
* event-based publish/subscribe with topic wildcards
  (:mod:`repro.transactions.pubsub`),
* Linda-style tuple spaces (:mod:`repro.transactions.tuplespace`),
* distributed shared objects with invalidation-based caching
  (:mod:`repro.transactions.sharedobjects`),
* mobile software agents that travel to the data
  (:mod:`repro.transactions.agents`).
"""

from repro.transactions.agents import AgentHost, MobileAgent
from repro.transactions.manager import TransactionManager
from repro.transactions.messaging import MessageBroker, MessagingClient
from repro.transactions.pubsub import PubSubBroker, PubSubClient
from repro.transactions.rpc import RpcEndpoint
from repro.transactions.sharedobjects import SharedObjectCache, SharedObjectHost
from repro.transactions.transaction import Transaction, TransactionKind, TransactionState
from repro.transactions.tuplespace import TupleSpaceClient, TupleSpaceServer

__all__ = [
    "AgentHost",
    "MobileAgent",
    "TransactionManager",
    "MessageBroker",
    "MessagingClient",
    "PubSubBroker",
    "PubSubClient",
    "RpcEndpoint",
    "SharedObjectCache",
    "SharedObjectHost",
    "Transaction",
    "TransactionKind",
    "TransactionState",
    "TupleSpaceClient",
    "TupleSpaceServer",
]
