"""Mobile software agents.

Section 3.6 lists "software agents" first among the technologies used for
supplier-consumer transactions (the literature review's [21, 42, 49, 72]).
An agent is code plus state that *moves to the data*: instead of N remote
calls, the consumer dispatches an agent that hops across supplier nodes,
accumulates results locally at each stop, and returns home with the answer
— one network crossing per hop instead of a round trip per interaction.

Security model: agent *code* never travels. Both ends register agent
classes in a local registry by name; only the agent's name, its state dict
(codec-encodable values), and its itinerary go on the wire. A host that
does not know an agent's name refuses it (counted, and reported home).

Protocol (codec dicts)::

    hop:  {"op": "agent", "name": n, "state": {...}, "itinerary": [addr...],
           "home": addr, "hops": k}
    done: {"op": "agent_done", "name": n, "state": {...}, "hops": k}
    err:  {"op": "agent_refused", "name": n, "at": addr}
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional, Type

from repro.errors import ConfigurationError, TransactionError
from repro.interop.codec import Codec, get_codec
from repro.transport.base import Address, Transport
from repro.util.events import EventEmitter
from repro.util.promise import Promise


class MobileAgent(abc.ABC):
    """Base class for agents. Subclasses override :meth:`visit`.

    ``state`` must stay codec-encodable (None/bool/int/float/str/bytes/
    list/dict) — it is the only part of the agent that travels.
    """

    #: Wire name; defaults to the class name.
    agent_name: str = ""

    def __init__(self, state: Optional[Dict[str, Any]] = None):
        self.state: Dict[str, Any] = state if state is not None else {}

    @classmethod
    def name(cls) -> str:
        return cls.agent_name or cls.__name__

    @abc.abstractmethod
    def visit(self, host: "AgentHost") -> None:
        """Run at each stop; read/write ``self.state`` and use
        ``host.services`` (whatever the hosting node exposed to agents)."""


class AgentHost:
    """One node's agent runtime: receives, runs, and forwards agents.

    ``services`` is the local resource dict the node offers to visiting
    agents (sensor read functions, caches, ...). Events (via
    :attr:`events`): ``"agent_arrived"`` / ``"agent_departed"`` (name).
    """

    def __init__(
        self,
        transport: Transport,
        services: Optional[Dict[str, Any]] = None,
        codec: Optional[Codec] = None,
    ):
        self.transport = transport
        self.services: Dict[str, Any] = services if services is not None else {}
        self.codec = codec if codec is not None else get_codec("binary")
        self.events = EventEmitter()
        self._registry: Dict[str, Type[MobileAgent]] = {}
        self._homecoming: Dict[str, List[Promise]] = {}
        self.agents_hosted = 0
        self.agents_refused = 0
        transport.set_receiver(self._on_message)

    @property
    def address(self) -> Address:
        return self.transport.local_address

    # ------------------------------------------------------------- registry

    def register(self, agent_class: Type[MobileAgent]) -> None:
        """Allow this agent class to run here (and be dispatched from here)."""
        if not issubclass(agent_class, MobileAgent):
            raise ConfigurationError(
                f"{agent_class!r} is not a MobileAgent subclass"
            )
        self._registry[agent_class.name()] = agent_class

    # ------------------------------------------------------------- dispatch

    def dispatch(
        self, agent: MobileAgent, itinerary: List[Address]
    ) -> Promise:
        """Send an agent along ``itinerary``; fulfills with its final state
        when it returns home (rejects if any stop refuses it)."""
        name = type(agent).name()
        if name not in self._registry:
            raise ConfigurationError(
                f"register {name!r} locally before dispatching it"
            )
        if not itinerary:
            raise ConfigurationError("itinerary must contain at least one stop")
        promise: Promise = Promise()
        self._homecoming.setdefault(name, []).append(promise)
        self._forward(name, agent.state, [str(a) for a in itinerary], 0)
        return promise

    def _forward(self, name: str, state: Dict[str, Any],
                 remaining: List[str], hops: int) -> None:
        next_stop = Address.parse(remaining[0])
        self._send(
            next_stop,
            {
                "op": "agent",
                "name": name,
                "state": state,
                "itinerary": remaining[1:],
                "home": str(self.address),
                "hops": hops + 1,
            },
        )

    def _send(self, destination: Address, message: Dict[str, Any]) -> None:
        self.transport.send(destination, self.codec.encode(message))

    # -------------------------------------------------------------- receive

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        if op == "agent":
            self._host_agent(message)
        elif op == "agent_done":
            self._welcome_home(message, success=True)
        elif op == "agent_refused":
            self._welcome_home(message, success=False)

    def _host_agent(self, message: Dict[str, Any]) -> None:
        name = message["name"]
        home = Address.parse(message["home"])
        agent_class = self._registry.get(name)
        if agent_class is None:
            self.agents_refused += 1
            self._send(home, {"op": "agent_refused", "name": name,
                              "at": str(self.address)})
            return
        agent = agent_class(dict(message["state"]))
        self.agents_hosted += 1
        self.events.emit("agent_arrived", name)
        try:
            agent.visit(self)
        except Exception as exc:  # noqa: BLE001 - reported to the dispatcher
            self._send(home, {"op": "agent_refused", "name": name,
                              "at": f"{self.address} ({exc!r})"})
            return
        self.events.emit("agent_departed", name)
        remaining = list(message["itinerary"])
        if remaining:
            next_stop = Address.parse(remaining[0])
            self._send(
                next_stop,
                {**message, "state": agent.state, "itinerary": remaining[1:],
                 "hops": message["hops"] + 1},
            )
        else:
            self._send(home, {"op": "agent_done", "name": name,
                              "state": agent.state, "hops": message["hops"]})

    def _welcome_home(self, message: Dict[str, Any], success: bool) -> None:
        waiting = self._homecoming.get(message["name"], [])
        if not waiting:
            return
        promise = waiting.pop(0)
        if success:
            promise.fulfill(message["state"])
        else:
            promise.reject(
                TransactionError(
                    f"agent {message['name']!r} refused at {message.get('at')}"
                )
            )
