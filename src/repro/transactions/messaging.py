"""Message-oriented middleware: named queues with store-and-forward.

The "message-based techniques" of the literature review ([64, 65]): a
:class:`MessageBroker` holds named queues; producers ``put`` without knowing
who (or whether anyone) consumes; consumers ``subscribe`` and acknowledge.
Unacknowledged deliveries are redelivered after a timeout, giving
at-least-once semantics; consumers on one queue share work round-robin.

Protocol (codec dicts)::

    put:       {"op": "put", "queue": q, "body": v [, "rid": id]}
    subscribe: {"op": "subscribe", "queue": q, "rid": id}
    deliver:   {"op": "deliver", "queue": q, "mid": id, "body": v}
    ack:       {"op": "ack", "mid": id}
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.interop.codec import Codec, get_codec
from repro.transport.base import Address, Transport
from repro.util.ids import IdGenerator
from repro.util.promise import Promise

DEFAULT_REDELIVERY_TIMEOUT_S = 5.0


@dataclass
class _QueueState:
    messages: Deque[Tuple[str, Any]] = field(default_factory=deque)  # (mid, body)
    subscribers: List[Address] = field(default_factory=list)
    next_subscriber: int = 0


class MessageBroker:
    """The queue manager process."""

    def __init__(
        self,
        transport: Transport,
        codec: Optional[Codec] = None,
        redelivery_timeout_s: float = DEFAULT_REDELIVERY_TIMEOUT_S,
        max_redeliveries: int = 20,
    ):
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self.redelivery_timeout_s = redelivery_timeout_s
        self.max_redeliveries = max_redeliveries
        self._queues: Dict[str, _QueueState] = {}
        self._mids = IdGenerator("m")
        # mid -> (queue, body, subscriber) awaiting ack
        self._inflight: Dict[str, Tuple[str, Any, Address]] = {}
        self._attempts: Dict[str, int] = {}
        #: Messages abandoned after max_redeliveries (queue, body) pairs.
        self.dead_letters: List[Tuple[str, Any]] = []
        self.messages_accepted = 0
        self.deliveries = 0
        self.redeliveries = 0
        transport.set_receiver(self._on_message)

    def depth(self, queue: str) -> int:
        state = self._queues.get(queue)
        return len(state.messages) if state else 0

    def _queue(self, name: str) -> _QueueState:
        return self._queues.setdefault(name, _QueueState())

    # -------------------------------------------------------------- protocol

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        if op == "put":
            self._handle_put(source, message)
        elif op == "subscribe":
            self._handle_subscribe(source, message)
        elif op == "ack":
            mid = message.get("mid")
            self._inflight.pop(mid, None)
            self._attempts.pop(mid, None)

    def _handle_put(self, source: Address, message: Dict[str, Any]) -> None:
        queue = self._queue(message["queue"])
        mid = self._mids.next()
        queue.messages.append((mid, message["body"]))
        self.messages_accepted += 1
        if message.get("rid") is not None:
            self.transport.send(
                source,
                self.codec.encode({"op": "put_ack", "rid": message["rid"], "mid": mid}),
            )
        self._drain(message["queue"])

    def _handle_subscribe(self, source: Address, message: Dict[str, Any]) -> None:
        queue = self._queue(message["queue"])
        if source not in queue.subscribers:
            queue.subscribers.append(source)
        self.transport.send(
            source,
            self.codec.encode({"op": "subscribe_ack", "rid": message.get("rid")}),
        )
        self._drain(message["queue"])

    # -------------------------------------------------------------- delivery

    def _drain(self, queue_name: str) -> None:
        queue = self._queue(queue_name)
        while queue.messages and queue.subscribers:
            mid, body = queue.messages.popleft()
            subscriber = queue.subscribers[queue.next_subscriber % len(queue.subscribers)]
            queue.next_subscriber += 1
            self._deliver(queue_name, mid, body, subscriber)

    def _deliver(self, queue_name: str, mid: str, body: Any, subscriber: Address) -> None:
        self.deliveries += 1
        self._inflight[mid] = (queue_name, body, subscriber)
        self.transport.send(
            subscriber,
            self.codec.encode(
                {"op": "deliver", "queue": queue_name, "mid": mid, "body": body}
            ),
        )
        self.transport.scheduler.schedule(
            self.redelivery_timeout_s, self._check_ack, mid
        )

    def _check_ack(self, mid: str) -> None:
        entry = self._inflight.pop(mid, None)
        if entry is None:
            return  # acked
        queue_name, body, failed_subscriber = entry
        attempts = self._attempts.get(mid, 0) + 1
        self._attempts[mid] = attempts
        if attempts > self.max_redeliveries:
            # Dead-letter: an unackable message must not spin forever.
            self._attempts.pop(mid, None)
            self.dead_letters.append((queue_name, body))
            return
        queue = self._queue(queue_name)
        # Requeue at the front and try the next subscriber (the failed one
        # may be gone; round-robin will rotate past it).
        self.redeliveries += 1
        queue.messages.appendleft((mid, body))
        self._drain(queue_name)


class MessagingClient:
    """A producer/consumer handle onto the broker."""

    def __init__(
        self,
        transport: Transport,
        broker_address: Address,
        codec: Optional[Codec] = None,
        request_timeout_s: float = 2.0,
    ):
        self.transport = transport
        self.broker_address = broker_address
        self.codec = codec if codec is not None else get_codec("binary")
        self.request_timeout_s = request_timeout_s
        self._rids = IdGenerator(f"msg:{transport.local_address}")
        self._pending: Dict[str, Promise] = {}
        self._handlers: Dict[str, Callable[[Any], None]] = {}
        self.received = 0
        transport.set_receiver(self._on_message)

    # --------------------------------------------------------------- producer

    def put(self, queue: str, body: Any, confirm: bool = False) -> Optional[Promise]:
        """Enqueue a message. With ``confirm`` returns a Promise of the
        broker's ack (message id); without, it is fire-and-forget."""
        message: Dict[str, Any] = {"op": "put", "queue": queue, "body": body}
        if not confirm:
            self.transport.send(self.broker_address, self.codec.encode(message))
            return None
        rid = self._rids.next()
        message["rid"] = rid
        promise: Promise = Promise()
        self._pending[rid] = promise
        self.transport.send(self.broker_address, self.codec.encode(message))
        self.transport.scheduler.schedule(self.request_timeout_s, self._timeout, rid)
        return promise

    # --------------------------------------------------------------- consumer

    def subscribe(self, queue: str, handler: Callable[[Any], None]) -> Promise:
        """Consume from a queue; the handler receives message bodies and
        deliveries are auto-acknowledged after it returns."""
        self._handlers[queue] = handler
        rid = self._rids.next()
        promise: Promise = Promise()
        self._pending[rid] = promise
        self.transport.send(
            self.broker_address,
            self.codec.encode({"op": "subscribe", "queue": queue, "rid": rid}),
        )
        self.transport.scheduler.schedule(self.request_timeout_s, self._timeout, rid)
        return promise

    # -------------------------------------------------------------- plumbing

    def _timeout(self, rid: str) -> None:
        promise = self._pending.pop(rid, None)
        if promise is not None:
            from repro.errors import DeliveryError

            promise.reject(DeliveryError(f"broker request {rid} timed out"))

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        if op == "deliver":
            handler = self._handlers.get(message["queue"])
            if handler is not None:
                self.received += 1
                handler(message["body"])
                self.transport.send(
                    source, self.codec.encode({"op": "ack", "mid": message["mid"]})
                )
            return
        promise = self._pending.pop(message.get("rid"), None)
        if promise is not None:
            promise.fulfill(message)
