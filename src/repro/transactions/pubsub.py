"""Event-based publish/subscribe.

The event middleware of the literature review ([67, 68]): publishers emit
events on dot-separated topics (``"patient.bp.alarm"``); subscribers give
topic patterns where ``*`` matches one segment and ``#`` matches any
remaining suffix, optionally with content filters over dict-valued events.
The broker fans out; neither side knows the other — Section 3.10's
"the middleware should react to events from all system components".

Protocol (codec dicts)::

    sub:   {"op": "sub", "rid": id, "pattern": p [, "filters": [...]]}
    unsub: {"op": "unsub", "pattern": p}
    pub:   {"op": "pub", "topic": t, "event": v}
    event: {"op": "event", "topic": t, "event": v, "pattern": p}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.discovery.matching import AttributeConstraint
from repro.errors import ConfigurationError
from repro.interop.codec import Codec, get_codec
from repro.transport.base import Address, Transport
from repro.util.ids import IdGenerator
from repro.util.promise import Promise


def topic_matches(pattern: str, topic: str) -> bool:
    """Match ``a.*.c`` / ``a.#`` patterns against a concrete topic."""
    if not pattern or not topic:
        return False
    pattern_parts = pattern.split(".")
    topic_parts = topic.split(".")
    for i, part in enumerate(pattern_parts):
        if part == "#":
            return True
        if i >= len(topic_parts):
            return False
        if part != "*" and part != topic_parts[i]:
            return False
    return len(pattern_parts) == len(topic_parts)


def _content_matches(filters: List[Dict[str, str]], event: Any) -> bool:
    """Apply attribute constraints to dict events (non-dicts fail filters)."""
    if not filters:
        return True
    if not isinstance(event, dict):
        return False
    attributes = {k: str(v) for k, v in event.items()}
    return all(
        AttributeConstraint.from_dict(f).matches(attributes) for f in filters
    )


@dataclass
class _Subscription:
    subscriber: Address
    pattern: str
    filters: List[Dict[str, str]] = field(default_factory=list)


class PubSubBroker:
    """The event dispatcher process."""

    def __init__(self, transport: Transport, codec: Optional[Codec] = None):
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self._subscriptions: List[_Subscription] = []
        self.events_published = 0
        self.events_delivered = 0
        transport.set_receiver(self._on_message)

    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        if op == "sub":
            self._subscriptions.append(
                _Subscription(source, message["pattern"], message.get("filters", []))
            )
            self.transport.send(
                source, self.codec.encode({"op": "sub_ack", "rid": message.get("rid")})
            )
        elif op == "unsub":
            self._subscriptions = [
                s
                for s in self._subscriptions
                if not (s.subscriber == source and s.pattern == message["pattern"])
            ]
        elif op == "pub":
            self._fan_out(message["topic"], message["event"])

    def _fan_out(self, topic: str, event: Any) -> None:
        self.events_published += 1
        for subscription in self._subscriptions:
            if not topic_matches(subscription.pattern, topic):
                continue
            if not _content_matches(subscription.filters, event):
                continue
            self.events_delivered += 1
            self.transport.send(
                subscription.subscriber,
                self.codec.encode(
                    {"op": "event", "topic": topic, "event": event,
                     "pattern": subscription.pattern}
                ),
            )


EventHandler = Callable[[str, Any], None]  # (topic, event)


class PubSubClient:
    """A publisher/subscriber handle onto the broker."""

    def __init__(
        self,
        transport: Transport,
        broker_address: Address,
        codec: Optional[Codec] = None,
        request_timeout_s: float = 2.0,
    ):
        self.transport = transport
        self.broker_address = broker_address
        self.codec = codec if codec is not None else get_codec("binary")
        self.request_timeout_s = request_timeout_s
        self._rids = IdGenerator(f"ps:{transport.local_address}")
        self._pending: Dict[str, Promise] = {}
        self._handlers: Dict[str, Tuple[EventHandler, List[Dict[str, str]]]] = {}
        self.events_received = 0
        transport.set_receiver(self._on_message)

    def subscribe(
        self,
        pattern: str,
        handler: EventHandler,
        filters: Optional[List[AttributeConstraint]] = None,
    ) -> Promise:
        """Subscribe to a topic pattern with optional content filters."""
        if pattern in self._handlers:
            raise ConfigurationError(f"already subscribed to {pattern!r}")
        raw_filters = [f.to_dict() for f in (filters or [])]
        self._handlers[pattern] = (handler, raw_filters)
        rid = self._rids.next()
        promise: Promise = Promise()
        self._pending[rid] = promise
        self.transport.send(
            self.broker_address,
            self.codec.encode(
                {"op": "sub", "rid": rid, "pattern": pattern, "filters": raw_filters}
            ),
        )
        self.transport.scheduler.schedule(self.request_timeout_s, self._timeout, rid)
        return promise

    def unsubscribe(self, pattern: str) -> None:
        self._handlers.pop(pattern, None)
        self.transport.send(
            self.broker_address,
            self.codec.encode({"op": "unsub", "pattern": pattern}),
        )

    def publish(self, topic: str, event: Any) -> None:
        """Emit an event; fire-and-forget, as events are."""
        self.transport.send(
            self.broker_address,
            self.codec.encode({"op": "pub", "topic": topic, "event": event}),
        )

    def _timeout(self, rid: str) -> None:
        promise = self._pending.pop(rid, None)
        if promise is not None:
            from repro.errors import DeliveryError

            promise.reject(DeliveryError(f"broker request {rid} timed out"))

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        if op == "event":
            entry = self._handlers.get(message.get("pattern", ""))
            if entry is not None:
                handler, _filters = entry
                self.events_received += 1
                handler(message["topic"], message["event"])
            return
        promise = self._pending.pop(message.get("rid"), None)
        if promise is not None:
            promise.fulfill(message)
