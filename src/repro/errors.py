"""Exception hierarchy for the repro middleware.

Every error raised by this library derives from :class:`MiddlewareError`, so
applications can catch a single base class at their outermost boundary while
still distinguishing subsystem failures when they need to.
"""

from __future__ import annotations


class MiddlewareError(Exception):
    """Base class for all errors raised by the repro middleware."""


class ConfigurationError(MiddlewareError):
    """A component was constructed or wired with invalid parameters."""


class TransportError(MiddlewareError):
    """Base class for transport-layer failures."""


class AddressError(TransportError):
    """An address could not be parsed, resolved, or reached."""


class DeliveryError(TransportError):
    """A message could not be delivered (after retries, if applicable)."""


class TransportClosedError(TransportError):
    """An operation was attempted on a closed transport."""


class NamingError(MiddlewareError):
    """Base class for naming/location failures."""


class NameNotFoundError(NamingError):
    """A logical name has no binding in the location service."""


class DiscoveryError(MiddlewareError):
    """Base class for service-discovery failures."""


class ServiceNotFoundError(DiscoveryError):
    """No registered service matched the query."""


class LeaseExpiredError(DiscoveryError):
    """An operation referenced a registration whose lease has lapsed."""


class QoSError(MiddlewareError):
    """Base class for quality-of-service failures."""


class QoSViolationError(QoSError):
    """A QoS contract was violated and could not be repaired."""


class InfeasibleError(QoSError):
    """No component set can satisfy the requested application QoS."""


class RoutingError(MiddlewareError):
    """Base class for routing failures."""


class NoRouteError(RoutingError):
    """No route to the destination exists or could be discovered."""


class TransactionError(MiddlewareError):
    """Base class for transaction failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (by the application or the middleware)."""


class RpcError(TransactionError):
    """Base class for RPC failures."""


class RpcTimeoutError(RpcError):
    """An RPC did not complete within its deadline."""


class RemoteError(RpcError):
    """The remote handler raised an exception.

    The remote exception's type name and message are preserved in
    :attr:`remote_type` and the error string.
    """

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


class SchedulingError(MiddlewareError):
    """Base class for scheduling failures."""


class DeadlineMissed(SchedulingError):
    """A task or transaction missed its deadline."""


class AdmissionRefused(SchedulingError):
    """Admission control said "no" (task scheduler, bandwidth reservation,
    or the request-edge admission controller).

    ``retry_after_s`` (when not ``None``) is the controller's pacing hint:
    the earliest time a retry of the same request could be admitted.
    """

    def __init__(self, message: str, retry_after_s: "float | None" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class RecoveryError(MiddlewareError):
    """Base class for recovery-subsystem failures."""


class LogCorruptionError(RecoveryError):
    """The write-ahead log failed integrity checks during recovery."""


class InteropError(MiddlewareError):
    """Base class for interoperability failures."""


class MarkupError(InteropError):
    """SML markup could not be parsed."""


class CodecError(InteropError):
    """A payload could not be encoded or decoded."""


class SchemaError(InteropError):
    """A message did not validate against its interface schema."""


class SimulationError(MiddlewareError):
    """Base class for network-simulator failures."""


class NodeDownError(SimulationError):
    """An operation was attempted on a crashed or depleted node."""
