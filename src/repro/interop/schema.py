"""Service-interface schemas and message validation.

Section 3.9: for non-legacy systems "the use of a markup language ... that
provides semantic independence is necessary to guarantee interoperability".
A :class:`MessageSchema` describes the fields of one message; an
:class:`InterfaceSchema` describes a service's operations. Both serialize to
SML, so a consumer written against the markup alone can validate and invoke
a supplier it has never linked against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import SchemaError
from repro.interop import sml

#: Supported field types and their Python checks.
_TYPE_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "bytes": lambda v: isinstance(v, (bytes, bytearray)),
    "list": lambda v: isinstance(v, list),
    "dict": lambda v: isinstance(v, dict),
    "any": lambda v: True,
}


@dataclass(frozen=True)
class FieldSpec:
    """One field of a message: name, type, and whether it is required."""

    name: str
    type: str = "any"
    required: bool = True

    def __post_init__(self) -> None:
        if self.type not in _TYPE_CHECKS:
            raise SchemaError(
                f"unknown field type {self.type!r}; known: {sorted(_TYPE_CHECKS)}"
            )

    def check(self, value: Any) -> None:
        if not _TYPE_CHECKS[self.type](value):
            raise SchemaError(
                f"field {self.name!r} expects {self.type}, got {type(value).__name__}"
            )


@dataclass(frozen=True)
class MessageSchema:
    """A named message type with typed fields."""

    name: str
    fields: Tuple[FieldSpec, ...] = ()

    def validate(self, message: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` unless ``message`` conforms."""
        known = {f.name: f for f in self.fields}
        for spec in self.fields:
            if spec.name not in message:
                if spec.required:
                    raise SchemaError(
                        f"message {self.name!r} is missing required field {spec.name!r}"
                    )
                continue
            spec.check(message[spec.name])
        unknown = set(message) - set(known)
        if unknown:
            raise SchemaError(
                f"message {self.name!r} has unknown fields {sorted(unknown)}"
            )


@dataclass(frozen=True)
class OperationSpec:
    """One operation of a service interface."""

    name: str
    params: MessageSchema
    returns: str = "any"

    def __post_init__(self) -> None:
        if self.returns not in _TYPE_CHECKS:
            raise SchemaError(f"unknown return type {self.returns!r}")

    def validate_params(self, params: Mapping[str, Any]) -> None:
        self.params.validate(params)

    def validate_result(self, result: Any) -> None:
        if not _TYPE_CHECKS[self.returns](result) and result is not None:
            raise SchemaError(
                f"operation {self.name!r} must return {self.returns}, "
                f"got {type(result).__name__}"
            )


@dataclass
class InterfaceSchema:
    """A service interface: a name and a set of operations."""

    name: str
    operations: Dict[str, OperationSpec] = field(default_factory=dict)

    def add_operation(
        self,
        name: str,
        params: Optional[List[FieldSpec]] = None,
        returns: str = "any",
    ) -> OperationSpec:
        if name in self.operations:
            raise SchemaError(f"operation {name!r} already defined on {self.name!r}")
        spec = OperationSpec(
            name, MessageSchema(f"{self.name}.{name}", tuple(params or ())), returns
        )
        self.operations[name] = spec
        return spec

    def operation(self, name: str) -> OperationSpec:
        try:
            return self.operations[name]
        except KeyError:
            raise SchemaError(
                f"interface {self.name!r} has no operation {name!r}; "
                f"known: {sorted(self.operations)}"
            ) from None

    # --------------------------------------------------------- SML round-trip

    def to_sml(self) -> sml.SmlElement:
        root = sml.element("interface", name=self.name)
        for op in self.operations.values():
            op_node = root.add("operation", name=op.name, returns=op.returns)
            for f in op.params.fields:
                op_node.add(
                    "param", name=f.name, type=f.type,
                    required="true" if f.required else "false",
                )
        return root

    @staticmethod
    def from_sml(root: sml.SmlElement) -> "InterfaceSchema":
        if root.tag != "interface":
            raise SchemaError(f"expected <interface>, got <{root.tag}>")
        schema = InterfaceSchema(root.require("name"))
        for op_node in root.children_named("operation"):
            params = [
                FieldSpec(
                    p.require("name"),
                    p.get("type", "any") or "any",
                    p.get("required", "true") == "true",
                )
                for p in op_node.children_named("param")
            ]
            schema.add_operation(
                op_node.require("name"), params, op_node.get("returns", "any") or "any"
            )
        return schema

    def markup(self) -> str:
        """The interface as markup text (what goes in a service description)."""
        return sml.serialize(self.to_sml())

    @staticmethod
    def from_markup(text: str) -> "InterfaceSchema":
        return InterfaceSchema.from_sml(sml.parse(text))
