"""SML — Service Markup Language.

An XML-subset markup implemented from scratch (no :mod:`xml` import), per
the reproduction's no-external-substrate rule. Supported syntax:

* elements with attributes: ``<service kind="printer"> ... </service>``
* self-closing elements: ``<null/>``
* text content with the five standard entities
  (``&amp; &lt; &gt; &quot; &apos;``)
* insignificant whitespace between elements

Not supported (and rejected loudly, never silently): processing
instructions, comments, CDATA, doctypes, namespaces. The discovery layer
uses SML for service descriptions (Section 3.3: "an abstraction of the
interface in the form of markup languages such as XML") and the interop
codec uses it as a wire format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import MarkupError

_ESCAPES = [
    ("&", "&amp;"),  # must be first when escaping
    ("<", "&lt;"),
    (">", "&gt;"),
    ('"', "&quot;"),
    ("'", "&apos;"),
]


def escape_text(text: str) -> str:
    for raw, entity in _ESCAPES:
        text = text.replace(raw, entity)
    return text


def unescape_text(text: str) -> str:
    for raw, entity in reversed(_ESCAPES):
        text = text.replace(entity, raw)
    return text


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-."


@dataclass
class SmlElement:
    """A markup element: tag, attributes, children, and text content."""

    tag: str
    attributes: Dict[str, str] = field(default_factory=dict)
    children: List["SmlElement"] = field(default_factory=list)
    text: str = ""

    def __post_init__(self) -> None:
        if not self.tag or not _is_name_start(self.tag[0]) or not all(
            _is_name_char(c) for c in self.tag
        ):
            raise MarkupError(f"invalid element tag {self.tag!r}")

    # ------------------------------------------------------------ navigation

    def child(self, tag: str) -> Optional["SmlElement"]:
        """First child with the given tag, or None."""
        for c in self.children:
            if c.tag == tag:
                return c
        return None

    def require_child(self, tag: str) -> "SmlElement":
        found = self.child(tag)
        if found is None:
            raise MarkupError(f"<{self.tag}> has no required <{tag}> child")
        return found

    def children_named(self, tag: str) -> List["SmlElement"]:
        return [c for c in self.children if c.tag == tag]

    def get(self, attribute: str, default: Optional[str] = None) -> Optional[str]:
        return self.attributes.get(attribute, default)

    def require(self, attribute: str) -> str:
        try:
            return self.attributes[attribute]
        except KeyError:
            raise MarkupError(
                f"<{self.tag}> is missing required attribute {attribute!r}"
            ) from None

    # -------------------------------------------------------------- building

    def append(self, child: "SmlElement") -> "SmlElement":
        self.children.append(child)
        return child

    def add(self, tag: str, text: str = "", **attributes: str) -> "SmlElement":
        """Append and return a new child element."""
        return self.append(SmlElement(tag, dict(attributes), text=text))

    def __iter__(self) -> Iterator["SmlElement"]:
        return iter(self.children)


def element(tag: str, text: str = "", **attributes: str) -> SmlElement:
    """Convenience constructor: ``element("svc", kind="printer")``."""
    return SmlElement(tag, dict(attributes), text=text)


# --------------------------------------------------------------- serializing


def serialize(root: SmlElement, indent: Optional[str] = None) -> str:
    """Render an element tree to markup text.

    With ``indent`` (e.g. ``"  "``) the output is pretty-printed; text
    content suppresses indentation inside its element so round-trips
    preserve text exactly.
    """
    pieces: List[str] = []
    _serialize_into(root, pieces, indent, depth=0)
    return "".join(pieces)


def _serialize_into(
    node: SmlElement, pieces: List[str], indent: Optional[str], depth: int
) -> None:
    pad = indent * depth if indent else ""
    newline = "\n" if indent else ""
    attributes = "".join(
        f' {name}="{escape_text(value)}"' for name, value in node.attributes.items()
    )
    if not node.children and not node.text:
        pieces.append(f"{pad}<{node.tag}{attributes}/>{newline}")
        return
    pieces.append(f"{pad}<{node.tag}{attributes}>")
    if node.text:
        pieces.append(escape_text(node.text))
    if node.children:
        pieces.append(newline)
        for child in node.children:
            _serialize_into(child, pieces, indent, depth + 1)
        pieces.append(pad)
    pieces.append(f"</{node.tag}>{newline}")


# ------------------------------------------------------------------ parsing


class _Parser:
    """Recursive-descent parser over the raw text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> MarkupError:
        line = self.text.count("\n", 0, self.pos) + 1
        column = self.pos - self.text.rfind("\n", 0, self.pos)
        return MarkupError(f"{message} at line {line}, column {column}")

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_name(self) -> str:
        start = self.pos
        if self.pos >= len(self.text) or not _is_name_start(self.text[self.pos]):
            raise self.error("expected a name")
        while self.pos < len(self.text) and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]

    def read_attributes(self) -> Dict[str, str]:
        attributes: Dict[str, str] = {}
        while True:
            self.skip_whitespace()
            ch = self.peek()
            if ch in ("", ">", "/"):
                return attributes
            name = self.read_name()
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            quote = self.peek()
            if quote not in ('"', "'"):
                raise self.error("attribute value must be quoted")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self.error("unterminated attribute value")
            raw = self.text[self.pos:end]
            self.pos = end + 1
            if name in attributes:
                raise self.error(f"duplicate attribute {name!r}")
            attributes[name] = unescape_text(raw)

    def parse_element(self) -> SmlElement:
        self.expect("<")
        tag = self.read_name()
        attributes = self.read_attributes()
        self.skip_whitespace()
        if self.peek() == "/":
            self.expect("/>")
            return SmlElement(tag, attributes)
        self.expect(">")
        node = SmlElement(tag, attributes)
        text_pieces: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error(f"unterminated <{tag}>")
            if self.text.startswith("</", self.pos):
                self.pos += 2
                closing = self.read_name()
                if closing != tag:
                    raise self.error(f"mismatched </{closing}>, expected </{tag}>")
                self.skip_whitespace()
                self.expect(">")
                raw_text = unescape_text("".join(text_pieces))
                # Text-only elements keep their content exactly (data);
                # elements with children strip it (formatting whitespace).
                node.text = raw_text if not node.children else raw_text.strip()
                return node
            if self.peek() == "<":
                node.children.append(self.parse_element())
            else:
                next_tag = self.text.find("<", self.pos)
                if next_tag < 0:
                    raise self.error(f"unterminated <{tag}>")
                text_pieces.append(self.text[self.pos:next_tag])
                self.pos = next_tag

    def parse_document(self) -> SmlElement:
        self.skip_whitespace()
        if self.peek() != "<":
            raise self.error("document must start with an element")
        root = self.parse_element()
        self.skip_whitespace()
        if self.pos != len(self.text):
            raise self.error("trailing content after root element")
        return root


def parse(text: str) -> SmlElement:
    """Parse markup text into an element tree; raises :class:`MarkupError`."""
    return _Parser(text).parse_document()
