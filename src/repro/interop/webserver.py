"""An embedded web server over the middleware transport.

Section 2 of the paper: "the use of embedded web servers on small hardware
devices may allow access to the web's basic functionality — enabling client
programs and browsers to fetch web pages and display them. Hyperlinks can
link other local or remote files to that site ... One challenge is to build
a compact yet functional web server for use in embedded systems."

This is that server, scaled to the reproduction: HTTP/1.0 request/response
semantics carried over any :class:`~repro.transport.base.Transport` (one
datagram per request, one per response — the natural mapping for an
embedded device). It serves:

* application routes registered with :meth:`EmbeddedWebServer.route`
  (static text/markup or handler functions),
* a built-in ``/services`` index: every service the node provides, as an
  SML page whose entries hyperlink to ``/services/<id>`` detail pages —
  the paper's "hyperlinks can link other local or remote files" in action.

:class:`HttpClient` is the matching fetcher.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.discovery.description import ServiceDescription
from repro.errors import InteropError
from repro.interop import sml
from repro.transport.base import Address, Transport
from repro.util.ids import IdGenerator
from repro.util.promise import Promise

Handler = Callable[[str], Tuple[int, str, str]]  # path -> (status, type, body)
RouteTarget = Union[str, Handler]

_STATUS_TEXT = {200: "OK", 404: "Not Found", 500: "Internal Server Error"}


def _render_response(status: int, content_type: str, body: str,
                     request_id: str) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body.encode('utf-8'))}\r\n"
        f"X-Request-Id: {request_id}\r\n"
        "\r\n"
    )
    return head.encode("utf-8") + body.encode("utf-8")


def _parse_request(raw: bytes) -> Tuple[str, str, Dict[str, str]]:
    """Returns (method, path, headers); raises InteropError on junk."""
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise InteropError(f"request is not UTF-8: {exc}") from exc
    head, _sep, _body = text.partition("\r\n\r\n")
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise InteropError(f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return method, path, headers


def _parse_response(raw: bytes) -> Tuple[int, Dict[str, str], str]:
    text = raw.decode("utf-8")
    head, _sep, body = text.partition("\r\n\r\n")
    lines = head.split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2:
        raise InteropError(f"malformed status line {lines[0]!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return status, headers, body


class EmbeddedWebServer:
    """Serves HTTP over one transport endpoint."""

    def __init__(self, transport: Transport, node_name: Optional[str] = None):
        self.transport = transport
        self.node_name = node_name or transport.local_address.node
        self._routes: Dict[str, Tuple[str, RouteTarget]] = {}
        self._services: Dict[str, ServiceDescription] = {}
        self.requests_served = 0
        self.errors = 0
        transport.set_receiver(self._on_request)
        self.route("/", "text/html", self._index_page)

    # --------------------------------------------------------------- routing

    def route(self, path: str, content_type: str, target: RouteTarget) -> None:
        """Register a page: static text or ``handler(path)``."""
        if not path.startswith("/"):
            raise InteropError(f"route path must start with '/', got {path!r}")
        self._routes[path] = (content_type, target)

    def publish_service(self, description: ServiceDescription) -> None:
        """Expose a service description under /services/<id>."""
        self._services[description.service_id] = description

    # ----------------------------------------------------------- built-ins

    def _index_page(self, _path: str) -> Tuple[int, str, str]:
        links = "".join(
            f'<li><a href="{path}">{path}</a></li>'
            for path in sorted(self._routes)
        )
        body = (
            f"<html><head><title>{self.node_name}</title></head><body>"
            f"<h1>{self.node_name}</h1>"
            f"<ul>{links}<li><a href=\"/services\">/services</a></li></ul>"
            "</body></html>"
        )
        return 200, "text/html", body

    def _services_index(self) -> Tuple[int, str, str]:
        root = sml.element("services", node=self.node_name)
        for service_id in sorted(self._services):
            root.add("service", id=service_id, href=f"/services/{service_id}")
        return 200, "application/sml", sml.serialize(root, indent="  ")

    def _service_detail(self, service_id: str) -> Tuple[int, str, str]:
        description = self._services.get(service_id)
        if description is None:
            return 404, "text/plain", f"no such service {service_id!r}"
        return 200, "application/sml", description.markup()

    # -------------------------------------------------------------- serving

    def _handle(self, method: str, path: str) -> Tuple[int, str, str]:
        if method != "GET":
            return 500, "text/plain", f"method {method!r} not supported"
        if path == "/services":
            return self._services_index()
        if path.startswith("/services/"):
            return self._service_detail(path[len("/services/"):])
        entry = self._routes.get(path)
        if entry is None:
            return 404, "text/plain", f"no route for {path!r}"
        content_type, target = entry
        if callable(target):
            return target(path)
        return 200, content_type, target

    def _on_request(self, source: Address, raw: bytes) -> None:
        try:
            method, path, headers = _parse_request(raw)
        except InteropError:
            self.errors += 1
            return
        request_id = headers.get("x-request-id", "")
        try:
            status, content_type, body = self._handle(method, path)
        except Exception as exc:  # noqa: BLE001 - 500 instead of crash
            self.errors += 1
            status, content_type, body = 500, "text/plain", repr(exc)
        self.requests_served += 1
        self.transport.send(
            source, _render_response(status, content_type, body, request_id)
        )


class HttpResponse:
    """What :meth:`HttpClient.get` fulfills with."""

    def __init__(self, status: int, headers: Dict[str, str], body: str):
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def ok(self) -> bool:
        return self.status == 200

    def sml(self) -> sml.SmlElement:
        """Parse an SML body (service pages)."""
        return sml.parse(self.body)


class HttpClient:
    """Fetches pages from embedded web servers over the transport."""

    def __init__(self, transport: Transport, request_timeout_s: float = 2.0):
        self.transport = transport
        self.request_timeout_s = request_timeout_s
        self._rids = IdGenerator(f"http:{transport.local_address}")
        self._pending: Dict[str, Promise] = {}
        transport.set_receiver(self._on_response)

    def get(self, server: Address, path: str) -> Promise:
        """GET a path; fulfills with :class:`HttpResponse`."""
        request_id = self._rids.next()
        promise: Promise = Promise()
        self._pending[request_id] = promise
        request = (
            f"GET {path} HTTP/1.0\r\n"
            f"Host: {server.node}\r\n"
            f"X-Request-Id: {request_id}\r\n"
            "\r\n"
        )
        self.transport.send(server, request.encode("utf-8"))
        self.transport.scheduler.schedule(
            self.request_timeout_s, self._timeout, request_id
        )
        return promise

    def _timeout(self, request_id: str) -> None:
        promise = self._pending.pop(request_id, None)
        if promise is not None:
            promise.reject(InteropError(f"HTTP request {request_id} timed out"))

    def _on_response(self, source: Address, raw: bytes) -> None:
        try:
            status, headers, body = _parse_response(raw)
        except (InteropError, ValueError, UnicodeDecodeError):
            return
        promise = self._pending.pop(headers.get("x-request-id", ""), None)
        if promise is not None:
            promise.fulfill(HttpResponse(status, headers, body))
