"""Zero-copy wire frames: encode once, decode never on the simulated path.

Every layer of the stack used to pay a full ``dict -> encode -> bytes ->
decode -> dict`` round trip per hop, even though the bytes travel between
functions in the same process. A :class:`WireFrame` carries the message
dict *and* a lazily materialized, cached encoding:

* built from a message, it encodes only when something genuinely needs
  bytes (encryption, chaos tampering, the WAL, a real socket, a process
  boundary) — ``bytes(frame)`` is always bit-identical to
  ``codec.encode(message)``, enforced by a property test;
* ``len(frame)`` reports the exact encoded length *without* materializing
  (via :meth:`BinaryCodec.encoded_size`), so ``payload_bytes``-driven
  serialization delays, energy charges, and byte counters are unchanged;
* delivered by reference through the in-process fabrics, the receiver's
  :func:`~repro.interop.codec.try_decode_dict` returns the original dict
  with zero decode;
* built from bytes (:meth:`WireFrame.from_bytes`, e.g. after crossing a
  shard process boundary), the *decode* is the lazy, cached half.

:class:`PrefixedFrame` composes a packed binary header (reliable DATA,
multiplexer channel headers) with a lazy body so mid-stack layers frame
without forcing the body's encoding, and :class:`TailIntPacker` is a
compiled packer for fixed-schema beacons whose only varying field is a
trailing int (heartbeats): the constant prefix is encoded once per
configuration and each beat appends one varint.

Contract for receivers: a message dict extracted from a reference-passed
frame is shared with the sender (and every other receiver of a broadcast).
Treat it as immutable — copy (``{**message, ...}``) before patching, which
is what every receive path in this repo already does.

Observability: ``transport.frames.passthrough`` counts zero-decode dict
extractions, ``transport.frames.materialized`` counts forced encodes, and
``codec.encode_skipped`` counts frames consumed without their encode ever
having run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from repro.errors import CodecError, InteropError
from repro.interop.codec import (
    _T_INT,
    _encode_varint,
    _varint_size,
    _zigzag,
    BinaryCodec,
    Codec,
    get_codec,
    register_frame_types,
    splice_int_field,
    try_decode_dict,
)
from repro.obs.metrics import get_registry


# Frame counters fire on every zero-copy hop, so the registry lookup
# (label-key build + dict probe) is cached per (registry, generation) —
# a registry.reset() orphans instruments, which the generation detects.
_counter_cache: Dict[str, Any] = {}
_cache_key = (None, -1)


def _count(name: str) -> None:
    global _cache_key
    registry = get_registry()
    key = (registry, registry.generation)
    if key != _cache_key:
        _counter_cache.clear()
        _cache_key = key
    counter = _counter_cache.get(name)
    if counter is None:
        counter = _counter_cache[name] = registry.counter(name)
    counter.inc()


class WireFrame:
    """A message and its wire encoding, each materialized at most once."""

    __slots__ = ("codec", "_message", "_encoded", "_length", "_packer",
                 "_canonical")

    def __init__(
        self,
        message: Dict[str, Any],
        codec: Optional[Codec] = None,
        *,
        length: Optional[int] = None,
        packer: Optional[Callable[[], bytes]] = None,
    ):
        self.codec = codec if codec is not None else get_codec("binary")
        self._message = message
        self._encoded: Optional[bytes] = None
        self._length = length
        self._packer = packer
        # True when this process built the frame from a message (so cached
        # lengths/splices may assume our canonical encoding); False when it
        # was rebuilt from received bytes, whose varints we did not write.
        self._canonical = True

    @classmethod
    def from_bytes(cls, encoded: bytes, codec: Optional[Codec] = None) -> "WireFrame":
        """A frame whose *decode* is the lazy half (cross-process arrivals)."""
        frame = cls.__new__(cls)
        frame.codec = codec if codec is not None else get_codec("binary")
        frame._message = None
        frame._encoded = bytes(encoded)
        frame._length = len(encoded)
        frame._packer = None
        frame._canonical = False
        return frame

    # ------------------------------------------------------------ the halves

    @property
    def message(self) -> Dict[str, Any]:
        """The message dict; decodes (once) only for bytes-built frames.

        Raises :class:`CodecError` if a bytes-built frame does not decode
        to a value at all — callers on receive paths go through
        :func:`~repro.interop.codec.try_decode_dict`, which maps that to a
        counted drop.
        """
        message = self._message
        if message is None:
            message = self._message = self.codec.decode(self._encoded)
        return message

    def materialize(self) -> bytes:
        """The encoded bytes — bit-identical to ``codec.encode(message)``."""
        encoded = self._encoded
        if encoded is None:
            packer = self._packer
            encoded = packer() if packer is not None else self.codec.encode(self._message)
            self._encoded = encoded
            self._length = len(encoded)
            _count("transport.frames.materialized")
        return encoded

    def __bytes__(self) -> bytes:
        return self.materialize()

    @property
    def encoded_length(self) -> int:
        """Exact wire length, computed without materializing when possible."""
        length = self._length
        if length is None:
            sizer = getattr(self.codec, "encoded_size", None)
            if sizer is not None:
                length = sizer(self._message)
            else:
                length = len(self.materialize())
            self._length = length
        return length

    def __len__(self) -> int:
        return self.encoded_length

    # ------------------------------------------------------------ derivation

    def derive_int(self, key: str, value: int) -> "WireFrame":
        """A frame for ``{**message, key: value}`` (``key`` must hold an int).

        Reuses this frame's cached work: the derived length is O(1) when
        ours is known, and if our bytes are already materialized the
        derived frame's materialization splices the one varint instead of
        re-encoding the dict — the routing layer's per-hop TTL patch.
        """
        message = dict(self.message)
        old = message[key]
        if not isinstance(old, int) or isinstance(old, bool):
            raise CodecError(f"derive_int: field {key!r} is not an int")
        message[key] = value
        derived = WireFrame(message, self.codec)
        parent_encoded = self._encoded
        if parent_encoded is not None:
            derived._packer = lambda: splice_int_field(parent_encoded, key, value)
        if self._canonical and self._length is not None:
            derived._length = (self._length
                               - _varint_size(_zigzag(old))
                               + _varint_size(_zigzag(value)))
        return derived

    # -------------------------------------------------------------- plumbing

    def __reduce__(self):
        # Crossing a process boundary (sharded worlds) forces
        # materialization; the peer rebuilds a bytes-backed frame whose
        # decode is lazy, so behavior matches in-process delivery.
        return (_rebuild_frame, (self.codec, self.materialize()))

    def __repr__(self) -> str:
        state = "encoded" if self._encoded is not None else "lazy"
        return f"<WireFrame {self.codec.name} {state} len={self.encoded_length}>"


def _rebuild_frame(codec: Codec, encoded: bytes) -> WireFrame:
    return WireFrame.from_bytes(encoded, codec)


class PrefixedFrame:
    """A packed binary header plus a lazy body, concatenated only on demand.

    Mid-stack layers (reliable DATA, channel multiplexing) frame their
    payload with a fixed header; when the payload is itself a lazy frame,
    eager concatenation would force its encoding. The receiving twin peels
    :attr:`prefix` off by reference, so the body stays lazy end to end.
    """

    __slots__ = ("prefix", "body", "_encoded")

    def __init__(self, prefix: bytes, body: Union[bytes, "WireFrame", "PrefixedFrame"]):
        self.prefix = prefix
        self.body = body
        self._encoded: Optional[bytes] = None

    def __bytes__(self) -> bytes:
        encoded = self._encoded
        if encoded is None:
            encoded = self._encoded = self.prefix + bytes(self.body)
        return encoded

    def __len__(self) -> int:
        return len(self.prefix) + len(self.body)

    def __reduce__(self):
        return (bytes, (bytes(self),))

    def __repr__(self) -> str:
        return f"<PrefixedFrame {len(self.prefix)}+{len(self.body)}B>"


FRAME_TYPES = (WireFrame, PrefixedFrame)

FramePayload = Union[bytes, bytearray, WireFrame, PrefixedFrame]


def is_frame(payload: Any) -> bool:
    return isinstance(payload, FRAME_TYPES)


def frame_bytes(payload: FramePayload) -> bytes:
    """Real bytes for edges that need them (crypto, WAL, sockets, chaos)."""
    if isinstance(payload, bytes):
        return payload
    return bytes(payload)


def split_frame(payload: FramePayload, header_size: int):
    """``(header_bytes, body)`` with the body left lazy when possible.

    Returns ``(None, payload)`` when there are fewer than ``header_size``
    bytes (the caller's malformed-frame path). For a :class:`PrefixedFrame`
    whose prefix is exactly the header — the matching sender's shape — the
    split is free; any other frame shape falls back to materialized bytes.
    """
    if isinstance(payload, PrefixedFrame) and len(payload.prefix) == header_size:
        return payload.prefix, payload.body
    if not isinstance(payload, (bytes, bytearray)):
        payload = bytes(payload)
    if len(payload) < header_size:
        return None, payload
    return payload[:header_size], payload[header_size:]


def decode_payload(codec: Codec, payload: FramePayload) -> Any:
    """Codec-decode that short-circuits reference-passed frames.

    The raising twin of :func:`~repro.interop.codec.try_decode_dict`, for
    receive paths that predate the count-and-drop convention.
    """
    if isinstance(payload, WireFrame):
        if payload.codec.name == codec.name:
            if payload._encoded is None:
                _count("codec.encode_skipped")
            message = payload.message
            _count("transport.frames.passthrough")
            return message
        payload = payload.materialize()
    elif isinstance(payload, PrefixedFrame):
        payload = bytes(payload)
    return codec.decode(payload)


def _extract_dict(codec: Codec, payload: Any) -> Optional[Dict[str, Any]]:
    """The non-bytes arm of ``try_decode_dict`` (installed as a codec hook)."""
    if isinstance(payload, WireFrame):
        if payload.codec.name == codec.name:
            if payload._encoded is None:
                _count("codec.encode_skipped")
            try:
                message = payload.message
            except (InteropError, ValueError, OverflowError):
                return None
            if isinstance(message, dict):
                _count("transport.frames.passthrough")
                return message
            return None
        # Wire-format mismatch: behave exactly like the eager path — the
        # receiver sees this codec's view of the sender's real bytes.
        return try_decode_dict(codec, payload.materialize())
    if isinstance(payload, PrefixedFrame):
        return try_decode_dict(codec, bytes(payload))
    return None


register_frame_types(FRAME_TYPES, _extract_dict)


class TailIntPacker:
    """Compiled packer for a fixed dict whose *last* field is a varying int.

    The schema's constant part — everything up to and including the final
    field's key — is encoded exactly once per configuration; each message
    then costs one cached-prefix concat plus a one-or-two-byte varint.
    Heartbeat beacons (``{"op": "hb", "from": node, "seq": n}``) are the
    canonical user: the beacon prefix is compiled when the detector is
    built, never re-encoded per period.
    """

    __slots__ = ("codec", "base", "field", "prefix", "_prefix_length")

    def __init__(self, codec: BinaryCodec, base: Dict[str, Any], field: str):
        if not isinstance(codec, BinaryCodec):
            raise CodecError("TailIntPacker requires the binary codec")
        if field in base:
            raise CodecError(f"varying field {field!r} must not be in the base")
        self.codec = codec
        self.base = dict(base)
        self.field = field
        probe = dict(base)
        probe[field] = 0
        encoded = codec.encode(probe)
        # encode(0) contributes the 2-byte tail b"I\x00"; everything before
        # it — dict header, base entries, the field's key — is constant.
        self.prefix = encoded[:-2]
        self._prefix_length = len(self.prefix)

    def frame(self, value: int) -> WireFrame:
        """A :class:`WireFrame` for ``{**base, field: value}``."""
        message = dict(self.base)
        message[self.field] = value
        prefix = self.prefix
        return WireFrame(
            message,
            self.codec,
            length=self._prefix_length + 1 + _varint_size(_zigzag(value)),
            packer=lambda: prefix + _T_INT + _encode_varint(_zigzag(value)),
        )
