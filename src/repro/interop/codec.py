"""Payload codecs.

A :class:`Codec` turns a JSON-like value (None, bool, int, float, str,
bytes, list, dict with string keys) into wire bytes and back. Three
implementations cover the paper's interoperability tradeoff (Section 3.9):

* :class:`BinaryCodec` — a compact, self-describing binary format written
  from scratch; the "efficient but opaque" end of the spectrum.
* :class:`JsonCodec` — stdlib JSON (bytes values are not supported, matching
  real JSON middleware).
* :class:`SmlCodec` — values as SML markup; the "semantically independent
  but verbose" end the paper advocates for non-legacy interoperability.

Benchmark E9 measures the byte and CPU cost of each on identical RPC
workloads.
"""

from __future__ import annotations

import json
import struct
from sys import intern
from typing import Any, Dict, Protocol, runtime_checkable

from repro.errors import CodecError, InteropError
from repro.interop import sml

_F64 = struct.Struct(">d")

# Binary type tags.
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_BIGINT = b"G"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_DICT = b"M"


def _encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise CodecError(f"varint must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(payload: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(payload):
            raise CodecError("truncated varint")
        byte = payload[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if -(2**63) <= value < 2**63 else -1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


@runtime_checkable
class Codec(Protocol):
    """Encoder/decoder pair with a wire-format name."""

    name: str

    def encode(self, value: Any) -> bytes:
        ...

    def decode(self, payload: bytes) -> Any:
        ...


class BinaryCodec:
    """Compact tagged binary encoding of JSON-like values.

    Integers use zigzag varints and all lengths/counts use LEB128 varints,
    so small values cost one or two bytes — the honest "efficient but
    opaque" contestant in the E9 wire-format comparison."""

    name = "binary"

    def encode(self, value: Any) -> bytes:
        pieces: list[bytes] = []
        try:
            self._encode_into(value, pieces)
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"cannot binary-encode {type(value).__name__}: {exc}") from exc
        return b"".join(pieces)

    def _encode_into(self, value: Any, pieces: list[bytes]) -> None:
        if value is None:
            pieces.append(_T_NONE)
        elif value is True:
            pieces.append(_T_TRUE)
        elif value is False:
            pieces.append(_T_FALSE)
        elif isinstance(value, int):
            if -(2**63) <= value < 2**63:
                pieces.append(_T_INT + _encode_varint(_zigzag(value)))
            else:
                encoded = str(value).encode("ascii")
                pieces.append(_T_BIGINT + _encode_varint(len(encoded)) + encoded)
        elif isinstance(value, float):
            pieces.append(_T_FLOAT + _F64.pack(value))
        elif isinstance(value, str):
            encoded = value.encode("utf-8")
            pieces.append(_T_STR + _encode_varint(len(encoded)) + encoded)
        elif isinstance(value, (bytes, bytearray)):
            pieces.append(_T_BYTES + _encode_varint(len(value)) + bytes(value))
        elif isinstance(value, (list, tuple)):
            pieces.append(_T_LIST + _encode_varint(len(value)))
            for item in value:
                self._encode_into(item, pieces)
        elif isinstance(value, dict):
            pieces.append(_T_DICT + _encode_varint(len(value)))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError(f"dict keys must be str, got {type(key).__name__}")
                encoded = key.encode("utf-8")
                pieces.append(_encode_varint(len(encoded)) + encoded)
                self._encode_into(item, pieces)
        else:
            raise CodecError(f"unsupported type {type(value).__name__}")

    def decode(self, payload: bytes) -> Any:
        value, offset = self._decode_from(payload, 0)
        if offset != len(payload):
            raise CodecError(f"{len(payload) - offset} trailing bytes after value")
        return value

    def _decode_from(self, payload: bytes, offset: int) -> tuple[Any, int]:
        if offset >= len(payload):
            raise CodecError("truncated payload")
        tag = payload[offset:offset + 1]
        offset += 1
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT:
            raw_int, offset = _decode_varint(payload, offset)
            return _unzigzag(raw_int), offset
        if tag == _T_FLOAT:
            self._need(payload, offset, _F64.size)
            return _F64.unpack_from(payload, offset)[0], offset + _F64.size
        if tag in (_T_STR, _T_BYTES, _T_BIGINT):
            length, offset = _decode_varint(payload, offset)
            self._need(payload, offset, length)
            raw = payload[offset:offset + length]
            offset += length
            if tag == _T_BYTES:
                return raw, offset
            if tag == _T_BIGINT:
                return int(raw.decode("ascii")), offset
            return raw.decode("utf-8"), offset
        if tag == _T_LIST:
            count, offset = _decode_varint(payload, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_from(payload, offset)
                items.append(item)
            return items, offset
        if tag == _T_DICT:
            count, offset = _decode_varint(payload, offset)
            result: Dict[str, Any] = {}
            for _ in range(count):
                key_length, offset = _decode_varint(payload, offset)
                self._need(payload, offset, key_length)
                # Frame field names ("op", "seq", "src", ...) recur on every
                # decoded frame; interning collapses the per-frame key
                # copies to shared singletons and makes downstream dict
                # lookups pointer-compares — measurable at swarm scale.
                key = intern(payload[offset:offset + key_length].decode("utf-8"))
                offset += key_length
                result[key], offset = self._decode_from(payload, offset)
            return result, offset
        raise CodecError(f"unknown type tag {tag!r} at offset {offset - 1}")

    @staticmethod
    def _need(payload: bytes, offset: int, count: int) -> None:
        if offset + count > len(payload):
            raise CodecError("truncated payload")


class JsonCodec:
    """Stdlib JSON; rejects bytes values like real JSON middleware does."""

    name = "json"

    def encode(self, value: Any) -> bytes:
        try:
            return json.dumps(value, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot JSON-encode: {exc}") from exc

    def decode(self, payload: bytes) -> Any:
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"cannot JSON-decode: {exc}") from exc


class SmlCodec:
    """Values as SML markup — the paper's markup-based interoperability path.

    Mapping: ``<null/>``, ``<bool>true</bool>``, ``<int>3</int>``,
    ``<float>1.5</float>``, ``<str>hi</str>``, ``<bytes>hex</bytes>``,
    ``<list>...</list>``, ``<dict><entry key="k">value</entry></dict>``.
    """

    name = "sml"

    def encode(self, value: Any) -> bytes:
        return sml.serialize(self._to_element(value)).encode("utf-8")

    def decode(self, payload: bytes) -> Any:
        try:
            root = sml.parse(payload.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise CodecError(f"SML payload is not UTF-8: {exc}") from exc
        return self._from_element(root)

    def _to_element(self, value: Any) -> sml.SmlElement:
        if value is None:
            return sml.element("null")
        if value is True or value is False:
            return sml.element("bool", text="true" if value else "false")
        if isinstance(value, int):
            return sml.element("int", text=str(value))
        if isinstance(value, float):
            return sml.element("float", text=repr(value))
        if isinstance(value, str):
            return sml.element("str", text=value)
        if isinstance(value, (bytes, bytearray)):
            return sml.element("bytes", text=bytes(value).hex())
        if isinstance(value, (list, tuple)):
            node = sml.element("list")
            for item in value:
                node.append(self._to_element(item))
            return node
        if isinstance(value, dict):
            node = sml.element("dict")
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError(f"dict keys must be str, got {type(key).__name__}")
                entry = node.add("entry", key=key)
                entry.append(self._to_element(item))
            return node
        raise CodecError(f"unsupported type {type(value).__name__}")

    def _from_element(self, node: sml.SmlElement) -> Any:
        tag = node.tag
        if tag == "null":
            return None
        if tag == "bool":
            if node.text not in ("true", "false"):
                raise CodecError(f"bad bool text {node.text!r}")
            return node.text == "true"
        if tag == "int":
            try:
                return int(node.text)
            except ValueError as exc:
                raise CodecError(f"bad int text {node.text!r}") from exc
        if tag == "float":
            try:
                return float(node.text)
            except ValueError as exc:
                raise CodecError(f"bad float text {node.text!r}") from exc
        if tag == "str":
            return node.text
        if tag == "bytes":
            try:
                return bytes.fromhex(node.text)
            except ValueError as exc:
                raise CodecError(f"bad hex text {node.text!r}") from exc
        if tag == "list":
            return [self._from_element(child) for child in node.children]
        if tag == "dict":
            result: Dict[str, Any] = {}
            for entry in node.children:
                if entry.tag != "entry" or "key" not in entry.attributes:
                    raise CodecError(f"bad dict entry <{entry.tag}>")
                if len(entry.children) != 1:
                    raise CodecError(
                        f"dict entry {entry.attributes.get('key')!r} must have one value"
                    )
                result[entry.attributes["key"]] = self._from_element(entry.children[0])
            return result
        raise CodecError(f"unknown SML value tag <{tag}>")


_CODECS: Dict[str, Codec] = {
    codec.name: codec for codec in (BinaryCodec(), JsonCodec(), SmlCodec())
}


def get_codec(name: str) -> Codec:
    """Look up a codec by wire-format name ('binary', 'json', 'sml')."""
    try:
        return _CODECS[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_CODECS)}"
        ) from None


def try_decode_dict(codec: Codec, payload: bytes) -> "Dict[str, Any] | None":
    """Decode a frame expected to hold a message dict; ``None`` if malformed.

    Receive paths use this so corrupted or truncated frames (chaos
    injection, buggy peers) are counted and dropped by the caller instead
    of unwinding the simulator event loop with a raise.
    """
    try:
        value = codec.decode(payload)
    except (InteropError, ValueError, OverflowError):
        return None
    return value if isinstance(value, dict) else None
