"""Payload codecs.

A :class:`Codec` turns a JSON-like value (None, bool, int, float, str,
bytes, list, dict with string keys) into wire bytes and back. Three
implementations cover the paper's interoperability tradeoff (Section 3.9):

* :class:`BinaryCodec` — a compact, self-describing binary format written
  from scratch; the "efficient but opaque" end of the spectrum.
* :class:`JsonCodec` — stdlib JSON (bytes values are not supported, matching
  real JSON middleware).
* :class:`SmlCodec` — values as SML markup; the "semantically independent
  but verbose" end the paper advocates for non-legacy interoperability.

Benchmark E9 measures the byte and CPU cost of each on identical RPC
workloads.
"""

from __future__ import annotations

import json
import struct
from sys import intern
from typing import Any, Dict, Protocol, runtime_checkable

from repro.errors import CodecError, InteropError
from repro.interop import sml

_F64 = struct.Struct(">d")

# Binary type tags.
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_BIGINT = b"G"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_DICT = b"M"


def _encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise CodecError(f"varint must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(payload: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(payload):
            raise CodecError("truncated varint")
        byte = payload[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def _zigzag(value: int) -> int:
    """Map a signed 64-bit int onto the unsigned varint domain.

    Contract: ``value`` must satisfy ``-(2**63) <= value < 2**63``; anything
    wider belongs to the BIGINT encoding and is rejected here rather than
    silently mangled.
    """
    if not -(2**63) <= value < 2**63:
        raise CodecError(f"zigzag int out of 64-bit range: {value}")
    return (value << 1) ^ (value >> 63)


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _varint_size(value: int) -> int:
    """Encoded byte count of an unsigned LEB128 varint (without building it)."""
    return max(1, (value.bit_length() + 6) // 7)


def _utf8_size(text: str) -> int:
    # ASCII is the overwhelmingly common case for frame keys and addresses;
    # ``isascii`` is a C-speed scan that avoids building the encoded copy.
    return len(text) if text.isascii() else len(text.encode("utf-8"))


#: Lazy wire-frame types (registered by :mod:`repro.interop.frames` to avoid
#: an import cycle). The binary encoder treats them as bytes values,
#: materializing their cached encoding on demand.
_FRAME_TYPES: tuple = ()

#: Hook installed by :mod:`repro.interop.frames`: extracts the message dict
#: from a frame object without decoding (see :func:`try_decode_dict`).
_FRAME_DICT_EXTRACTOR = None


def register_frame_types(types: tuple, extractor) -> None:
    """Teach the codec layer about lazy frame types (called once by
    :mod:`repro.interop.frames` at import time)."""
    global _FRAME_TYPES, _FRAME_DICT_EXTRACTOR
    _FRAME_TYPES = types
    _FRAME_DICT_EXTRACTOR = extractor


@runtime_checkable
class Codec(Protocol):
    """Encoder/decoder pair with a wire-format name."""

    name: str

    def encode(self, value: Any) -> bytes:
        ...

    def decode(self, payload: bytes) -> Any:
        ...


class BinaryCodec:
    """Compact tagged binary encoding of JSON-like values.

    Integers use zigzag varints and all lengths/counts use LEB128 varints,
    so small values cost one or two bytes — the honest "efficient but
    opaque" contestant in the E9 wire-format comparison."""

    name = "binary"

    def encode(self, value: Any) -> bytes:
        pieces: list[bytes] = []
        try:
            self._encode_into(value, pieces)
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"cannot binary-encode {type(value).__name__}: {exc}") from exc
        return b"".join(pieces)

    def _encode_into(self, value: Any, pieces: list[bytes]) -> None:
        if value is None:
            pieces.append(_T_NONE)
        elif value is True:
            pieces.append(_T_TRUE)
        elif value is False:
            pieces.append(_T_FALSE)
        elif isinstance(value, int):
            if -(2**63) <= value < 2**63:
                pieces.append(_T_INT + _encode_varint(_zigzag(value)))
            else:
                encoded = str(value).encode("ascii")
                pieces.append(_T_BIGINT + _encode_varint(len(encoded)) + encoded)
        elif isinstance(value, float):
            pieces.append(_T_FLOAT + _F64.pack(value))
        elif isinstance(value, str):
            encoded = value.encode("utf-8")
            pieces.append(_T_STR + _encode_varint(len(encoded)) + encoded)
        elif isinstance(value, (bytes, bytearray)):
            pieces.append(_T_BYTES + _encode_varint(len(value)) + bytes(value))
        elif _FRAME_TYPES and isinstance(value, _FRAME_TYPES):
            # A nested lazy frame (e.g. an envelope's payload): materialize
            # its cached bytes — identical to the eager path, where the
            # upper layer would have handed us those bytes directly.
            data = bytes(value)
            pieces.append(_T_BYTES + _encode_varint(len(data)) + data)
        elif isinstance(value, (list, tuple)):
            pieces.append(_T_LIST + _encode_varint(len(value)))
            for item in value:
                self._encode_into(item, pieces)
        elif isinstance(value, dict):
            pieces.append(_T_DICT + _encode_varint(len(value)))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError(f"dict keys must be str, got {type(key).__name__}")
                encoded = key.encode("utf-8")
                pieces.append(_encode_varint(len(encoded)) + encoded)
                self._encode_into(item, pieces)
        else:
            raise CodecError(f"unsupported type {type(value).__name__}")

    def encoded_size(self, value: Any) -> int:
        """``len(self.encode(value))`` without building the bytes.

        Exact by construction — the walk mirrors :meth:`_encode_into` branch
        for branch (a property test pins the equality) — and cheap: no
        buffer concatenation, no UTF-8 copies for ASCII strings, and nested
        lazy frames contribute their cached ``encoded_length``. This is what
        lets a :class:`~repro.interop.frames.WireFrame` report its wire size
        (the simulator's serialization-delay input) without materializing.
        """
        try:
            return self._size_of(value)
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"cannot binary-encode {type(value).__name__}: {exc}") from exc

    def _size_of(self, value: Any) -> int:
        if value is None or value is True or value is False:
            return 1
        if isinstance(value, int):
            if -(2**63) <= value < 2**63:
                return 1 + _varint_size(_zigzag(value))
            length = len(str(value))
            return 1 + _varint_size(length) + length
        if isinstance(value, float):
            return 1 + _F64.size
        if isinstance(value, str):
            length = _utf8_size(value)
            return 1 + _varint_size(length) + length
        if isinstance(value, (bytes, bytearray)):
            return 1 + _varint_size(len(value)) + len(value)
        if _FRAME_TYPES and isinstance(value, _FRAME_TYPES):
            length = len(value)  # the frame's (possibly cached) encoded_length
            return 1 + _varint_size(length) + length
        if isinstance(value, (list, tuple)):
            return (1 + _varint_size(len(value))
                    + sum(self._size_of(item) for item in value))
        if isinstance(value, dict):
            total = 1 + _varint_size(len(value))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError(f"dict keys must be str, got {type(key).__name__}")
                key_length = _utf8_size(key)
                total += _varint_size(key_length) + key_length + self._size_of(item)
            return total
        raise CodecError(f"unsupported type {type(value).__name__}")

    def decode(self, payload: bytes) -> Any:
        if _FRAME_TYPES and isinstance(payload, _FRAME_TYPES):
            payload = bytes(payload)
        value, offset = self._decode_from(payload, 0)
        if offset != len(payload):
            raise CodecError(f"{len(payload) - offset} trailing bytes after value")
        return value

    def _decode_from(self, payload: bytes, offset: int) -> tuple[Any, int]:
        if offset >= len(payload):
            raise CodecError("truncated payload")
        tag = payload[offset:offset + 1]
        offset += 1
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT:
            raw_int, offset = _decode_varint(payload, offset)
            return _unzigzag(raw_int), offset
        if tag == _T_FLOAT:
            self._need(payload, offset, _F64.size)
            return _F64.unpack_from(payload, offset)[0], offset + _F64.size
        if tag in (_T_STR, _T_BYTES, _T_BIGINT):
            length, offset = _decode_varint(payload, offset)
            self._need(payload, offset, length)
            raw = payload[offset:offset + length]
            offset += length
            if tag == _T_BYTES:
                return raw, offset
            if tag == _T_BIGINT:
                # ``int()`` tolerates "+5", whitespace, and "5_0" — all
                # non-canonical spellings our encoder never emits. Accept
                # only digits that round-trip, so every value has exactly
                # one wire form (decode(encode(x)) == x and vice versa).
                text = raw.decode("ascii")
                try:
                    value = int(text)
                except ValueError as exc:
                    raise CodecError(f"bad bigint text {text!r}") from exc
                if str(value) != text:
                    raise CodecError(f"non-canonical bigint text {text!r}")
                return value, offset
            return raw.decode("utf-8"), offset
        if tag == _T_LIST:
            count, offset = _decode_varint(payload, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_from(payload, offset)
                items.append(item)
            return items, offset
        if tag == _T_DICT:
            count, offset = _decode_varint(payload, offset)
            result: Dict[str, Any] = {}
            for _ in range(count):
                key_length, offset = _decode_varint(payload, offset)
                self._need(payload, offset, key_length)
                # Frame field names ("op", "seq", "src", ...) recur on every
                # decoded frame; interning collapses the per-frame key
                # copies to shared singletons and makes downstream dict
                # lookups pointer-compares — measurable at swarm scale.
                key = intern(payload[offset:offset + key_length].decode("utf-8"))
                offset += key_length
                result[key], offset = self._decode_from(payload, offset)
            return result, offset
        raise CodecError(f"unknown type tag {tag!r} at offset {offset - 1}")

    @staticmethod
    def _need(payload: bytes, offset: int, count: int) -> None:
        if offset + count > len(payload):
            raise CodecError("truncated payload")


def _skip_value(payload: bytes, offset: int) -> int:
    """Offset just past the encoded value starting at ``offset``.

    A structural scan — no Python values are built — used by
    :func:`splice_int_field` to locate a field inside cached frame bytes.
    """
    if offset >= len(payload):
        raise CodecError("truncated payload")
    tag = payload[offset:offset + 1]
    offset += 1
    if tag in (_T_NONE, _T_TRUE, _T_FALSE):
        return offset
    if tag == _T_INT:
        _, offset = _decode_varint(payload, offset)
        return offset
    if tag == _T_FLOAT:
        BinaryCodec._need(payload, offset, _F64.size)
        return offset + _F64.size
    if tag in (_T_STR, _T_BYTES, _T_BIGINT):
        length, offset = _decode_varint(payload, offset)
        BinaryCodec._need(payload, offset, length)
        return offset + length
    if tag == _T_LIST:
        count, offset = _decode_varint(payload, offset)
        for _ in range(count):
            offset = _skip_value(payload, offset)
        return offset
    if tag == _T_DICT:
        count, offset = _decode_varint(payload, offset)
        for _ in range(count):
            key_length, offset = _decode_varint(payload, offset)
            BinaryCodec._need(payload, offset, key_length)
            offset += key_length
            offset = _skip_value(payload, offset)
        return offset
    raise CodecError(f"unknown type tag {tag!r} at offset {offset - 1}")


def splice_int_field(encoded: bytes, key: str, value: int) -> bytes:
    """Rewrite one top-level int field of an encoded binary dict in place.

    Returns bytes identical to re-encoding ``{**decode(encoded), key: value}``
    but touches only the field's varint: everything before and after —
    including a nested multi-kilobyte payload — is sliced, not re-encoded.
    This is the routing layer's per-hop TTL patch on the materialization
    path.
    """
    if encoded[:1] != _T_DICT:
        raise CodecError("splice target is not an encoded dict")
    count, offset = _decode_varint(encoded, 1)
    target = key.encode("utf-8")
    for _ in range(count):
        key_length, offset = _decode_varint(encoded, offset)
        BinaryCodec._need(encoded, offset, key_length)
        field = encoded[offset:offset + key_length]
        offset += key_length
        end = _skip_value(encoded, offset)
        if field == target:
            if encoded[offset:offset + 1] != _T_INT:
                raise CodecError(f"field {key!r} is not an int")
            return (encoded[:offset] + _T_INT
                    + _encode_varint(_zigzag(value)) + encoded[end:])
        offset = end
    raise CodecError(f"field {key!r} not found in encoded dict")


class JsonCodec:
    """Stdlib JSON; rejects bytes values like real JSON middleware does.

    ``allow_nan=False`` keeps the output *standard* JSON: ``float("nan")``
    and infinities raise :class:`CodecError` instead of silently emitting
    the non-interoperable ``NaN``/``Infinity`` tokens that a compliant peer
    would reject on receive.
    """

    name = "json"

    def encode(self, value: Any) -> bytes:
        try:
            return json.dumps(
                value, separators=(",", ":"), allow_nan=False
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot JSON-encode: {exc}") from exc

    def decode(self, payload: bytes) -> Any:
        if _FRAME_TYPES and isinstance(payload, _FRAME_TYPES):
            payload = bytes(payload)
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"cannot JSON-decode: {exc}") from exc


class SmlCodec:
    """Values as SML markup — the paper's markup-based interoperability path.

    Mapping: ``<null/>``, ``<bool>true</bool>``, ``<int>3</int>``,
    ``<float>1.5</float>``, ``<str>hi</str>``, ``<bytes>hex</bytes>``,
    ``<list>...</list>``, ``<dict><entry key="k">value</entry></dict>``.
    """

    name = "sml"

    def encode(self, value: Any) -> bytes:
        return sml.serialize(self._to_element(value)).encode("utf-8")

    def decode(self, payload: bytes) -> Any:
        if _FRAME_TYPES and isinstance(payload, _FRAME_TYPES):
            payload = bytes(payload)
        try:
            root = sml.parse(payload.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise CodecError(f"SML payload is not UTF-8: {exc}") from exc
        return self._from_element(root)

    def _to_element(self, value: Any) -> sml.SmlElement:
        if value is None:
            return sml.element("null")
        if value is True or value is False:
            return sml.element("bool", text="true" if value else "false")
        if isinstance(value, int):
            return sml.element("int", text=str(value))
        if isinstance(value, float):
            return sml.element("float", text=repr(value))
        if isinstance(value, str):
            return sml.element("str", text=value)
        if isinstance(value, (bytes, bytearray)):
            return sml.element("bytes", text=bytes(value).hex())
        if isinstance(value, (list, tuple)):
            node = sml.element("list")
            for item in value:
                node.append(self._to_element(item))
            return node
        if isinstance(value, dict):
            node = sml.element("dict")
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError(f"dict keys must be str, got {type(key).__name__}")
                entry = node.add("entry", key=key)
                entry.append(self._to_element(item))
            return node
        raise CodecError(f"unsupported type {type(value).__name__}")

    def _from_element(self, node: sml.SmlElement) -> Any:
        tag = node.tag
        if tag == "null":
            return None
        if tag == "bool":
            if node.text not in ("true", "false"):
                raise CodecError(f"bad bool text {node.text!r}")
            return node.text == "true"
        if tag == "int":
            try:
                return int(node.text)
            except ValueError as exc:
                raise CodecError(f"bad int text {node.text!r}") from exc
        if tag == "float":
            try:
                return float(node.text)
            except ValueError as exc:
                raise CodecError(f"bad float text {node.text!r}") from exc
        if tag == "str":
            return node.text
        if tag == "bytes":
            try:
                return bytes.fromhex(node.text)
            except ValueError as exc:
                raise CodecError(f"bad hex text {node.text!r}") from exc
        if tag == "list":
            return [self._from_element(child) for child in node.children]
        if tag == "dict":
            result: Dict[str, Any] = {}
            for entry in node.children:
                if entry.tag != "entry" or "key" not in entry.attributes:
                    raise CodecError(f"bad dict entry <{entry.tag}>")
                if len(entry.children) != 1:
                    raise CodecError(
                        f"dict entry {entry.attributes.get('key')!r} must have one value"
                    )
                result[entry.attributes["key"]] = self._from_element(entry.children[0])
            return result
        raise CodecError(f"unknown SML value tag <{tag}>")


_CODECS: Dict[str, Codec] = {
    codec.name: codec for codec in (BinaryCodec(), JsonCodec(), SmlCodec())
}


def get_codec(name: str) -> Codec:
    """Look up a codec by wire-format name ('binary', 'json', 'sml')."""
    try:
        return _CODECS[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_CODECS)}"
        ) from None


def try_decode_dict(codec: Codec, payload: bytes) -> "Dict[str, Any] | None":
    """Decode a frame expected to hold a message dict; ``None`` if malformed.

    Receive paths use this so corrupted or truncated frames (chaos
    injection, buggy peers) are counted and dropped by the caller instead
    of unwinding the simulator event loop with a raise.

    When the payload is a lazy :class:`~repro.interop.frames.WireFrame`
    delivered by reference (same-process fast path), the message dict is
    extracted with **zero decode** — provided the frame was built for the
    same wire format; a codec mismatch falls back to materialize-then-decode
    so cross-format behavior is identical to the eager path.
    """
    if not isinstance(payload, (bytes, bytearray)):
        extractor = _FRAME_DICT_EXTRACTOR
        if extractor is not None:
            return extractor(codec, payload)
        return None
    try:
        value = codec.decode(payload)
    except (InteropError, ValueError, OverflowError):
        return None
    return value if isinstance(value, dict) else None
