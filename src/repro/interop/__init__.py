"""Interoperability (Section 3.9).

The paper argues that markup languages give middleware "semantic
independence" and therefore interoperability, at a cost to be weighed
(especially for embedded systems). This package provides both sides of that
tradeoff:

* :mod:`repro.interop.sml` — SML, an XML-subset markup language implemented
  from scratch (parser + serializer),
* :mod:`repro.interop.codec` — pluggable payload codecs: a compact binary
  format, JSON, and SML; the overhead benchmark (E9) measures exactly the
  bytes-per-call cost the paper warns about,
* :mod:`repro.interop.schema` — service-interface descriptions and message
  validation,
* :mod:`repro.interop.bridge` — paradigm bridges (RPC <-> messaging <->
  publish/subscribe) and a middleware-to-middleware gateway.
"""

from repro.interop.codec import BinaryCodec, Codec, JsonCodec, SmlCodec, get_codec
from repro.interop.frames import PrefixedFrame, TailIntPacker, WireFrame
from repro.interop.schema import FieldSpec, InterfaceSchema, MessageSchema, OperationSpec
from repro.interop.sml import SmlElement, parse, serialize

__all__ = [
    "BinaryCodec",
    "Codec",
    "JsonCodec",
    "SmlCodec",
    "get_codec",
    "PrefixedFrame",
    "TailIntPacker",
    "WireFrame",
    "FieldSpec",
    "InterfaceSchema",
    "MessageSchema",
    "OperationSpec",
    "SmlElement",
    "parse",
    "serialize",
]
