"""Paradigm bridges and the middleware-to-middleware gateway.

Section 3.9's goal — interoperability "among multiple languages and/or
middleware platforms" — shows up in two forms here:

* :class:`CodecGateway` — a node standing between two transports whose
  parties speak *different wire formats* (e.g. a binary-codec sensor island
  and an SML-markup enterprise side). It decodes with one codec, re-encodes
  with the other, and forwards per an address map. Semantic independence
  comes from the shared JSON-like value model, exactly the markup argument
  the paper makes.
* :class:`RpcEventBridge` / :class:`PubSubTupleBridge` — *paradigm*
  bridges: RPC callers reach publish/subscribe consumers, and events
  materialize as tuples for tuple-space readers.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.interop.codec import Codec, get_codec
from repro.interop.frames import decode_payload
from repro.transactions.pubsub import PubSubClient
from repro.transactions.rpc import RpcEndpoint
from repro.transactions.tuplespace import TupleSpaceClient
from repro.transport.base import Address, Transport


class CodecGateway:
    """Bidirectional wire-format translation between two transports.

    ``route_a_to_b`` maps source addresses seen on side A to destinations
    on side B (and vice versa for ``route_b_to_a``); unmapped sources fall
    back to the default peer, and traffic with no route is dropped and
    counted.
    """

    def __init__(
        self,
        side_a: Transport,
        side_b: Transport,
        codec_a: Optional[Codec] = None,
        codec_b: Optional[Codec] = None,
        default_b: Optional[Address] = None,
        default_a: Optional[Address] = None,
    ):
        self.side_a = side_a
        self.side_b = side_b
        self.codec_a = codec_a if codec_a is not None else get_codec("binary")
        self.codec_b = codec_b if codec_b is not None else get_codec("sml")
        self.route_a_to_b: Dict[str, Address] = {}
        self.route_b_to_a: Dict[str, Address] = {}
        self.default_b = default_b
        self.default_a = default_a
        self.forwarded_a_to_b = 0
        self.forwarded_b_to_a = 0
        self.dropped = 0
        side_a.set_receiver(self._from_a)
        side_b.set_receiver(self._from_b)

    def map_a_to_b(self, source_on_a: Address, destination_on_b: Address) -> None:
        self.route_a_to_b[str(source_on_a)] = destination_on_b

    def map_b_to_a(self, source_on_b: Address, destination_on_a: Address) -> None:
        self.route_b_to_a[str(source_on_b)] = destination_on_a

    def _from_a(self, source: Address, payload: bytes) -> None:
        destination = self.route_a_to_b.get(str(source), self.default_b)
        if destination is None:
            self.dropped += 1
            return
        value = decode_payload(self.codec_a, payload)
        self.forwarded_a_to_b += 1
        self.side_b.send(destination, self.codec_b.encode(value))

    def _from_b(self, source: Address, payload: bytes) -> None:
        destination = self.route_b_to_a.get(str(source), self.default_a)
        if destination is None:
            self.dropped += 1
            return
        value = decode_payload(self.codec_b, payload)
        self.forwarded_b_to_a += 1
        self.side_a.send(destination, self.codec_a.encode(value))


class RpcEventBridge:
    """Lets RPC-world clients publish into, and pull from, pub/sub world.

    Exposes two methods on the given RPC endpoint:

    * ``publish(topic, event)`` — forwards to the event broker;
    * ``poll(topic)`` — returns (and clears) events buffered for a topic
      pattern this bridge subscribed to with :meth:`bridge_topic`.
    """

    def __init__(self, rpc: RpcEndpoint, pubsub: PubSubClient):
        self.rpc = rpc
        self.pubsub = pubsub
        self._buffers: Dict[str, list] = {}
        self.published = 0
        rpc.expose("publish", self._publish)
        rpc.expose("poll", self._poll)

    def _publish(self, topic: str, event: Any) -> bool:
        self.pubsub.publish(topic, event)
        self.published += 1
        return True

    def bridge_topic(self, pattern: str) -> None:
        """Start buffering events matching ``pattern`` for RPC pollers."""
        self._buffers.setdefault(pattern, [])
        self.pubsub.subscribe(
            pattern,
            lambda topic, event: self._buffers[pattern].append(
                {"topic": topic, "event": event}
            ),
        )

    def _poll(self, topic: str) -> list:
        buffered = self._buffers.get(topic, [])
        self._buffers[topic] = []
        return buffered


class PubSubTupleBridge:
    """Materializes events as tuples: subscribers of one paradigm see
    producers of the other.

    Every event on ``pattern`` becomes the tuple
    ``("event", topic, event_value)`` in the tuple space, where Linda-style
    consumers can ``in_("event", None, None)`` it.
    """

    def __init__(self, pubsub: PubSubClient, space: TupleSpaceClient, pattern: str):
        self.pubsub = pubsub
        self.space = space
        self.pattern = pattern
        self.bridged = 0
        pubsub.subscribe(pattern, self._on_event)

    def _on_event(self, topic: str, event: Any) -> None:
        self.bridged += 1
        self.space.out("event", topic, event)
