"""E7b — transaction handoff for a departing supplier (Section 3.7).

Claim under test: "if a service is about to be discontinued (e.g., a mobile
service moving out of range), then the transactions involving it should be
either completed, or transferred to different services matching the
constraints."

A consumer streams from the best-matched supplier, which is mounted on a
vehicle driving out of radio range. With the handoff manager the stream is
transferred *before* the link breaks; without it, the middleware only
reacts after deliveries start failing. Reported: deliveries, failed
deliveries, outage duration (gap between consecutive deliveries around the
departure), and final transaction state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.discovery.description import ServiceDescription
from repro.discovery.matching import Query
from repro.discovery.registry import RegistryClient, RegistryServer
from repro.netsim import topology
from repro.netsim.mobility import LinearMobility
from repro.qos.spec import SupplierQoS
from repro.scheduling.handoff import HandoffManager
from repro.transactions.manager import TransactionManager
from repro.transactions.rpc import RpcEndpoint
from repro.transactions.transaction import TransactionKind, TransactionSpec
from repro.transport.simnet import SimFabric
from repro.util.geometry import Point

SPEED_MPS = 4.0
STREAM_INTERVAL_S = 0.5
DURATION_S = 40.0


def run_one(
    with_handoff: bool, seed: int = 0, trace_path: Optional[str] = None
) -> Dict[str, Any]:
    network = topology.star(3, radius=30, seed=seed)
    if trace_path is not None:
        from repro.obs.tracing import TRACER

        TRACER.enable(seed=seed, clock=network.sim.clock)
    try:
        return _run_one(network, with_handoff, trace_path)
    finally:
        if trace_path is not None:
            from repro.obs.export import chrome_trace, dump_trace
            from repro.obs.tracing import TRACER

            TRACER.finish_all()
            dump_trace(chrome_trace(TRACER), trace_path)
            TRACER.disable()


def _run_one(
    network, with_handoff: bool, trace_path: Optional[str] = None
) -> Dict[str, Any]:
    fabric = SimFabric(network)
    network.node("leaf0").set_mobility(
        LinearMobility(Point(30, 0), velocity=(SPEED_MPS, 0.0))
    )
    registry = RegistryServer(fabric.endpoint("hub", "registry"))
    mobile = RpcEndpoint(fabric.endpoint("leaf0", "svc"))
    mobile.expose("read", lambda **kw: "mobile")
    static = RpcEndpoint(fabric.endpoint("leaf1", "svc"))
    static.expose("read", lambda **kw: "static")
    RegistryClient(fabric.endpoint("leaf0", "reg"),
                   registry.transport.local_address).register(
        ServiceDescription("mobile", "sensor", "leaf0:svc",
                           qos=SupplierQoS(reliability=0.99)), lease_s=300)
    RegistryClient(fabric.endpoint("leaf1", "reg"),
                   registry.transport.local_address).register(
        ServiceDescription("static", "sensor", "leaf1:svc",
                           qos=SupplierQoS(reliability=0.9)), lease_s=300)
    network.sim.run_until(1.0)

    consumer = RpcEndpoint(fabric.endpoint("hub", "svc"))
    discovery = RegistryClient(fabric.endpoint("hub", "disc"),
                               registry.transport.local_address)
    manager = TransactionManager(consumer, discovery, call_timeout_s=0.5)
    handoff = None
    if with_handoff:
        handoff = HandoffManager(network, manager, "hub",
                                 warn_fraction=0.8, check_interval_s=0.5)

    delivery_times: List[float] = []
    promise = manager.establish(
        Query("sensor"),
        TransactionSpec(TransactionKind.CONTINUOUS, interval_s=STREAM_INTERVAL_S),
        on_data=lambda value, latency: delivery_times.append(network.sim.now()),
    )
    network.sim.run_until(DURATION_S)
    transaction = promise.result()

    gaps = [b - a for a, b in zip(delivery_times, delivery_times[1:])]
    worst_gap = max(gaps) if gaps else float("inf")
    return {
        "handoff": "on" if with_handoff else "off",
        "deliveries": transaction.deliveries,
        "failed_calls": transaction.failures,
        "worst_gap_s": round(worst_gap, 2),
        "transfers": transaction.transfers,
        "handoffs_initiated": handoff.handoffs_initiated if handoff else 0,
        "final_state": transaction.state.value,
        "final_supplier": transaction.supplier.service_id,
    }


def run(seed: int = 0) -> List[Dict[str, Any]]:
    """The E7b table: the same departure with and without the manager."""
    return [run_one(False, seed), run_one(True, seed)]


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.exp_handoff",
        description="E7b handoff experiment; --trace exports a Chrome trace "
                    "of the with-handoff run (open it at ui.perfetto.dev).",
    )
    parser.add_argument("--trace", metavar="PATH",
                        help="export a trace of the with-handoff run to PATH")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.trace:
        result: Any = run_one(True, seed=args.seed, trace_path=args.trace)
    else:
        result = run(seed=args.seed)
    print(json.dumps(result, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
