"""E2 — service discovery modes vs network size and churn (Section 3.3).

Claim under test: "These [service discovery mechanisms] can be completely
distributed, completely centralized, or a mixture of the two. The choice of
mechanism depends on the size of the network, the communication overhead
that can be tolerated, and how frequently the available components change."

The harness runs the same workload — suppliers advertising, one consumer
looking up every couple of seconds, optional churn killing and reviving
suppliers — under the centralized registry, distributed flooding (with and
without advertisement caching — the ablation), and reports message
overhead, lookup latency, and staleness (returned services that are
actually dead).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.discovery.description import ServiceDescription
from repro.discovery.distributed import DistributedDiscovery
from repro.discovery.matching import Query
from repro.discovery.registry import RegistryClient, RegistryServer
from repro.netsim import topology
from repro.netsim.failures import FailureInjector
from repro.qos.spec import SupplierQoS
from repro.transport.simnet import SimFabric

LOOKUP_INTERVAL_S = 2.0
DURATION_S = 60.0
LEASE_S = 6.0
ADVERT_INTERVAL_S = 6.0
ADVERT_LEASE_S = 8.0


def _make_description(i: int) -> ServiceDescription:
    return ServiceDescription(
        f"s{i}", "svc", f"leaf{i}:services", qos=SupplierQoS(reliability=0.95)
    )


def _run_lookups(network, issue_lookup, suppliers) -> Dict[str, Any]:
    """Drive periodic lookups; collect latency and staleness."""
    latencies: List[float] = []
    stale = 0
    returned = 0
    lookups = 0

    def do_lookup() -> None:
        nonlocal lookups
        lookups += 1
        started = network.sim.now()
        promise = issue_lookup()

        def settle(settled) -> None:
            nonlocal stale, returned
            if settled.rejected:
                return
            latencies.append(network.sim.now() - started)
            for description in settled.result():
                returned += 1
                node_id = description.provider.split(":", 1)[0]
                if node_id in network and not network.node(node_id).alive:
                    stale += 1

        promise.on_settle(settle)

    network.sim.schedule_every(LOOKUP_INTERVAL_S, do_lookup)
    network.sim.run_until(DURATION_S)
    return {
        "lookups": lookups,
        "answered": len(latencies),
        "mean_latency_s": sum(latencies) / len(latencies) if latencies else 0.0,
        "stale_fraction": stale / returned if returned else 0.0,
    }


def run_centralized(n_suppliers: int, churn_rate: float, seed: int = 0) -> Dict[str, Any]:
    network = topology.star(n_suppliers + 1, radius=40, seed=seed)
    fabric = SimFabric(network)
    server = RegistryServer(fabric.endpoint("hub", "registry"))
    clients = []
    for i in range(1, n_suppliers + 1):
        client = RegistryClient(fabric.endpoint(f"leaf{i}", "disc"),
                                server.transport.local_address)
        client.register(_make_description(i), lease_s=LEASE_S)
        clients.append(client)
    consumer = RegistryClient(fabric.endpoint("leaf0", "disc"),
                              server.transport.local_address)
    if churn_rate > 0:
        FailureInjector(network, seed=seed).random_churn(
            [f"leaf{i}" for i in range(1, n_suppliers + 1)],
            rate_per_node_s=churn_rate, downtime_s=8.0, until=DURATION_S,
        )
    stats = _run_lookups(
        network,
        lambda: consumer.lookup(Query("svc", max_results=n_suppliers + 1)),
        clients,
    )
    messages = (
        server.transport.sent_messages
        + consumer.transport.sent_messages
        + sum(c.transport.sent_messages for c in clients)
    )
    return {"mode": "centralized", **stats, "messages": messages}


def run_distributed(
    n_suppliers: int, churn_rate: float, use_cache: bool, seed: int = 0
) -> Dict[str, Any]:
    network = topology.star(n_suppliers + 1, radius=40, seed=seed)
    fabric = SimFabric(network)
    agents = {}
    for i in range(n_suppliers + 1):
        node_id = "leaf0" if i == 0 else f"leaf{i}"
        agents[node_id] = DistributedDiscovery(
            fabric.endpoint(node_id, "disc"), ttl=2,
            advertise_interval_s=ADVERT_INTERVAL_S,
            advert_lease_s=ADVERT_LEASE_S,
            collect_window_s=1.0, use_cache=use_cache,
        )
    for i in range(1, n_suppliers + 1):
        agents[f"leaf{i}"].advertise(_make_description(i))
    if churn_rate > 0:
        FailureInjector(network, seed=seed).random_churn(
            [f"leaf{i}" for i in range(1, n_suppliers + 1)],
            rate_per_node_s=churn_rate, downtime_s=8.0, until=DURATION_S,
        )
    stats = _run_lookups(
        network,
        lambda: agents["leaf0"].lookup(Query("svc", max_results=n_suppliers + 1)),
        None,
    )
    messages = sum(agent.total_messages_sent() for agent in agents.values())
    mode = "distributed+cache" if use_cache else "distributed"
    return {"mode": mode, **stats, "messages": messages}


def run(
    sizes=(10, 30),
    churn_rates=(0.0, 0.02),
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """The E2 table: one row per (mode, size, churn)."""
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        for churn in churn_rates:
            for result in (
                run_centralized(n, churn, seed),
                run_distributed(n, churn, use_cache=True, seed=seed),
                run_distributed(n, churn, use_cache=False, seed=seed),
            ):
                result_row = {"suppliers": n, "churn_per_s": churn, **result}
                result_row["msgs_per_lookup"] = (
                    result["messages"] / result["lookups"]
                    if result["lookups"] else 0.0
                )
                rows.append(result_row)
    return rows
