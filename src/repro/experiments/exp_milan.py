"""E10 — the MiLAN headline: QoS-aware selection extends lifetime (§4).

Claim under test: "It is the job of MiLAN to identify these feasible sets
and to determine which set optimizes the tradeoff between application
performance and network cost (e.g., energy dissipation)" — and that doing
so beats naive configurations.

The paper's health-monitor application (three states over three vitals)
runs against a battery-powered sensor fleet until its QoS becomes
unsatisfiable. Selection policies compared:

* ``all-on`` — every sensor streams (no middleware; the plug-and-play
  default);
* ``random-feasible`` — a feasible set, but chosen blindly;
* ``greedy-reliability`` — maximize accuracy, ignore energy;
* ``milan-max-lifetime`` and ``milan-balanced`` — the real selectors.

Reported: application lifetime, mean reliability surplus over the run, and
reconfiguration count. ``run_ablation`` additionally sweeps the feasible-
set enumeration cap (the DESIGN.md ablation).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.core.configurator import NetworkConfiguration
from repro.core.feasibility import (
    combined_reliability,
    minimal_feasible_sets,
    satisfies,
)
from repro.core.milan import Milan
from repro.core.policy import health_monitor_policy
from repro.core.selection import SetScore
from repro.core.sensors import SensorInfo
from repro.util.rng import split_rng

STEP_S = 5.0
MAX_TIME_S = 200_000.0

#: The patient's day: mostly rest, regular exercise, occasional distress.
#: Cycling states is what separates the selection strategies — in a single
#: state the minimal sets all share the same bottleneck sensor pool.
STATE_SCHEDULE = [("rest", 120.0), ("exercise", 60.0), ("rest", 120.0),
                  ("distress", 20.0)]
SCHEDULE_PERIOD_S = sum(duration for _state, duration in STATE_SCHEDULE)


def _state_at(time_s: float) -> str:
    phase = time_s % SCHEDULE_PERIOD_S
    for state, duration in STATE_SCHEDULE:
        if phase < duration:
            return state
        phase -= duration
    return STATE_SCHEDULE[-1][0]


def fleet() -> List[SensorInfo]:
    return [
        SensorInfo("bp-cuff", {"blood_pressure": 0.95}, 0.020, 10.0),
        SensorInfo("bp-wrist", {"blood_pressure": 0.75}, 0.008, 10.0),
        SensorInfo("bp-ankle", {"blood_pressure": 0.70}, 0.007, 9.0),
        SensorInfo("ecg", {"heart_rate": 0.95, "blood_pressure": 0.30}, 0.030, 12.0),
        SensorInfo("ppg", {"heart_rate": 0.80, "oxygen_saturation": 0.90}, 0.010, 8.0),
        SensorInfo("spo2", {"oxygen_saturation": 0.85}, 0.012, 9.0),
        SensorInfo("spo2-b", {"oxygen_saturation": 0.80}, 0.009, 7.0),
        SensorInfo("hr-strap", {"heart_rate": 0.85}, 0.006, 6.0),
        SensorInfo("hr-watch", {"heart_rate": 0.70}, 0.005, 6.0),
    ]


def _random_strategy(seed: int):
    rng = split_rng(seed, "milan-random")

    def strategy(scores: List[SetScore]) -> SetScore:
        return rng.choice(sorted(scores, key=lambda s: sorted(s.sensor_set)))

    return strategy


def _build(policy_name: str, seed: int) -> Milan:
    policy = health_monitor_policy()
    if policy_name == "milan-balanced":
        pass  # the default balanced(0.7)
    elif policy_name == "milan-max-lifetime":
        policy.selection = "max_lifetime"
    elif policy_name == "greedy-reliability":
        policy.selection = "max_reliability"
    elif policy_name == "random-feasible":
        policy.selection = _random_strategy(seed)
    milan = Milan(policy)
    for sensor in fleet():
        milan.add_sensor(sensor)
    return milan


def run_one(policy_name: str, seed: int = 0) -> Dict[str, Any]:
    milan = _build(policy_name, seed)
    all_on = policy_name == "all-on"
    if all_on:
        milan.auto_reconfigure = False
        milan.current_configuration = NetworkConfiguration(
            frozenset(milan.sensors), frozenset(), frozenset(), None, frozenset()
        )
    elapsed = 0.0
    surplus_samples: List[float] = []
    while elapsed < MAX_TIME_S:
        wanted_state = _state_at(elapsed)
        if milan.state != wanted_state:
            milan.set_state(wanted_state)
        alive = [s for s in milan.sensors.values() if not s.depleted]
        requirements = milan.requirements()
        if not satisfies(alive, requirements):
            break  # nothing could satisfy the app: true end of life
        if not all_on:
            # MiLAN optimizes continuously: residual-energy changes can make
            # a different set optimal even while the current one still works.
            milan.reconfigure()
        active = [milan.sensors[sid] for sid in milan.active_sensor_ids()
                  if sid in milan.sensors and not milan.sensors[sid].depleted]
        if requirements:
            surplus = min(
                combined_reliability(active, variable) - required
                for variable, required in requirements.items()
            )
            surplus_samples.append(surplus)
        milan.advance_time(STEP_S)
        elapsed += STEP_S
    stats = milan.engine.stats() if milan.engine is not None else {}
    lookups = stats.get("feasibility_hits", 0) + stats.get("feasibility_misses", 0)
    return {
        "policy": policy_name,
        "lifetime_s": elapsed,
        "mean_reliability_surplus": (
            round(sum(surplus_samples) / len(surplus_samples), 4)
            if surplus_samples else 0.0
        ),
        "reconfigurations": milan.reconfigurations,
        "cache_hit_rate": (
            round(stats["feasibility_hits"] / lookups, 3) if lookups else 0.0
        ),
    }


def run(seed: int = 0) -> List[Dict[str, Any]]:
    """The E10 table: lifetime per selection policy, worst first."""
    rows = [
        run_one("all-on", seed),
        run_one("random-feasible", seed),
        run_one("greedy-reliability", seed),
        run_one("milan-max-lifetime", seed),
        run_one("milan-balanced", seed),
    ]
    baseline = rows[0]["lifetime_s"] or 1.0
    for row in rows:
        row["vs_all_on"] = f"{row['lifetime_s'] / baseline:.2f}x"
    return rows


def run_traced(seed: int = 0, export_path: Optional[str] = None) -> Dict[str, Any]:
    """A fully traced end-to-end run: MiLAN driving a multi-hop network.

    A four-node chain (``n0 - n1 - n2 - n3``) runs DSR routing; the
    registry lives on ``n1``, a vitals supplier on ``n3``, and the consumer
    on ``n0`` streams from it through a continuous transaction while the
    MiLAN instance cycles application states. With :data:`~repro.obs.
    tracing.TRACER` enabled for the duration, one run produces causally
    linked spans from every subsystem — transport, routing, discovery, RPC,
    transactions, and MiLAN — exportable as Chrome trace JSON.
    """
    from repro.discovery.description import ServiceDescription
    from repro.discovery.matching import Query
    from repro.discovery.registry import RegistryClient, RegistryServer
    from repro.netsim import topology
    from repro.obs.export import chrome_trace, dump_trace, subsystems, validate_chrome_trace
    from repro.obs.tracing import TRACER
    from repro.routing.base import build_routed_network
    from repro.routing.dsr import DsrRouter
    from repro.transactions.manager import TransactionManager
    from repro.transactions.rpc import RpcEndpoint
    from repro.transactions.transaction import TransactionKind, TransactionSpec
    from repro.transport.simnet import SimFabric

    network = topology.linear_chain(4, spacing=60, seed=seed)
    TRACER.enable(seed=seed, clock=network.sim.clock)
    try:
        fabric = SimFabric(network)
        agents = build_routed_network(fabric, DsrRouter)

        registry = RegistryServer(agents["n1"].open_port("registry"))
        registry_address = registry.transport.local_address

        supplier = RpcEndpoint(agents["n3"].open_port("svc"))
        supplier.expose("read", lambda **kw: {"bp": 120, "hr": 60})
        RegistryClient(agents["n3"].open_port("reg"), registry_address).register(
            ServiceDescription("vitals-far", "sensor", "n3:svc"), lease_s=300
        )
        network.sim.run_until(1.0)

        milan = _build("milan-balanced", seed)

        consumer = RpcEndpoint(agents["n0"].open_port("svc"))
        discovery = RegistryClient(agents["n0"].open_port("disc"), registry_address)
        manager = TransactionManager(consumer, discovery, call_timeout_s=0.5)

        deliveries: List[float] = []
        promise = manager.establish(
            Query("sensor"),
            TransactionSpec(TransactionKind.CONTINUOUS, interval_s=0.5),
            on_data=lambda value, latency: deliveries.append(network.sim.now()),
        )
        for when, state in ((2.0, "exercise"), (4.0, "distress"), (6.0, "rest")):
            network.sim.schedule_at(when, milan.set_state, state)
        network.sim.run_until(8.0)
        transaction = promise.result()
        manager.stop(transaction)
        network.sim.run_until(9.0)

        TRACER.finish_all()
        trace = chrome_trace(TRACER)
        if export_path is not None:
            dump_trace(trace, export_path)
        return {
            "seed": seed,
            "spans": len(TRACER.spans),
            "deliveries": len(deliveries),
            "final_state": transaction.state.value,
            "subsystems": sorted(subsystems(trace)),
            "trace_path": export_path,
            "valid": not validate_chrome_trace(trace),
        }
    finally:
        TRACER.disable()


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.exp_milan",
        description="E10 MiLAN experiment; --trace runs the instrumented "
                    "network scenario and exports a Chrome trace.",
    )
    parser.add_argument("--trace", metavar="PATH",
                        help="run the traced scenario, exporting to PATH")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.trace:
        result = run_traced(seed=args.seed, export_path=args.trace)
    else:
        result = run(seed=args.seed)
    print(json.dumps(result, indent=2))
    return 0


def run_ablation(caps=(4, 32, 256)) -> List[Dict[str, Any]]:
    """Feasible-set enumeration cap: solution quality vs search cost."""
    sensors = fleet()
    requirements = health_monitor_policy().requirements.for_state("distress")
    rows: List[Dict[str, Any]] = []
    for cap in caps:
        started = time.perf_counter()
        sets = minimal_feasible_sets(sensors, requirements, max_sets=cap)
        wall_ms = (time.perf_counter() - started) * 1000
        best_size = min((len(s) for s in sets), default=0)
        rows.append(
            {
                "max_sets_cap": cap,
                "sets_found": len(sets),
                "smallest_set": best_size,
                "enumeration_ms": round(wall_ms, 3),
            }
        )
    return rows


if __name__ == "__main__":
    raise SystemExit(main())
