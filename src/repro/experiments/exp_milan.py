"""E10 — the MiLAN headline: QoS-aware selection extends lifetime (§4).

Claim under test: "It is the job of MiLAN to identify these feasible sets
and to determine which set optimizes the tradeoff between application
performance and network cost (e.g., energy dissipation)" — and that doing
so beats naive configurations.

The paper's health-monitor application (three states over three vitals)
runs against a battery-powered sensor fleet until its QoS becomes
unsatisfiable. Selection policies compared:

* ``all-on`` — every sensor streams (no middleware; the plug-and-play
  default);
* ``random-feasible`` — a feasible set, but chosen blindly;
* ``greedy-reliability`` — maximize accuracy, ignore energy;
* ``milan-max-lifetime`` and ``milan-balanced`` — the real selectors.

Reported: application lifetime, mean reliability surplus over the run, and
reconfiguration count. ``run_ablation`` additionally sweeps the feasible-
set enumeration cap (the DESIGN.md ablation).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.core.configurator import NetworkConfiguration
from repro.core.feasibility import (
    combined_reliability,
    minimal_feasible_sets,
    satisfies,
)
from repro.core.milan import Milan
from repro.core.policy import health_monitor_policy
from repro.core.selection import SetScore
from repro.core.sensors import SensorInfo
from repro.util.rng import split_rng

STEP_S = 5.0
MAX_TIME_S = 200_000.0

#: The patient's day: mostly rest, regular exercise, occasional distress.
#: Cycling states is what separates the selection strategies — in a single
#: state the minimal sets all share the same bottleneck sensor pool.
STATE_SCHEDULE = [("rest", 120.0), ("exercise", 60.0), ("rest", 120.0),
                  ("distress", 20.0)]
SCHEDULE_PERIOD_S = sum(duration for _state, duration in STATE_SCHEDULE)


def _state_at(time_s: float) -> str:
    phase = time_s % SCHEDULE_PERIOD_S
    for state, duration in STATE_SCHEDULE:
        if phase < duration:
            return state
        phase -= duration
    return STATE_SCHEDULE[-1][0]


def fleet() -> List[SensorInfo]:
    return [
        SensorInfo("bp-cuff", {"blood_pressure": 0.95}, 0.020, 10.0),
        SensorInfo("bp-wrist", {"blood_pressure": 0.75}, 0.008, 10.0),
        SensorInfo("bp-ankle", {"blood_pressure": 0.70}, 0.007, 9.0),
        SensorInfo("ecg", {"heart_rate": 0.95, "blood_pressure": 0.30}, 0.030, 12.0),
        SensorInfo("ppg", {"heart_rate": 0.80, "oxygen_saturation": 0.90}, 0.010, 8.0),
        SensorInfo("spo2", {"oxygen_saturation": 0.85}, 0.012, 9.0),
        SensorInfo("spo2-b", {"oxygen_saturation": 0.80}, 0.009, 7.0),
        SensorInfo("hr-strap", {"heart_rate": 0.85}, 0.006, 6.0),
        SensorInfo("hr-watch", {"heart_rate": 0.70}, 0.005, 6.0),
    ]


def _random_strategy(seed: int):
    rng = split_rng(seed, "milan-random")

    def strategy(scores: List[SetScore]) -> SetScore:
        return rng.choice(sorted(scores, key=lambda s: sorted(s.sensor_set)))

    return strategy


def _build(policy_name: str, seed: int) -> Milan:
    policy = health_monitor_policy()
    if policy_name == "milan-balanced":
        pass  # the default balanced(0.7)
    elif policy_name == "milan-max-lifetime":
        policy.selection = "max_lifetime"
    elif policy_name == "greedy-reliability":
        policy.selection = "max_reliability"
    elif policy_name == "random-feasible":
        policy.selection = _random_strategy(seed)
    milan = Milan(policy)
    for sensor in fleet():
        milan.add_sensor(sensor)
    return milan


def run_one(policy_name: str, seed: int = 0) -> Dict[str, Any]:
    milan = _build(policy_name, seed)
    all_on = policy_name == "all-on"
    if all_on:
        milan.auto_reconfigure = False
        milan.current_configuration = NetworkConfiguration(
            frozenset(milan.sensors), frozenset(), frozenset(), None, frozenset()
        )
    elapsed = 0.0
    surplus_samples: List[float] = []
    while elapsed < MAX_TIME_S:
        wanted_state = _state_at(elapsed)
        if milan.state != wanted_state:
            milan.set_state(wanted_state)
        alive = [s for s in milan.sensors.values() if not s.depleted]
        requirements = milan.requirements()
        if not satisfies(alive, requirements):
            break  # nothing could satisfy the app: true end of life
        if not all_on:
            # MiLAN optimizes continuously: residual-energy changes can make
            # a different set optimal even while the current one still works.
            milan.reconfigure()
        active = [milan.sensors[sid] for sid in milan.active_sensor_ids()
                  if sid in milan.sensors and not milan.sensors[sid].depleted]
        if requirements:
            surplus = min(
                combined_reliability(active, variable) - required
                for variable, required in requirements.items()
            )
            surplus_samples.append(surplus)
        milan.advance_time(STEP_S)
        elapsed += STEP_S
    return {
        "policy": policy_name,
        "lifetime_s": elapsed,
        "mean_reliability_surplus": (
            round(sum(surplus_samples) / len(surplus_samples), 4)
            if surplus_samples else 0.0
        ),
        "reconfigurations": milan.reconfigurations,
    }


def run(seed: int = 0) -> List[Dict[str, Any]]:
    """The E10 table: lifetime per selection policy, worst first."""
    rows = [
        run_one("all-on", seed),
        run_one("random-feasible", seed),
        run_one("greedy-reliability", seed),
        run_one("milan-max-lifetime", seed),
        run_one("milan-balanced", seed),
    ]
    baseline = rows[0]["lifetime_s"] or 1.0
    for row in rows:
        row["vs_all_on"] = f"{row['lifetime_s'] / baseline:.2f}x"
    return rows


def run_ablation(caps=(4, 32, 256)) -> List[Dict[str, Any]]:
    """Feasible-set enumeration cap: solution quality vs search cost."""
    sensors = fleet()
    requirements = health_monitor_policy().requirements.for_state("distress")
    rows: List[Dict[str, Any]] = []
    for cap in caps:
        started = time.perf_counter()
        sets = minimal_feasible_sets(sensors, requirements, max_sets=cap)
        wall_ms = (time.perf_counter() - started) * 1000
        best_size = min((len(s) for s in sets), default=0)
        rows.append(
            {
                "max_sets_cap": cap,
                "sets_found": len(sets),
                "smallest_set": best_size,
                "enumeration_ms": round(wall_ms, 3),
            }
        )
    return rows
