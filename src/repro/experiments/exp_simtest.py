"""E14 — simulation-testing defect detection: does the harness catch bugs?

Claim under test: the deterministic simulation-testing framework
(:mod:`repro.simtest`) is an effective defect detector, not just a green
light. For every planted defect (:mod:`repro.simtest.plants`) the explorer
must find a divergence, the shrinker must reduce the triggering trace to a
handful of steps, and the minimized trace must replay deterministically.
A clean sweep row establishes the baseline: the unmodified middleware
survives the same exploration budget with zero divergences.

Like every experiment, a row is a pure function of its inputs — the same
(plant, seed, budget) always yields the same detection iteration, shrunk
step count, and replay verdict — so the table doubles as a regression
fixture for the harness itself::

    python -m repro.experiments simtest
    python -m repro.experiments sweep simtest --seeds 0-3 --workers 4
    python -m repro.experiments.exp_simtest --budget 60 --json rows.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.simtest.explorer import explore
from repro.simtest.plants import PLANTS
from repro.simtest.scenario import Scenario, Step
from repro.simtest.shrinker import shrink
from repro.simtest.world import execute_scenario

#: Exploration budget per plant; every current plant that random search
#: finds at all is found well inside this at seed 0.
DEFAULT_BUDGET = 60

#: Hand-written triggers for plants whose interleaving is too narrow for
#: blind exploration at experiment budgets. A directed trigger is still a
#: fair detection test — the oracles, not the scenario author, decide
#: whether the behaviour diverges (the same trace runs clean unplanted).
DIRECTED_TRIGGERS: Dict[str, Scenario] = {
    "eager-get": Scenario(
        seed=7,
        tie_seed=7,
        steps=(
            Step(0.5, "so_write", ("cfg", 111, 1)),
            Step(1.0, "partition", (1, 1.2)),
            Step(1.3, "so_write", ("cfg", 222, 0)),
            Step(1.6, "so_read", ("cfg", 0)),
            Step(2.6, "so_read", ("cfg", 1)),
        ),
    ),
}


def run_one(plant: str, seed: int = 0,
            budget: int = DEFAULT_BUDGET) -> Dict[str, Any]:
    """Detect, shrink, and replay one planted defect; one table row."""
    report = explore(budget, seed, plant=plant)
    if not report.ok:
        scenario = report.divergent_scenario
        divergence = report.divergences[0]
        found = str(report.runs)
    elif plant in DIRECTED_TRIGGERS:
        scenario = DIRECTED_TRIGGERS[plant]
        result = execute_scenario(scenario, plant)
        divergence = result.divergences[0] if result.divergences else None
        found = "directed"
    else:
        scenario, divergence, found = None, None, ""
    if divergence is None:
        return {
            "plant": plant,
            "found_after": f"not in {budget}",
            "oracle": "-",
            "steps": "-",
            "shrunk": "-",
            "replays": "-",
            "reproduces": False,
        }
    shrunk = shrink(scenario, divergence.signature, plant=plant)
    replay = execute_scenario(shrunk.scenario, plant)
    return {
        "plant": plant,
        "found_after": found,
        "oracle": "/".join(divergence.signature),
        "steps": shrunk.initial_steps,
        "shrunk": shrunk.steps,
        "replays": shrunk.replays,
        "reproduces": shrunk.signature in replay.signatures(),
    }


def run(seed: int = 0, budget: int = DEFAULT_BUDGET,
        plants: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
    """The E14 table: a clean-baseline row, then one row per plant."""
    clean = explore(budget, seed)
    rows: List[Dict[str, Any]] = [{
        "plant": "(none)",
        "found_after": f"clean x{clean.runs}",
        "oracle": "-",
        "steps": "-",
        "shrunk": "-",
        "replays": "-",
        "reproduces": clean.ok,  # for the baseline: "zero divergences"
    }]
    for plant in (plants if plants is not None else sorted(PLANTS)):
        rows.append(run_one(plant, seed, budget))
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.exp_simtest",
        description="E14: planted-defect detection via simulation testing.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    parser.add_argument("--plants", nargs="*", default=None,
                        choices=sorted(PLANTS))
    parser.add_argument("--json", default=None,
                        help="also write the rows as JSON here")
    args = parser.parse_args(argv)

    rows = run(args.seed, args.budget, args.plants)
    from repro.experiments import format_table
    print(format_table(rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2, sort_keys=True)
            handle.write("\n")
    # Nonzero exit if any plant went undetected or failed to replay — the
    # CI smoke step leans on this.
    ok = all(row["reproduces"] for row in rows)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
