"""Multiprocess experiment sweep runner.

The experiment harnesses are single-threaded simulations, so sweeping a
grid of (experiment, seed) configurations is embarrassingly parallel.
:func:`run_sweep` fans the jobs across a ``ProcessPoolExecutor`` and
merges the outcomes **deterministically**: results are returned in
(experiment order, seed order) submission order no matter which worker
finishes first, so a sweep's output — and anything derived from it — is
byte-identical between serial and parallel runs.

CLI::

    python -m repro.experiments sweep                 # list sweepables
    python -m repro.experiments sweep milan --seeds 0-3 --workers 4
    python -m repro.experiments sweep milan adaptation --seeds 0,2,5 --json out.json

Only (experiment-name, seed) pairs cross the process boundary; each worker
re-resolves the callable from :data:`SWEEPABLE` in its own interpreter, so
registry entries need not be picklable. :func:`fan_out` is the generic
pool primitive (processes or threads, order-preserving) that
``benchmarks/run_benchmarks.py --jobs N`` reuses to parallelize the bench
files.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

SweepJob = Tuple[str, int]
SweepOutcome = Dict[str, Any]


# --------------------------------------------------------------------------
# The sweepable registry: name -> callable(seed) -> result rows.
# Workers look names up here inside the child process.
# --------------------------------------------------------------------------


def _milan(seed: int) -> List[Dict[str, Any]]:
    from repro.experiments import exp_milan

    return exp_milan.run(seed=seed)


def _adaptation(seed: int) -> List[Dict[str, Any]]:
    from repro.experiments import exp_adaptation

    return exp_adaptation.run(seed=seed)


def _figure1(seed: int) -> List[Dict[str, Any]]:
    from repro.experiments import exp_figure1

    return exp_figure1.run(seed=seed)


def _discovery(seed: int) -> List[Dict[str, Any]]:
    from repro.experiments import exp_discovery

    return exp_discovery.run(seed=seed)


def _routing(seed: int) -> List[Dict[str, Any]]:
    from repro.experiments import exp_routing

    return exp_routing.run(seed=seed)


def _spatial(seed: int) -> List[Dict[str, Any]]:
    from repro.experiments import exp_spatial

    return exp_spatial.run(seed=seed)


def _chaos(seed: int) -> List[Dict[str, Any]]:
    from repro.experiments import exp_chaos

    return exp_chaos.run(seed=seed)


def _simtest(seed: int) -> List[Dict[str, Any]]:
    from repro.experiments import exp_simtest

    return exp_simtest.run(seed=seed)


def _selftest(seed: int) -> List[Dict[str, Any]]:
    """Harness self-test: instant, deterministic, exercises the merge path."""
    return [{"seed": seed, "square": seed * seed}]


def _workloads(seed: int) -> List[Dict[str, Any]]:
    """Every registered workload scenario, one row each."""
    from repro import workloads

    return [
        workloads.sweep_rows(name, seed)
        for name in workloads.scenario_names()
    ]


SWEEPABLE: Dict[str, Callable[[int], List[Dict[str, Any]]]] = {
    "milan": _milan,
    "adaptation": _adaptation,
    "figure1": _figure1,
    "discovery": _discovery,
    "routing": _routing,
    "spatial": _spatial,
    "chaos": _chaos,
    "simtest": _simtest,
    "selftest": _selftest,
    "workloads": _workloads,
}

#: Registered workload scenarios are sweep axes too, addressed as
#: ``workload:<archetype>:<traffic>`` — one axis per scenario, resolved
#: dynamically so a newly registered archetype needs no sweep change.
WORKLOAD_PREFIX = "workload:"


def _resolve_sweepable(name: str) -> Callable[[int], List[Dict[str, Any]]]:
    """Resolve a sweepable name, including dynamic workload-scenario axes."""
    if name.startswith(WORKLOAD_PREFIX):
        from repro import workloads

        scenario = name[len(WORKLOAD_PREFIX):]
        workloads.parse_scenario(scenario)  # raises on unknown scenarios
        return lambda seed: [workloads.sweep_rows(scenario, seed)]
    return SWEEPABLE[name]


# --------------------------------------------------------------------------
# Generic fan-out
# --------------------------------------------------------------------------


def fan_out(
    jobs: Sequence[Any],
    worker: Callable[[Any], Any],
    max_workers: Optional[int] = None,
    use_processes: bool = True,
    on_result: Optional[Callable[[Any, Any], None]] = None,
) -> List[Any]:
    """Run ``worker`` over ``jobs`` concurrently; results in job order.

    ``max_workers <= 1`` runs serially in-process (no pool, debuggable,
    exceptions propagate). With processes, ``worker`` must be a
    module-level callable (pickled by reference); with threads
    (``use_processes=False``) any callable works — right for workers that
    mostly wait on subprocesses. ``on_result(job, result)`` fires as each
    job completes (completion order, progress reporting only).
    """
    if max_workers is not None and max_workers <= 1:
        results = []
        for job in jobs:
            result = worker(job)
            if on_result is not None:
                on_result(job, result)
            results.append(result)
        return results
    pool_class = ProcessPoolExecutor if use_processes else ThreadPoolExecutor
    results: List[Any] = [None] * len(jobs)
    with pool_class(max_workers=max_workers) as pool:
        index_of = {pool.submit(worker, job): i for i, job in enumerate(jobs)}
        for future in as_completed(index_of):
            i = index_of[future]
            results[i] = future.result()
            if on_result is not None:
                on_result(jobs[i], results[i])
    return results


# --------------------------------------------------------------------------
# The sweep itself
# --------------------------------------------------------------------------


def _run_job(job: SweepJob) -> SweepOutcome:
    """Worker body: run one (experiment, seed) configuration.

    Failures are captured into the outcome rather than raised, so one bad
    configuration cannot tear down the pool or perturb the deterministic
    merge of the others.
    """
    name, seed = job
    started = time.perf_counter()
    try:
        rows = _resolve_sweepable(name)(seed)
        error = None
    except Exception as exc:  # noqa: BLE001 - reported per-job, not fatal
        rows = []
        error = f"{type(exc).__name__}: {exc}"
    return {
        "experiment": name,
        "seed": seed,
        "rows": rows,
        "error": error,
        "wall_s": round(time.perf_counter() - started, 6),
        "pid": os.getpid(),
    }


def run_sweep(
    experiments: Sequence[str],
    seeds: Sequence[int],
    max_workers: Optional[int] = None,
    use_processes: bool = True,
    on_result: Optional[Callable[[SweepJob, SweepOutcome], None]] = None,
) -> List[SweepOutcome]:
    """Fan experiments x seeds across a process pool; merge deterministically.

    The outcome list is ordered by (position in ``experiments``, position
    in ``seeds``) — the submission grid — regardless of worker completion
    order, so a sweep is reproducible and diffable across worker counts.
    """
    unknown = []
    for name in experiments:
        try:
            _resolve_sweepable(name)
        except Exception:  # noqa: BLE001 - unknown name or bad scenario
            unknown.append(name)
    if unknown:
        raise ValueError(
            f"unknown sweepable(s) {sorted(set(unknown))}; available: "
            f"{sorted(SWEEPABLE)} plus '{WORKLOAD_PREFIX}<archetype>:<traffic>'"
        )
    jobs: List[SweepJob] = [
        (name, seed) for name in experiments for seed in seeds
    ]
    return fan_out(
        jobs, _run_job, max_workers=max_workers,
        use_processes=use_processes, on_result=on_result,
    )


def merged_rows(outcomes: Sequence[SweepOutcome]) -> List[Dict[str, Any]]:
    """Flatten outcomes into one row list, tagging experiment and seed.

    Failed jobs contribute a single error row so they stay visible in the
    merged table instead of silently shrinking it.
    """
    rows: List[Dict[str, Any]] = []
    for outcome in outcomes:
        prefix = {"experiment": outcome["experiment"], "seed": outcome["seed"]}
        if outcome["error"] is not None:
            rows.append({**prefix, "error": outcome["error"]})
            continue
        for row in outcome["rows"]:
            rows.append({**prefix, **row})
    return rows
