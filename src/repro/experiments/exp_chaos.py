"""E13 — chaos campaigns: the failure story under deterministic fault storms.

Claim under test: the middleware's failure handling (Sections 3.4 and 3.8)
is not just a happy-path feature — reliable transport, discovery, routing,
heartbeat failover, transactions, and MiLAN reconfiguration all recover
from composed faults (crash churn, partitions with live mobility, loss
bursts, frame corruption, clock skew) and their recovery invariants hold.

Each (mix, seed) campaign is a pure function of its inputs: the scorecard
is byte-identical across runs and processes, so campaigns fan naturally
over the PR-3 sweep runner::

    python -m repro.experiments chaos                 # the summary table
    python -m repro.experiments sweep chaos --seeds 0-7 --workers 4
    python -m repro.experiments.exp_chaos --seeds 0-7 --json scorecards.json

The module CLI exits nonzero if any campaign violates an invariant — the
CI chaos-smoke step runs it with a short fixed-seed grid and uploads the
scorecard JSON as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import parse_seeds
from repro.netsim.chaos import FAULT_MIXES, run_campaign


def run_one(mix: str, seed: int, **overrides: Any) -> Dict[str, Any]:
    """One campaign, flattened to a result-table row."""
    scorecard = run_campaign(mix, seed, **overrides)
    delivery = scorecard["delivery"]
    heartbeat = scorecard["heartbeat"]
    reconvergence = scorecard["reconvergence"]
    return {
        "mix": mix,
        "delivery_ratio": delivery["ratio"],
        "give_ups": delivery["give_ups"],
        "retransmits": delivery["retransmissions"],
        "malformed": scorecard["malformed_frames"],
        "crashes": scorecard["faults"]["crashes"],
        "hb_detected": f"{heartbeat['detected']}/{heartbeat['episodes']}",
        "reconv_s": reconvergence["discovery_s"],
        "ledger_ok": scorecard["ledger"]["conserved"],
        "violations": len(scorecard["violations"]),
        "ok": scorecard["ok"],
    }


def run(seed: int = 0, mixes: Sequence[str] = FAULT_MIXES) -> List[Dict[str, Any]]:
    """The E13 table: one row per fault mix at the given seed."""
    return [run_one(mix, seed) for mix in mixes]


def run_grid(
    seeds: Sequence[int],
    mixes: Sequence[str] = FAULT_MIXES,
    **overrides: Any,
) -> List[Dict[str, Any]]:
    """Full scorecards for every (mix, seed) pair, grid order."""
    return [
        run_campaign(mix, seed, **overrides) for mix in mixes for seed in seeds
    ]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.exp_chaos",
        description="Run chaos campaigns; exit nonzero on invariant violations.",
    )
    parser.add_argument("--seeds", default="0",
                        help='seed spec: "0-7", "1,5,9", or one value')
    parser.add_argument("--mixes", default=",".join(FAULT_MIXES),
                        help=f"comma-separated fault mixes (default: all of "
                             f"{','.join(FAULT_MIXES)})")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full scorecards as JSON")
    parser.add_argument("--smoke", action="store_true",
                        help="short campaigns (CI): ~40s virtual time each")
    args = parser.parse_args(argv)

    seeds = parse_seeds(args.seeds)
    mixes = [m.strip() for m in args.mixes.split(",") if m.strip()]
    unknown = sorted(set(mixes) - set(FAULT_MIXES))
    if unknown:
        print(f"unknown mix(es) {unknown}; available: {list(FAULT_MIXES)}",
              file=sys.stderr)
        return 2
    overrides: Dict[str, Any] = {}
    if args.smoke:
        # duration leaves room for the slowest possible retransmission
        # chain (~13.6s under max clock skew) after the last send, so the
        # timer-leak invariant stays meaningful in the short grid too.
        overrides = {
            "duration_s": 40.0,
            "heal_deadline_s": 24.0,
            "fault_start_s": 5.0,
            "bulk_messages": 60,
            "transfer_stop_s": 22.0,
        }

    scorecards = run_grid(seeds, mixes, **overrides)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(scorecards, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)

    failures = 0
    for scorecard in scorecards:
        status = "ok" if scorecard["ok"] else "FAIL"
        print(f"{scorecard['mix']:<10} seed={scorecard['seed']:<3} {status}  "
              f"delivery={scorecard['delivery']['ratio']:.3f}  "
              f"violations={len(scorecard['violations'])}")
        for violation in scorecard["violations"]:
            failures += 1
            print(f"  VIOLATION: {violation}", file=sys.stderr)
    print(f"{len(scorecards)} campaigns, {failures} invariant violations")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
