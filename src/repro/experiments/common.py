"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Render result-row dicts as an aligned text table.

    Column order follows the first row's key order; floats are shown with
    four significant digits.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in cells))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in cells:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)
