"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def parse_seeds(spec: str) -> List[int]:
    """Parse a sweep seed spec: ``"0-3"`` -> [0, 1, 2, 3]; ``"1,5,9"`` ->
    [1, 5, 9]; ``"7"`` -> [7]. Comma groups may mix ranges and singletons;
    order is preserved and duplicates dropped (first occurrence wins)."""
    seeds: List[int] = []
    seen = set()
    for group in spec.split(","):
        group = group.strip()
        if not group:
            continue
        # Split on an interior dash only, so negative singletons still parse.
        if "-" in group[1:]:
            low_text, high_text = group[1:].split("-", 1)
            low, high = int(group[0] + low_text), int(high_text)
            if high < low:
                raise ValueError(f"empty seed range {group!r}")
            values = range(low, high + 1)
        else:
            values = [int(group)]
        for value in values:
            if value not in seen:
                seen.add(value)
                seeds.append(value)
    if not seeds:
        raise ValueError(f"no seeds in spec {spec!r}")
    return seeds


def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Render result-row dicts as an aligned text table.

    Column order follows the first row's key order; floats are shown with
    four significant digits.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in cells))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in cells:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)
