"""E9 — the cost of markup-based interoperability (Section 3.9).

Claim under test: "the use of a markup language such as XML ... is
necessary to guarantee interoperability. ... however, the cost must be
weighed carefully, especially when considering embedded systems."

The same RPC workload runs over the binary, JSON, and SML (markup) codecs;
reported: bytes per call on the air, total virtual completion time, and
encode/decode CPU time — the concrete "cost to be weighed". A second table
exercises the interoperability *benefit*: bridging an RPC client to
pub/sub consumers through the paradigm bridge.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.interop.bridge import RpcEventBridge
from repro.interop.codec import get_codec
from repro.netsim import topology
from repro.netsim.medium import IDEAL_RADIO
from repro.transactions.pubsub import PubSubBroker, PubSubClient
from repro.transactions.rpc import RpcEndpoint
from repro.transport.simnet import SimFabric

N_CALLS = 200
PARAMS = {"patient": "p-113", "vitals": {"bp": 121.5, "hr": 72, "spo2": 0.98},
          "flags": ["routine", "ward3"]}


def run_codec(codec_name: str) -> Dict[str, Any]:
    codec = get_codec(codec_name)
    network = topology.star(2, radius=40, radio_profile=IDEAL_RADIO)
    fabric = SimFabric(network)
    server = RpcEndpoint(fabric.endpoint("leaf0", "svc"), codec=codec)
    server.expose("record", lambda **kw: {"stored": True, "seq": kw.get("seq")})
    client = RpcEndpoint(fabric.endpoint("leaf1", "svc"), codec=codec)
    completed = []
    cpu_started = time.perf_counter()
    for i in range(N_CALLS):
        client.call(server.transport.local_address, "record",
                    {**PARAMS, "seq": i}).on_value(completed.append)
    network.sim.run(max_events=5_000_000)
    cpu_s = time.perf_counter() - cpu_started
    return {
        "codec": codec_name,
        "calls": len(completed),
        "bytes_on_air": network.medium.bytes_transmitted,
        "bytes_per_call": round(network.medium.bytes_transmitted / N_CALLS, 1),
        "virtual_time_s": round(network.sim.now(), 3),
        "cpu_ms_total": round(cpu_s * 1000, 1),
    }


def run_bridge() -> Dict[str, Any]:
    """RPC world publishing into pub/sub world through the bridge."""
    network = topology.star(4, radius=40, radio_profile=IDEAL_RADIO)
    fabric = SimFabric(network)
    broker = PubSubBroker(fabric.endpoint("hub", "ps"))
    bridge = RpcEventBridge(
        RpcEndpoint(fabric.endpoint("leaf0", "rpc")),
        PubSubClient(fabric.endpoint("leaf0", "ps"),
                     broker.transport.local_address),
    )
    received = []
    subscriber = PubSubClient(fabric.endpoint("leaf1", "ps"),
                              broker.transport.local_address)
    subscriber.subscribe("vitals.#", lambda topic, event: received.append(event))
    caller = RpcEndpoint(fabric.endpoint("leaf2", "rpc"))
    network.sim.run_for(1.0)
    from repro.transport.base import Address

    for i in range(50):
        caller.call(Address("leaf0", "rpc"), "publish",
                    {"topic": "vitals.bp", "event": {"seq": i}})
    network.sim.run(max_events=5_000_000)
    return {
        "path": "rpc -> bridge -> pub/sub",
        "published_via_rpc": bridge.published,
        "received_by_subscriber": len(received),
        "loss": bridge.published - len(received),
    }


def run() -> List[Dict[str, Any]]:
    """The E9 table: one row per wire format."""
    return [run_codec(name) for name in ("binary", "json", "sml")]
