"""E4 — QoS-driven fault tolerance: graceful degradation (Section 3.4).

Claim under test: "All QoS characteristics should provide to the middleware
tools to deal with fault tolerance to provide graceful degradation of the
system in the presence of failures."

A consumer needs a supplier at reliability >= 0.9. Suppliers die one by one
(best first). The harness compares three consumers over the same failure
sequence:

* ``static`` — binds once, never reacts (no middleware help);
* ``rebind`` — rebinds on loss but never relaxes requirements (fails hard
  once nothing meets the floor);
* ``degrading`` — the full degradation manager: rebinds and relaxes in
  steps, keeping *some* service as long as anything is alive.

Reported: delivered quality integrated over time and total outage time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.qos.monitor import DegradationManager
from repro.qos.spec import ConsumerQoS, SupplierQoS, rank_matches

#: (supplier key, reliability) — killed in listed order, best first.
SUPPLIERS = [
    ("alpha", 0.99),
    ("bravo", 0.96),
    ("charlie", 0.93),
    ("delta", 0.85),
    ("echo", 0.72),
]

STEP_S = 10.0  # one supplier dies every STEP_S seconds
TOTAL_S = STEP_S * (len(SUPPLIERS) + 1)


def _simulate(policy: str) -> Dict[str, Any]:
    alive: Dict[str, SupplierQoS] = {
        key: SupplierQoS(reliability=reliability) for key, reliability in SUPPLIERS
    }
    consumer = ConsumerQoS(min_reliability=0.9)

    def candidates() -> List[Tuple[str, SupplierQoS, Optional[float]]]:
        return [(key, qos, None) for key, qos in alive.items()]

    manager: Optional[DegradationManager] = None
    current: Optional[str] = None

    def quality() -> float:
        if policy == "degrading":
            assert manager is not None
            return manager.delivered_quality()
        if current is not None and current in alive:
            match = rank_matches([(current, alive[current], None)], consumer)
            return match[0][1].total if match else 0.0
        return 0.0

    def bind() -> None:
        nonlocal current
        ranked = rank_matches(candidates(), consumer)
        current = ranked[0][0] if ranked else None

    if policy == "degrading":
        manager = DegradationManager(consumer, candidates)
        manager.bind()
    else:
        bind()

    delivered = 0.0
    outage = 0.0
    time = 0.0
    kill_order = [key for key, _r in SUPPLIERS]
    while time < TOTAL_S:
        q = quality()
        delivered += q * 1.0
        if q == 0.0:
            outage += 1.0
        time += 1.0
        if time % STEP_S == 0 and kill_order:
            dead = kill_order.pop(0)
            alive.pop(dead, None)
            if policy == "degrading":
                assert manager is not None
                manager.supplier_lost(dead)
            elif policy == "rebind" and dead == current:
                bind()
            # "static" never reacts.
    return {
        "policy": policy,
        "delivered_quality_integral": delivered,
        "mean_quality": delivered / TOTAL_S,
        "outage_s": outage,
        "final_level": manager.level if manager is not None else 0,
    }


def run() -> List[Dict[str, Any]]:
    """The E4 table: one row per fault-tolerance policy."""
    return [_simulate(policy) for policy in ("static", "rebind", "degrading")]
