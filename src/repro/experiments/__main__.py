"""Run experiment harnesses from the command line.

Usage::

    python -m repro.experiments              # list experiments
    python -m repro.experiments milan        # run one, print its table(s)
    python -m repro.experiments figure1 discovery
    python -m repro.experiments all          # everything (several minutes)
    python -m repro.experiments sweep milan --seeds 0-3 --workers 4
                                             # seed sweep across processes
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Tuple

from repro.experiments import format_table
from repro.experiments.common import parse_seeds
from repro.experiments import (
    exp_adaptation,
    exp_chaos,
    exp_degradation,
    exp_discovery,
    exp_figure1,
    exp_handoff,
    exp_interop,
    exp_milan,
    exp_netindep,
    exp_recovery,
    exp_routing,
    exp_scheduling,
    exp_simtest,
    exp_spatial,
    exp_transactions,
)

#: name -> [(title, thunk returning rows)]
EXPERIMENTS: Dict[str, List[Tuple[str, Callable[[], list]]]] = {
    "figure1": [
        ("F1: middleware references per year", exp_figure1.run),
        ("F1: textual claims", exp_figure1.run_claims),
    ],
    "discovery": [("E2: discovery mode x size x churn", exp_discovery.run)],
    "spatial": [("E3: spatial vs logical matching", exp_spatial.run)],
    "degradation": [("E4: graceful degradation", exp_degradation.run)],
    "routing": [("E5: routing and lifetime", exp_routing.run)],
    "transactions": [("E6: interaction paradigms", exp_transactions.run)],
    "scheduling": [("E7: policies under load", exp_scheduling.run)],
    "handoff": [("E7b: departing-supplier handoff", exp_handoff.run)],
    "recovery": [("E8: recovery vs checkpoint interval", exp_recovery.run)],
    "interop": [
        ("E9: wire-format cost", exp_interop.run),
        ("E9: paradigm bridge", lambda: [exp_interop.run_bridge()]),
    ],
    "milan": [
        ("E10: MiLAN lifetime vs baselines", exp_milan.run),
        ("E10 ablation: feasible-set cap", exp_milan.run_ablation),
    ],
    "adaptation": [("E11: plug-and-play adaptation", exp_adaptation.run)],
    "chaos": [("E13: chaos campaign resilience scorecards", exp_chaos.run)],
    "simtest": [("E14: planted-defect detection via simulation testing",
                 exp_simtest.run)],
    "netindep": [
        ("E12: network independence", exp_netindep.run),
        ("E12 ablation: retransmission policy",
         exp_netindep.run_retransmit_ablation),
    ],
}


def sweep_main(argv: List[str]) -> int:
    """``sweep`` subcommand: experiments x seeds over a process pool."""
    import argparse
    import json

    from repro.experiments import sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments sweep",
        description="Fan (experiment, seed) jobs across worker processes; "
                    "results merge in deterministic grid order.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="sweepable experiment names (empty: list them)")
    parser.add_argument("--seeds", default="0",
                        help='seed spec: "0-3", "1,5,9", or a single value')
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: cpu count)")
    parser.add_argument("--serial", action="store_true",
                        help="run in-process, no pool (debugging)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write raw outcomes as JSON")
    args = parser.parse_args(argv)
    if not args.experiments:
        parser.print_usage()
        print("available sweepables:")
        for name in sorted(sweep.SWEEPABLE):
            print(f"  {name}")
        return 0
    try:
        seeds = parse_seeds(args.seeds)
        outcomes = sweep.run_sweep(
            args.experiments, seeds,
            max_workers=1 if args.serial else args.workers,
            on_result=lambda job, outcome: print(
                f"done {job[0]} seed={job[1]} "
                f"({outcome['wall_s']:.2f}s, pid {outcome['pid']})",
                file=sys.stderr),
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(outcomes, handle, indent=2, default=str)
        print(f"wrote {args.json}", file=sys.stderr)
    title = (f"sweep: {' '.join(args.experiments)} x seeds {args.seeds} "
             f"({len(outcomes)} jobs)")
    print(format_table(sweep.merged_rows(outcomes), title))
    failures = [o for o in outcomes if o["error"] is not None]
    for outcome in failures:
        print(f"FAILED {outcome['experiment']} seed={outcome['seed']}: "
              f"{outcome['error']}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: List[str]) -> int:
    names = argv[1:]
    if names and names[0] == "sweep":
        return sweep_main(names[1:])
    if not names:
        print(__doc__)
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    # Accept module-style names too: "exp_chaos" -> "chaos".
    names = [
        n[4:] if n.startswith("exp_") and n[4:] in EXPERIMENTS else n
        for n in names
    ]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        for title, thunk in EXPERIMENTS[name]:
            print(format_table(thunk(), title))
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
