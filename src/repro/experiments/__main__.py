"""Run experiment harnesses from the command line.

Usage::

    python -m repro.experiments              # list experiments
    python -m repro.experiments milan        # run one, print its table(s)
    python -m repro.experiments figure1 discovery
    python -m repro.experiments all          # everything (several minutes)
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Tuple

from repro.experiments import format_table
from repro.experiments import (
    exp_adaptation,
    exp_degradation,
    exp_discovery,
    exp_figure1,
    exp_handoff,
    exp_interop,
    exp_milan,
    exp_netindep,
    exp_recovery,
    exp_routing,
    exp_scheduling,
    exp_spatial,
    exp_transactions,
)

#: name -> [(title, thunk returning rows)]
EXPERIMENTS: Dict[str, List[Tuple[str, Callable[[], list]]]] = {
    "figure1": [
        ("F1: middleware references per year", exp_figure1.run),
        ("F1: textual claims", exp_figure1.run_claims),
    ],
    "discovery": [("E2: discovery mode x size x churn", exp_discovery.run)],
    "spatial": [("E3: spatial vs logical matching", exp_spatial.run)],
    "degradation": [("E4: graceful degradation", exp_degradation.run)],
    "routing": [("E5: routing and lifetime", exp_routing.run)],
    "transactions": [("E6: interaction paradigms", exp_transactions.run)],
    "scheduling": [("E7: policies under load", exp_scheduling.run)],
    "handoff": [("E7b: departing-supplier handoff", exp_handoff.run)],
    "recovery": [("E8: recovery vs checkpoint interval", exp_recovery.run)],
    "interop": [
        ("E9: wire-format cost", exp_interop.run),
        ("E9: paradigm bridge", lambda: [exp_interop.run_bridge()]),
    ],
    "milan": [
        ("E10: MiLAN lifetime vs baselines", exp_milan.run),
        ("E10 ablation: feasible-set cap", exp_milan.run_ablation),
    ],
    "adaptation": [("E11: plug-and-play adaptation", exp_adaptation.run)],
    "netindep": [
        ("E12: network independence", exp_netindep.run),
        ("E12 ablation: retransmission policy",
         exp_netindep.run_retransmit_ablation),
    ],
}


def main(argv: List[str]) -> int:
    names = argv[1:]
    if not names:
        print(__doc__)
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        for title, thunk in EXPERIMENTS[name]:
            print(format_table(thunk(), title))
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
