"""E5 — routing strategies and network lifetime (Sections 3.5 and 4).

Claim under test: routing inside the middleware can exploit low-level
information (residual energy) that per-application routing cannot, and
doing so "increase[s] the lifetime of a network".

A battery-powered grid relays periodic reports from the far corner to a
mains-powered sink under flooding, shortest-hop, and energy-aware routing
(alpha sweep as the ablation). Reported: packets delivered, time to first
node death, time until the source is cut off, and residual energy.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.netsim import topology
from repro.netsim.energy import Battery, mains_battery
from repro.routing.base import build_routed_network
from repro.routing.energyaware import EnergyAwareRouter
from repro.routing.flooding import FloodingRouter
from repro.routing.linkstate import LinkStateRouter
from repro.transport.base import Address
from repro.transport.simnet import SimFabric

GRID = 5
BATTERY_J = 0.03
REPORT_INTERVAL_S = 1.0
MAX_TIME_S = 600.0
SINK = "n0_0"
SOURCE = f"n{GRID - 1}_{GRID - 1}"


def _router_factory(kind: str, network, alpha: float):
    if kind == "flooding":
        return lambda nid: FloodingRouter()
    if kind == "shortest-hop":
        return lambda nid: LinkStateRouter(network, nid, refresh_interval_s=1.0)
    if kind == "energy-aware":
        return lambda nid: EnergyAwareRouter(network, nid, alpha=alpha,
                                             refresh_interval_s=1.0)
    raise ValueError(f"unknown router kind {kind!r}")


def run_one(kind: str, alpha: float = 2.0, seed: int = 0) -> Dict[str, Any]:
    network = topology.grid(
        GRID, GRID, spacing=55, seed=seed,
        battery_factory=lambda nid: (
            mains_battery() if nid == SINK else Battery(BATTERY_J)
        ),
    )
    fabric = SimFabric(network)
    agents = build_routed_network(fabric, _router_factory(kind, network, alpha))
    sink = agents[SINK].open_port("data")
    delivered = []
    sink.set_receiver(lambda src, data: delivered.append(network.sim.now()))
    source = agents[SOURCE].open_port("data")

    def report() -> None:
        if network.node(SOURCE).alive:
            source.send(Address(SINK, "data"), bytes(64))

    network.sim.schedule_every(REPORT_INTERVAL_S, report)

    first_death = None
    cut_off = MAX_TIME_S
    time = 0.0
    while time < MAX_TIME_S:
        network.sim.run_for(5.0)
        time += 5.0
        if first_death is None and network.first_dead_node() is not None:
            first_death = time
        if SOURCE not in network.reachable_from(SINK):
            cut_off = time
            break
    label = kind if kind != "energy-aware" else f"energy-aware(a={alpha:g})"
    return {
        "router": label,
        "delivered": len(delivered),
        "first_death_s": first_death if first_death is not None else time,
        "source_cut_off_s": cut_off,
        "energy_left_j": round(network.total_energy_remaining(), 4),
    }


def run(alphas=(0.0, 2.0, 4.0), seed: int = 0) -> List[Dict[str, Any]]:
    """The E5 table: flooding and shortest-hop baselines plus the
    energy-aware alpha sweep."""
    rows = [run_one("flooding", seed=seed), run_one("shortest-hop", seed=seed)]
    for alpha in alphas:
        rows.append(run_one("energy-aware", alpha=alpha, seed=seed))
    return rows
