"""E8 — log-based recovery for critical transactions (Section 3.8).

Claim under test: "If middleware works with critical transactions, it must
include a recovery system to deal with failures. Sometimes a simple
log-based scheme can be used..."

A transactional store executes a committed-write workload, crashes at a
random point, and recovers. Sweeping the checkpoint interval exposes the
classic tradeoff: frequent checkpoints cost log volume at runtime but bound
the records recovery must scan. Durability must be 100% at every setting —
that column is the invariant, not a variable.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.recovery.store import TransactionalStore
from repro.recovery.wal import StableStorage
from repro.util.rng import split_rng

N_TRANSACTIONS = 400
WRITES_PER_TRANSACTION = 3


def run_one(checkpoint_interval: int, seed: int = 0) -> Dict[str, Any]:
    rng = split_rng(seed, f"recovery:{checkpoint_interval}")
    storage = StableStorage()
    store = TransactionalStore(storage, checkpoint_interval_ops=checkpoint_interval)
    expected: Dict[str, int] = {}
    crash_after = rng.randint(N_TRANSACTIONS // 2, N_TRANSACTIONS - 1)
    for i in range(N_TRANSACTIONS):
        txid = store.begin()
        writes = {}
        for j in range(WRITES_PER_TRANSACTION):
            key = f"k{rng.randint(0, 99)}"
            value = rng.randint(0, 10**6)
            store.put(txid, key, value)
            writes[key] = value
        if rng.random() < 0.1:
            store.abort(txid)
        else:
            store.commit(txid)
            expected.update(writes)
        if i == crash_after:
            break
    log_size = len(storage)
    store.crash()
    started = time.perf_counter()
    recovered = TransactionalStore(storage,
                                   checkpoint_interval_ops=checkpoint_interval)
    recovery_wall_s = time.perf_counter() - started
    durable = recovered.snapshot() == expected
    return {
        "checkpoint_every_ops": checkpoint_interval,
        "log_records": log_size,
        "records_scanned": recovered.last_recovery_records_scanned,
        "recovery_wall_ms": round(recovery_wall_s * 1000, 3),
        "durability": "100%" if durable else "VIOLATED",
    }


def run(intervals=(25, 100, 400, 10**9), seed: int = 0) -> List[Dict[str, Any]]:
    """The E8 table: recovery cost vs checkpoint interval (inf = never)."""
    return [run_one(interval, seed) for interval in intervals]
