"""E11 — MiLAN plug-and-play adaptation (Section 4).

Claim under test: "Applications themselves are able to adapt to changing
sets of components providing input (in a sense, plug and play), and the
system incorporates a service discovery mechanism to identify new
components."

Sensors join and leave (discovered and lost over the simulated network)
while the application runs; reported per event kind: how long MiLAN took to
reconfigure (virtual time from event to restored satisfaction) and the
fraction of total time the application QoS was satisfied.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.milan import Milan
from repro.core.policy import health_monitor_policy
from repro.core.sensors import SensorInfo

#: Sweep axis: seed n runs the script in application state n mod 3.
SWEEP_STATES = ("rest", "exercise", "distress")

#: (time, event, sensor) script: a living deployment.
SCRIPT = [
    (0.0, "join", SensorInfo("bp-cuff", {"blood_pressure": 0.95}, 0.02, 50.0)),
    (0.0, "join", SensorInfo("hr-strap", {"heart_rate": 0.85}, 0.006, 50.0)),
    (5.0, "join", SensorInfo("ppg", {"heart_rate": 0.8, "oxygen_saturation": 0.9},
                             0.01, 50.0)),
    (10.0, "leave", "hr-strap"),          # strap taken off: hr via ppg
    (15.0, "join", SensorInfo("ecg", {"heart_rate": 0.95, "blood_pressure": 0.3},
                              0.03, 50.0)),
    (20.0, "leave", "bp-cuff"),           # cuff removed: bp only via weak ecg
    (25.0, "join", SensorInfo("bp-wrist", {"blood_pressure": 0.75}, 0.008, 50.0)),
    (30.0, "leave", "ppg"),
    (35.0, "join", SensorInfo("spo2", {"oxygen_saturation": 0.85}, 0.012, 50.0)),
]

DURATION_S = 40.0
TICK_S = 0.1


def run(state: Optional[str] = None, seed: int = 0) -> List[Dict[str, Any]]:
    """Event log: per join/leave, whether QoS held and reconfig latency.

    ``state=None`` derives the application state from ``seed`` (see
    :data:`SWEEP_STATES`), so a seed sweep covers the whole QoS ladder;
    the defaults reproduce the historical ``state="rest"`` run.
    """
    if state is None:
        state = SWEEP_STATES[seed % len(SWEEP_STATES)]
    milan = Milan(health_monitor_policy())
    milan.set_state(state)
    script = sorted(SCRIPT, key=lambda entry: entry[0])
    rows: List[Dict[str, Any]] = []
    satisfied_time = 0.0
    time = 0.0
    index = 0
    pending: List[Dict[str, Any]] = []
    while time < DURATION_S:
        while index < len(script) and script[index][0] <= time:
            _when, kind, payload = script[index]
            index += 1
            before = milan.application_satisfied()
            if kind == "join":
                milan.add_sensor(payload)
                name = payload.sensor_id
            else:
                milan.remove_sensor(payload)
                name = payload
            after = milan.application_satisfied()
            row = {
                "t": time,
                "event": f"{kind} {name}",
                "satisfied_before": before,
                "satisfied_after": after,
                "active_set": ",".join(sorted(milan.active_sensor_ids())),
                "recovery_s": 0.0 if after else None,
            }
            rows.append(row)
            if not after:
                pending.append(row)
        if milan.application_satisfied():
            satisfied_time += TICK_S
            for row in pending:
                row["recovery_s"] = round(time - row["t"], 2)
            pending = []
        time += TICK_S
    rows.append(
        {
            "t": DURATION_S,
            "event": "SUMMARY",
            "satisfied_before": "",
            "satisfied_after": "",
            "active_set": f"uptime={satisfied_time / DURATION_S:.3f}",
            "recovery_s": None,
        }
    )
    return rows


def qos_uptime(state: str = "rest") -> float:
    """Just the headline number: fraction of time the QoS held."""
    rows = run(state)
    summary = rows[-1]["active_set"]
    return float(summary.split("=", 1)[1])
