"""E7 — scheduling policies under load (Section 3.7).

Claim under test: "the middleware can decide on interaction order based on
priority or bandwidth constraints" — i.e. policy choice matters. The first
middleware citation in the paper's review (Mizunuma et al. [6]) is
rate-monotonic middleware, so RM is in the lineup.

Periodic task sets at utilizations from 0.5 to 1.2 run under FIFO, static
priority, EDF, and RM; reported: deadline-miss rate and mean response time
per (policy, utilization), plus the drop-late ablation.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.netsim.simulator import Simulator
from repro.scheduling.policies import (
    EdfPolicy,
    FifoPolicy,
    PriorityPolicy,
    RateMonotonicPolicy,
)
from repro.scheduling.scheduler import TaskScheduler
from repro.scheduling.task import ScheduledTask

PERIODS = [0.1, 0.2, 0.5, 1.0]
DURATION_S = 100.0

POLICIES = {
    "fifo": FifoPolicy,
    "priority": PriorityPolicy,
    "edf": EdfPolicy,
    "rm": RateMonotonicPolicy,
}


def run_one(policy_name: str, utilization: float, drop_late: bool = False) -> Dict[str, Any]:
    sim = Simulator()
    scheduler = TaskScheduler(sim, POLICIES[policy_name](), drop_late=drop_late)
    for i, period in enumerate(PERIODS):
        scheduler.submit(
            ScheduledTask(
                f"t{i}",
                cost_s=utilization * period / len(PERIODS),
                deadline_s=period,
                period_s=period,
                # Static priorities mimic RM ordering so the priority policy
                # has something sensible to work with.
                priority=len(PERIODS) - i,
            )
        )
    sim.run_until(DURATION_S)
    return {
        "policy": policy_name + ("+drop" if drop_late else ""),
        "utilization": utilization,
        "miss_rate": round(scheduler.miss_rate(), 4),
        "mean_response_s": round(scheduler.mean_response_time(), 4),
        "completed": scheduler.completed,
        "preemptions": scheduler.preemptions,
    }


def run(utilizations=(0.5, 0.7, 0.9, 1.0, 1.1, 1.2)) -> List[Dict[str, Any]]:
    """The E7 table: miss rates per policy across the utilization sweep."""
    rows: List[Dict[str, Any]] = []
    for utilization in utilizations:
        for policy_name in POLICIES:
            rows.append(run_one(policy_name, utilization))
    # Drop-late ablation at overload: wasted work vs abandoned activations.
    rows.append(run_one("edf", 1.2, drop_late=True))
    rows.append(run_one("fifo", 1.2, drop_late=True))
    return rows
