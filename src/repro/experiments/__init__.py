"""Experiment harnesses: one module per row of DESIGN.md's experiment index.

Each module exposes a ``run(...)`` function returning a list of result-row
dicts plus helpers to render them as the table/series the paper (or the
claim being tested) corresponds to. The ``benchmarks/`` suite wraps these
with pytest-benchmark; EXPERIMENTS.md records representative outputs.

Experiments:

==========  ==========================================  =======================
Id          Claim under test                            Module
==========  ==========================================  =======================
F1          Figure 1 bibliometrics                      exp_figure1
E2          discovery modes vs size/churn (§3.3)        exp_discovery
E3          spatial vs logical matching (§3.4)          exp_spatial
E4          graceful degradation (§3.4)                 exp_degradation
E5          routing & lifetime (§3.5, §4)               exp_routing
E6          transaction paradigms (§3.6)                exp_transactions
E7          scheduling policies (§3.7)                  exp_scheduling
E7b         handoff (§3.7)                              exp_handoff
E8          log-based recovery (§3.8)                   exp_recovery
E9          markup interoperability cost (§3.9)         exp_interop
E10         MiLAN lifetime vs baselines (§4)            exp_milan
E11         MiLAN plug-and-play adaptation (§4)         exp_adaptation
E12         network independence (§3.2)                 exp_netindep
==========  ==========================================  =======================
"""

from repro.experiments.common import format_table

__all__ = ["format_table"]
