"""E6 — transaction technologies head to head (Section 3.6).

Claim under test: "The chosen technology should not over-burden the
network, and should not prohibit the interaction between nodes, i.e., it
should provide asynchronous connections."

The same logical workload — N small data items from a producer node to a
consumer node — is run over each interaction paradigm on an identical
star network. Reported: completion time (virtual), bytes put on the air,
messages transmitted, and whether the producer ever blocks.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.netsim import topology
from repro.netsim.medium import IDEAL_RADIO
from repro.transactions.agents import AgentHost, MobileAgent
from repro.transactions.messaging import MessageBroker, MessagingClient
from repro.transactions.pubsub import PubSubBroker, PubSubClient
from repro.transactions.rpc import RpcEndpoint
from repro.transactions.sharedobjects import SharedObjectCache, SharedObjectHost
from repro.transactions.tuplespace import TupleSpaceClient, TupleSpaceServer
from repro.transport.simnet import SimFabric

N_ITEMS = 200
PAYLOAD = {"reading": 21.5, "unit": "C", "seq": 0}


def _network():
    network = topology.star(3, radius=40, radio_profile=IDEAL_RADIO)
    return network, SimFabric(network)


def _finish(network, done_check) -> float:
    time = 0.0
    while time < 300.0 and not done_check():
        network.sim.run_for(1.0)
        time += 1.0
    return network.sim.now()


def run_rpc() -> Dict[str, Any]:
    network, fabric = _network()
    received = []
    server = RpcEndpoint(fabric.endpoint("leaf0", "svc"))
    server.expose("push", lambda **item: received.append(item))
    client = RpcEndpoint(fabric.endpoint("leaf1", "svc"))
    for i in range(N_ITEMS):
        client.call(server.transport.local_address, "push", {**PAYLOAD, "seq": i})
    elapsed = _finish(network, lambda: len(received) >= N_ITEMS)
    return {"paradigm": "rpc(sync)", "delivered": len(received),
            "time_s": elapsed, "bytes_on_air": network.medium.bytes_transmitted,
            "messages": network.medium.transmissions, "producer_blocks": "yes"}


def run_rpc_oneway() -> Dict[str, Any]:
    network, fabric = _network()
    received = []
    server = RpcEndpoint(fabric.endpoint("leaf0", "svc"))
    server.expose("push", lambda **item: received.append(item))
    client = RpcEndpoint(fabric.endpoint("leaf1", "svc"))
    for i in range(N_ITEMS):
        client.notify(server.transport.local_address, "push", {**PAYLOAD, "seq": i})
    elapsed = _finish(network, lambda: len(received) >= N_ITEMS)
    return {"paradigm": "rpc(one-way)", "delivered": len(received),
            "time_s": elapsed, "bytes_on_air": network.medium.bytes_transmitted,
            "messages": network.medium.transmissions, "producer_blocks": "no"}


def run_messaging() -> Dict[str, Any]:
    network, fabric = _network()
    broker = MessageBroker(fabric.endpoint("hub", "mq"))
    received = []
    consumer = MessagingClient(fabric.endpoint("leaf0", "mq"),
                               broker.transport.local_address)
    consumer.subscribe("data", received.append)
    producer = MessagingClient(fabric.endpoint("leaf1", "mq"),
                               broker.transport.local_address)
    network.sim.run_for(1.0)
    for i in range(N_ITEMS):
        producer.put("data", {**PAYLOAD, "seq": i})
    elapsed = _finish(network, lambda: len(received) >= N_ITEMS)
    return {"paradigm": "message-queue", "delivered": len(received),
            "time_s": elapsed, "bytes_on_air": network.medium.bytes_transmitted,
            "messages": network.medium.transmissions, "producer_blocks": "no"}


def run_pubsub() -> Dict[str, Any]:
    network, fabric = _network()
    broker = PubSubBroker(fabric.endpoint("hub", "ps"))
    received = []
    subscriber = PubSubClient(fabric.endpoint("leaf0", "ps"),
                              broker.transport.local_address)
    subscriber.subscribe("data.#", lambda topic, event: received.append(event))
    publisher = PubSubClient(fabric.endpoint("leaf1", "ps"),
                             broker.transport.local_address)
    network.sim.run_for(1.0)
    for i in range(N_ITEMS):
        publisher.publish("data.readings", {**PAYLOAD, "seq": i})
    elapsed = _finish(network, lambda: len(received) >= N_ITEMS)
    return {"paradigm": "publish-subscribe", "delivered": len(received),
            "time_s": elapsed, "bytes_on_air": network.medium.bytes_transmitted,
            "messages": network.medium.transmissions, "producer_blocks": "no"}


def run_tuplespace() -> Dict[str, Any]:
    network, fabric = _network()
    space = TupleSpaceServer(fabric.endpoint("hub", "ts"))
    consumer = TupleSpaceClient(fabric.endpoint("leaf0", "ts"),
                                space.transport.local_address)
    producer = TupleSpaceClient(fabric.endpoint("leaf1", "ts"),
                                space.transport.local_address)
    received = []

    def take() -> None:
        consumer.in_("data", None).on_value(
            lambda value: (received.append(value), take())
        )

    take()
    for i in range(N_ITEMS):
        producer.out("data", {**PAYLOAD, "seq": i})
    elapsed = _finish(network, lambda: len(received) >= N_ITEMS)
    return {"paradigm": "tuple-space", "delivered": len(received),
            "time_s": elapsed, "bytes_on_air": network.medium.bytes_transmitted,
            "messages": network.medium.transmissions, "producer_blocks": "no"}


def run_sharedobjects() -> Dict[str, Any]:
    """Shared objects measured on their strength: repeated reads.

    One write then N_ITEMS reads from the consumer — cache hits keep the
    air silent, which is the point of the paradigm.
    """
    network, fabric = _network()
    host = SharedObjectHost(fabric.endpoint("hub", "so"))
    writer = SharedObjectCache(fabric.endpoint("leaf1", "so"),
                               host.transport.local_address)
    reader = SharedObjectCache(fabric.endpoint("leaf0", "so"),
                               host.transport.local_address)
    writer.write("data", PAYLOAD)
    network.sim.run_for(1.0)
    received = []

    def read_loop(i: int) -> None:
        if i >= N_ITEMS:
            return
        reader.read("data").on_value(
            lambda value: (received.append(value),
                           network.sim.schedule(0.001, read_loop, i + 1))
        )

    read_loop(0)
    elapsed = _finish(network, lambda: len(received) >= N_ITEMS)
    return {"paradigm": "shared-objects(reads)", "delivered": len(received),
            "time_s": elapsed, "bytes_on_air": network.medium.bytes_transmitted,
            "messages": network.medium.transmissions, "producer_blocks": "no"}


class _BatchCollector(MobileAgent):
    """Reads the supplier's value N_ITEMS times locally at the stop."""

    def visit(self, host) -> None:
        read = host.services["read"]
        self.state["items"] = [read(i) for i in range(N_ITEMS)]


def run_mobile_agent() -> Dict[str, Any]:
    """The agent moves to the data: the whole batch costs one round trip."""
    network, fabric = _network()
    supplier = AgentHost(
        fabric.endpoint("leaf0", "agents"),
        services={"read": lambda i: {**PAYLOAD, "seq": i}},
    )
    consumer = AgentHost(fabric.endpoint("leaf1", "agents"))
    supplier.register(_BatchCollector)
    consumer.register(_BatchCollector)
    from repro.transport.base import Address

    promise = consumer.dispatch(_BatchCollector(), [Address("leaf0", "agents")])
    elapsed = _finish(network, lambda: promise.fulfilled)
    delivered = len(promise.result().get("items", [])) if promise.fulfilled else 0
    return {"paradigm": "mobile-agent(batch)", "delivered": delivered,
            "time_s": elapsed, "bytes_on_air": network.medium.bytes_transmitted,
            "messages": network.medium.transmissions, "producer_blocks": "no"}


def run_streaming(playout_delays=(0.02, 0.1, 0.3, 0.6)) -> List[Dict[str, Any]]:
    """E6b — multimedia streams (§3.10): the jitter-buffer tradeoff.

    A 25 fps stream crosses a channel whose per-frame delay varies by up to
    150 ms. Sweeping the sink's playout delay shows latency buying playback
    continuity — §3.4's time-constraint story made concrete.
    """
    from repro.netsim.medium import RadioProfile
    from repro.transactions.streaming import StreamingSink, StreamingSource

    rows: List[Dict[str, Any]] = []
    for playout_delay in playout_delays:
        profile = RadioProfile("jittery", bandwidth_bps=11e6, range_m=100.0,
                               base_latency_s=0.001, contention_window_s=0.15)
        network = topology.star(2, radius=40, radio_profile=profile, seed=5)
        fabric = SimFabric(network)
        sink_transport = fabric.endpoint("leaf0", "media")
        sink = StreamingSink(sink_transport, frame_interval_s=0.04,
                             playout_delay_s=playout_delay)
        source = StreamingSource(fabric.endpoint("leaf1", "media"),
                                 sink_transport.local_address,
                                 frame_interval_s=0.04, total_frames=250)
        source.start()
        network.sim.run_until(250 * 0.04 + playout_delay + 3.0)
        rows.append(
            {
                "playout_delay_s": playout_delay,
                "continuity": round(sink.continuity(), 4),
                "glitches": sink.underruns + sink.late_drops,
                "mean_buffer_wait_s": round(sink.mean_buffer_wait_s(), 4),
            }
        )
    return rows


def run() -> List[Dict[str, Any]]:
    """The E6 table: identical workload, one row per paradigm."""
    return [
        run_rpc(),
        run_rpc_oneway(),
        run_messaging(),
        run_pubsub(),
        run_tuplespace(),
        run_sharedobjects(),
        run_mobile_agent(),
    ]
