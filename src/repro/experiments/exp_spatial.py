"""E3 — spatial QoS vs logical-only matching (Section 3.4).

Claim under test: "a user would like to print a file on the nearest and
'best matched printer.' Some matching algorithms only consider logical
location, which is not compatible with spatial QoS."

Many users at random positions query for a color printer; the harness
compares the matcher with and without spatial QoS on (a) the distance the
user must walk to the chosen printer and (b) whether requirements were
still met.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from repro.discovery.description import ServiceDescription
from repro.discovery.matching import AttributeConstraint, Matcher, Query
from repro.qos.spatial import SpatialPreference
from repro.qos.spec import ConsumerQoS, SupplierQoS
from repro.util.rng import split_rng

FLOOR = (120.0, 80.0)  # office floor, meters

PRINTERS = [
    # (id, x, y, color, ppm, reliability)
    ("p-lobby", 10.0, 10.0, "no", 40, 0.99),
    ("p-east-color", 100.0, 15.0, "yes", 25, 0.98),
    ("p-west-color", 15.0, 65.0, "yes", 22, 0.97),
    ("p-center-color", 60.0, 40.0, "yes", 18, 0.96),
    ("p-annex-color", 115.0, 75.0, "yes", 45, 0.99),
    ("p-flaky-color", 55.0, 35.0, "yes", 30, 0.55),
]


def _descriptions() -> List[ServiceDescription]:
    return [
        ServiceDescription(
            printer_id, "printer", f"{printer_id}:svc",
            attributes={"color": color, "ppm": str(ppm)},
            qos=SupplierQoS(reliability=reliability),
            position=(x, y),
        )
        for printer_id, x, y, color, ppm, reliability in PRINTERS
    ]


def run(n_users: int = 200, seed: int = 0) -> List[Dict[str, Any]]:
    """One row per matching mode, aggregated over users."""
    rng = split_rng(seed, "spatial-users")
    users = [(rng.uniform(0, FLOOR[0]), rng.uniform(0, FLOOR[1]))
             for _ in range(n_users)]
    descriptions = _descriptions()
    matcher = Matcher()
    constraints = (
        AttributeConstraint("color", "=", "yes"),
        AttributeConstraint("ppm", ">=", "15"),
    )

    modes = {
        "logical-only": lambda position: Query(
            "printer", constraints, consumer=ConsumerQoS(min_reliability=0.9),
        ),
        "spatial": lambda position: Query(
            "printer", constraints,
            consumer=ConsumerQoS(
                min_reliability=0.9,
                spatial=SpatialPreference(scale_m=40.0, weight=2.0),
            ),
            consumer_position=position,
        ),
        "spatial+cutoff-60m": lambda position: Query(
            "printer", constraints,
            consumer=ConsumerQoS(
                min_reliability=0.9,
                spatial=SpatialPreference(scale_m=40.0, weight=2.0,
                                          max_distance_m=60.0),
            ),
            consumer_position=position,
        ),
    }

    rows: List[Dict[str, Any]] = []
    for mode, make_query in modes.items():
        distances: List[float] = []
        satisfied = 0
        unmatched = 0
        for position in users:
            matches = matcher.match(descriptions, make_query(position))
            if not matches:
                unmatched += 1
                continue
            chosen = matches[0].description
            assert chosen.position is not None
            distance = math.hypot(position[0] - chosen.position[0],
                                  position[1] - chosen.position[1])
            distances.append(distance)
            if chosen.qos.reliability >= 0.9:
                satisfied += 1
        matched = len(distances)
        rows.append(
            {
                "mode": mode,
                "users": n_users,
                "matched": matched,
                "mean_walk_m": sum(distances) / matched if matched else 0.0,
                "p95_walk_m": (
                    sorted(distances)[int(0.95 * matched) - 1] if matched else 0.0
                ),
                "requirement_met": satisfied / matched if matched else 0.0,
                "unmatched": unmatched,
            }
        )
    return rows
