"""F1 — Figure 1: middleware references per year (Section 2).

Paper artifact: a bar chart of IEEE Xplore hits for "middleware" per year,
1989-2001, with the textual claims: first article 1993, 7 articles in 1994,
~170/year plateau, and positive correlation with the networks and
distributed-systems series.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.bibliometrics.corpus import YEARS
from repro.bibliometrics.figure1 import MIDDLEWARE_TARGET_SERIES, reproduce_figure1


def run(seed: int = 0, noise: float = 0.05) -> List[Dict[str, Any]]:
    """One row per year: target (digitized figure) vs reproduced count."""
    result = reproduce_figure1(seed=seed, noise=noise)
    rows: List[Dict[str, Any]] = []
    for year in YEARS:
        rows.append(
            {
                "year": year,
                "paper_figure": MIDDLEWARE_TARGET_SERIES.get(year, 0),
                "reproduced": result.series["middleware"].get(year, 0),
            }
        )
    return rows


def run_claims(seed: int = 0) -> List[Dict[str, Any]]:
    """The figure's headline claims, paper vs measured."""
    result = reproduce_figure1(seed=seed)
    return [
        {"claim": "first middleware article", "paper": "1993",
         "measured": str(result.first_middleware_year)},
        {"claim": "articles in 1994", "paper": "7",
         "measured": str(result.middleware_1994)},
        {"claim": "plateau 1999-2001", "paper": "~170/yr",
         "measured": f"{result.plateau_mean:.0f}/yr"},
        {"claim": "corr(mw, network)", "paper": "positive",
         "measured": f"{result.correlation_with_network:+.3f}"},
        {"claim": "corr(mw, dist-sys)", "paper": "positive",
         "measured": f"{result.correlation_with_distributed:+.3f}"},
    ]
