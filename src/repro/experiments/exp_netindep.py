"""E12 — network independence (Section 3.2).

Claim under test: "middleware intended to be flexible in a variety of
settings should function independent of the network stack."

The *identical* application code — a supplier exposing an RPC service, a
consumer discovering and calling it 100 times — runs over four transports:
the in-process fabric, a wireline star (Ethernet links), an 802.11 wireless
star, and a Bluetooth-profile star, the last two with the reliability layer
(and its retransmission-policy ablation). Reported: success rate, mean call
latency, and bytes on the wire/air. The application function never changes;
only the stack construction does — which is the claim.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.netsim import topology
from repro.netsim.link import ETHERNET_10M
from repro.netsim.medium import BLUETOOTH, RadioProfile, WIFI_80211
from repro.netsim.network import Network
from repro.transactions.rpc import RpcEndpoint
from repro.transport.base import Transport
from repro.transport.inmemory import InMemoryFabric
from repro.transport.reliable import ReliabilityParams, ReliableTransport
from repro.transport.simnet import SimFabric
from repro.util.geometry import Point

N_CALLS = 100


def _application(server_transport: Transport, client_transport: Transport,
                 pump: Callable[[], None], now: Callable[[], float]) -> Dict[str, Any]:
    """The network-independent part: same code for every stack."""
    server = RpcEndpoint(server_transport)
    server.expose("read", lambda seq: {"seq": seq, "value": 21.5})
    client = RpcEndpoint(client_transport, default_timeout_s=1.0)
    latencies: List[float] = []
    failures = [0]
    for i in range(N_CALLS):
        started = now()
        call = client.call(server_transport.local_address, "read", {"seq": i},
                           retries=5)
        call.on_settle(
            lambda settled, s=started: (
                latencies.append(now() - s)
                if settled.fulfilled
                else failures.__setitem__(0, failures[0] + 1)
            )
        )
    pump()
    return {
        "calls_ok": len(latencies),
        "calls_failed": failures[0],
        "mean_latency_ms": (
            round(1000 * sum(latencies) / len(latencies), 3) if latencies else 0.0
        ),
    }


def run_inmemory() -> Dict[str, Any]:
    fabric = InMemoryFabric(latency_s=0.0001)
    result = _application(
        fabric.endpoint("server", "svc"), fabric.endpoint("client", "svc"),
        fabric.run, fabric.sim.now,
    )
    return {"stack": "in-memory", **result, "bytes_on_wire": "n/a"}


def run_wireline() -> Dict[str, Any]:
    network = Network()
    network.add_node("server", position=Point(0, 0))
    network.add_node("client", position=Point(100000, 0))  # radio can't reach
    link = network.add_link("server", "client", ETHERNET_10M)
    fabric = SimFabric(network)
    result = _application(
        fabric.endpoint("server", "svc"), fabric.endpoint("client", "svc"),
        lambda: network.sim.run(max_events=5_000_000), network.sim.now,
    )
    return {"stack": "ethernet-10M", **result,
            "bytes_on_wire": link.transmissions}


def _run_wireless(profile: RadioProfile, params: ReliabilityParams,
                  label: str) -> Dict[str, Any]:
    network = topology.star(2, radius=min(8.0, profile.range_m / 2),
                            radio_profile=profile, seed=3)
    fabric = SimFabric(network)
    server_transport = ReliableTransport(fabric.endpoint("leaf0", "svc"), params)
    client_transport = ReliableTransport(fabric.endpoint("leaf1", "svc"), params)
    result = _application(
        server_transport, client_transport,
        lambda: network.sim.run(max_events=5_000_000), network.sim.now,
    )
    return {"stack": label, **result,
            "bytes_on_wire": network.medium.bytes_transmitted}


def run(
    retransmit_policies: Tuple[ReliabilityParams, ...] = (
        ReliabilityParams(ack_timeout_s=0.1, max_retries=5),
    ),
) -> List[Dict[str, Any]]:
    """The E12 table: the same application over four network stacks."""
    rows = [run_inmemory(), run_wireline()]
    for params in retransmit_policies:
        rows.append(_run_wireless(WIFI_80211, params, "802.11+reliable"))
        rows.append(_run_wireless(BLUETOOTH, params, "bluetooth+reliable"))
    return rows


def run_retransmit_ablation() -> List[Dict[str, Any]]:
    """Reliability-layer ablation on a deliberately lossy 802.11 channel."""
    lossy = RadioProfile("802.11-lossy", bandwidth_bps=11e6, range_m=100.0,
                         base_latency_s=0.001, loss_probability=0.2,
                         contention_window_s=0.002)
    policies = [
        ("no-retransmit", ReliabilityParams(ack_timeout_s=0.1, max_retries=0)),
        ("retries=2", ReliabilityParams(ack_timeout_s=0.1, max_retries=2)),
        ("retries=8", ReliabilityParams(ack_timeout_s=0.1, max_retries=8)),
        ("retries=8,backoff=1", ReliabilityParams(ack_timeout_s=0.1, max_retries=8,
                                                  backoff_factor=1.0)),
    ]
    rows = []
    for label, params in policies:
        row = _run_wireless(lossy, params, label)
        rows.append(row)
    return rows
