"""Scenarios: the serializable unit of simulation testing.

A :class:`Scenario` is a timed trace of workload and fault steps plus the
two seeds that close over all remaining nondeterminism (the network/fault
RNGs and the event-loop tie-breaker). Executing the same scenario twice
produces byte-identical results, which is what makes exploration findings
shrinkable and repro files replayable.

Steps carry only JSON scalars so a scenario round-trips through
``to_dict``/``from_dict`` losslessly — the repro-file format is just a
scenario plus the expected divergence signature.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Tuple

from repro.util.rng import split_rng

#: Virtual-time window during which scenario steps fire.
HORIZON_S = 12.0

#: Ledger accounts in the simtest world (mirrors the chaos deployment).
ACCOUNTS = ("acct0", "acct1", "acct2", "acct3")
INITIAL_BALANCE = 100

#: Shared-object keys and tuple kinds the workload cycles through.
SO_KEYS = ("cfg", "route", "limit")
TS_KINDS = ("job", "evt")

#: Nodes faults may crash (the monitor and server stay up so the oracles
#: always have a vantage point; partitions and loss still reach everyone).
CRASH_TARGETS = ("n0_1", "n1_0")

#: Partition shapes, chosen by index so steps stay JSON-scalar.
PARTITION_GROUPS = (
    ("n1_1",),
    ("n0_1",),
    ("n1_0", "n1_1"),
)

#: op name -> relative weight during generation.
_WORKLOAD_WEIGHTS = [
    ("bulk", 22),
    ("transfer", 12),
    ("balance", 6),
    ("so_write", 8),
    ("so_read", 8),
    ("ts_out", 6),
    ("ts_inp", 4),
    ("ts_rdp", 3),
    ("ts_in", 3),
    ("lookup", 8),
    ("provide", 5),
    ("withdraw", 3),
    ("milan", 5),
]
_FAULT_WEIGHTS = [
    ("crash", 5),
    ("blip", 2),
    ("partition", 4),
    ("loss", 5),
    ("degrade", 3),
    ("tamper", 4),
]


@dataclass(frozen=True)
class Step:
    """One timed action; ``args`` holds JSON scalars only."""

    at: float
    op: str
    args: Tuple[Any, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"at": self.at, "op": self.op, "args": list(self.args)}

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "Step":
        return Step(float(raw["at"]), str(raw["op"]), tuple(raw["args"]))


@dataclass(frozen=True)
class Scenario:
    """A complete, replayable run description."""

    seed: int
    tie_seed: int
    steps: Tuple[Step, ...] = ()
    horizon_s: float = HORIZON_S

    def with_steps(self, steps: List[Step]) -> "Scenario":
        return replace(self, steps=tuple(steps))

    # ------------------------------------------------------------ wire form

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "tie_seed": self.tie_seed,
            "horizon_s": self.horizon_s,
            "steps": [s.to_dict() for s in self.steps],
        }

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "Scenario":
        return Scenario(
            seed=int(raw["seed"]),
            tie_seed=int(raw["tie_seed"]),
            horizon_s=float(raw.get("horizon_s", HORIZON_S)),
            steps=tuple(Step.from_dict(s) for s in raw["steps"]),
        )


def _pick(rng, weighted: List[Tuple[str, int]]) -> str:
    total = sum(w for _op, w in weighted)
    roll = rng.uniform(0.0, total)
    for op, weight in weighted:
        roll -= weight
        if roll <= 0.0:
            return op
    return weighted[-1][0]


def generate_scenario(seed: int, tie_seed: int, n_steps: int = 32,
                      fault_fraction: float = 0.25) -> Scenario:
    """Generate a scenario as a pure function of its arguments.

    Identifiers that must be unique (bulk indices, txids, extra-service
    indices) are assigned from the generation counter, so they survive step
    deletion during shrinking without renumbering.
    """
    rng = split_rng(seed, "simtest.scenario")
    steps: List[Step] = []
    next_bulk = 0
    next_extra = 0
    provided: List[int] = []
    for i in range(n_steps):
        at = round(rng.uniform(0.5, HORIZON_S), 3)
        if rng.random() < fault_fraction:
            op = _pick(rng, _FAULT_WEIGHTS)
            if op == "crash":
                args: Tuple[Any, ...] = (
                    rng.choice(CRASH_TARGETS), round(rng.uniform(0.3, 2.5), 3),
                )
            elif op == "blip":
                args = (rng.choice(CRASH_TARGETS),)
            elif op == "partition":
                args = (
                    rng.randrange(len(PARTITION_GROUPS)),
                    round(rng.uniform(0.5, 3.0), 3),
                )
            elif op == "loss":
                args = (round(rng.uniform(0.5, 2.5), 3),
                        round(rng.uniform(0.2, 0.9), 3))
            elif op == "degrade":
                args = (round(rng.uniform(0.5, 2.5), 3),
                        round(rng.uniform(0.05, 0.4), 3))
            else:  # tamper
                args = (round(rng.uniform(0.5, 2.5), 3),
                        round(rng.uniform(0.05, 0.3), 3))
        else:
            op = _pick(rng, _WORKLOAD_WEIGHTS)
            if op == "withdraw" and not provided:
                op = "provide"
            if op == "bulk":
                args = (next_bulk,)
                next_bulk += 1
            elif op == "transfer":
                src, dst = rng.sample(ACCOUNTS, 2)
                args = (f"t{i}", src, dst, rng.randint(1, 20),
                        rng.choice((0, 1)))
            elif op == "balance":
                args = (rng.choice(ACCOUNTS), rng.choice((0, 1)))
            elif op == "so_write":
                args = (rng.choice(SO_KEYS), rng.randint(0, 999),
                        rng.choice((0, 1)))
            elif op == "so_read":
                args = (rng.choice(SO_KEYS), rng.choice((0, 1)))
            elif op == "ts_out":
                args = (rng.choice(TS_KINDS), rng.randint(0, 99),
                        rng.choice((0, 1)))
            elif op in ("ts_inp", "ts_rdp", "ts_in"):
                args = (rng.choice(TS_KINDS), rng.choice((0, 1)))
            elif op == "lookup":
                args = (rng.choice(("ledger", "extra")),)
            elif op == "provide":
                args = (next_extra,)
                provided.append(next_extra)
                next_extra += 1
            elif op == "withdraw":
                args = (rng.choice(provided),)
            else:  # milan
                args = (rng.randrange(1 << 16),)
        steps.append(Step(at, op, args))
    steps.sort(key=lambda s: s.at)
    return Scenario(seed=seed, tie_seed=tie_seed, steps=tuple(steps))
