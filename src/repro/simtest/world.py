"""The simtest world: a fixed deployment that executes one scenario.

Four nodes on an ideal (lossless, constant-latency) radio, so the *only*
nondeterminism in a run is what the scenario injects — faults from the
PR-4 vocabulary and seeded event-loop tie-breaking. Roles:

* ``n0_0`` (monitor): issues discovery lookups (cache disabled, so replies
  come from providers' authoritative state), RPC transfers, shared-object
  and tuple-space operations; receives the reliable bulk stream.
* ``n0_1`` (helper): second client for every subsystem; provides the
  dynamic ``extra*`` services; a crash/blip target.
* ``n1_0`` (spare): a crash/blip target that keeps floods interesting.
* ``n1_1`` (server): the transactional ledger, the shared-object host
  (write-through-acks mode — the linearizable protocol), the tuple-space
  server, and the bulk-stream sender. Never crashed, so end-of-run
  accounting is always meaningful.

The bulk stream runs reliable-over-secure, and frame tampering is scoped
to the bulk port: a tampered frame fails authentication and is dropped,
so to the delivery oracle corruption is indistinguishable from loss — the
model stays sound while the fault vocabulary stays rich. Discovery, RPC,
shared-object, and tuple-space traffic see crashes, partitions, loss, and
latency, whose effects the respective oracles and the linearizability
checker judge.

Every workload operation is recorded as an interval (invoke/response) and
fed to the Wing–Gong checker at the end of the run, split per independent
object (each shared-object key, each tuple kind, the ledger).
"""

from __future__ import annotations

import struct
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.discovery.matching import Query
from repro.netsim import topology
from repro.netsim.failures import FailureInjector
from repro.netsim.medium import IDEAL_RADIO
from repro.obs.metrics import get_registry
from repro.simtest.linearizability import (
    CheckAborted,
    LedgerModel,
    Op,
    RegisterModel,
    TupleSpaceModel,
    check_linearizable,
)
from repro.simtest.oracles import (
    DeliveryOracle,
    DiscoveryOracle,
    Divergence,
    LedgerOracle,
    MilanOracle,
)
from repro.simtest.scenario import (
    ACCOUNTS,
    INITIAL_BALANCE,
    PARTITION_GROUPS,
    Scenario,
)
from repro.transactions.sharedobjects import SharedObjectCache, SharedObjectHost
from repro.transactions.tuplespace import TupleSpaceClient, TupleSpaceServer
from repro.transport.base import Address
from repro.transport.reliable import ReliabilityParams, ReliableTransport
from repro.transport.secure import SecureTransport
from repro.transport.simnet import SimFabric
from repro.middleware import MiddlewareNode
from repro.util.rng import split_rng

MONITOR = "n0_0"
HELPER = "n0_1"
SPARE = "n1_0"
SERVER = "n1_1"

_BULK_PORT = "bulk"
_SO_PORT = "so"
_TS_PORT = "ts"
_KEY = b"simtest-shared-key"

_INDEX = struct.Struct(">I")

#: Bulk-stream reliability: a small window and retry budget so scenarios
#: exercise overflow and give-up paths; the full backoff chain is
#: 0.2+0.4+0.8+1.6+3.2 = 6.2 s, which the quiesce margin must cover.
_BULK_PARAMS = ReliabilityParams(ack_timeout_s=0.2, max_retries=4,
                                 backoff_factor=2.0, recv_window=8)
_BULK_CHAIN_S = sum(
    _BULK_PARAMS.timeout_for_attempt(a)
    for a in range(_BULK_PARAMS.max_retries + 1)
)

_RPC_TIMEOUT_S = 1.0
_RPC_RETRIES = 2

#: Padding appended to bulk payloads after the 4-byte index.
_BULK_PADDING = b"x" * 12


class SimLedger:
    """The idempotent transfer ledger (the chaos campaign's, locally owned
    so :mod:`repro.simtest.plants` can break it without touching chaos)."""

    def __init__(self) -> None:
        self.balances: Dict[str, int] = {a: INITIAL_BALANCE for a in ACCOUNTS}
        self.applied: set = set()

    def transfer(self, txid: str, src: str, dst: str, amount: int) -> bool:
        if txid in self.applied:
            return True
        self.applied.add(txid)
        self.balances[src] -= amount
        self.balances[dst] += amount
        return True

    def ping(self) -> str:
        return "pong"


@dataclass
class RunResult:
    """Everything a run produced; a pure function of the scenario."""

    divergences: List[Divergence]
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def signatures(self) -> List[Tuple[str, str]]:
        return [d.signature for d in self.divergences]


class _OpRecord:
    __slots__ = ("obj", "client", "op", "args", "invoke", "response", "result")

    def __init__(self, obj: Tuple[str, ...], client: str, op: str,
                 args: Tuple[Any, ...], invoke: float):
        self.obj = obj
        self.client = client
        self.op = op
        self.args = args
        self.invoke = invoke
        self.response: Optional[float] = None
        self.result: Any = None


class SimWorld:
    """Builds the deployment for one scenario and runs it to completion."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        get_registry().reset()

        self.network = topology.grid(
            2, 2, spacing=60.0, radio_profile=IDEAL_RADIO, seed=scenario.seed
        )
        self.sim = self.network.sim
        self.sim.set_tie_breaker(
            split_rng(scenario.tie_seed, "simtest.ties").random
        )
        self.fabric = SimFabric(self.network)
        self.injector = FailureInjector(self.network, seed=scenario.seed)

        self.delivery = DeliveryOracle(_BULK_PARAMS.recv_window)
        self.discovery = DiscoveryOracle()
        self.ledger_oracle = LedgerOracle(
            {a: INITIAL_BALANCE for a in ACCOUNTS}
        )
        self.milan = MilanOracle()
        self.divergences: List[Divergence] = []
        self._history: List[_OpRecord] = []
        self.stats: Dict[str, int] = defaultdict(int)

        # --- middleware nodes -------------------------------------------
        self.nodes: Dict[str, MiddlewareNode] = {
            node_id: MiddlewareNode(
                self.fabric, node_id, discovery_ttl=2, collect_window_s=0.5
            )
            for node_id in (MONITOR, HELPER, SPARE, SERVER)
        }
        self.nodes[MONITOR].discovery.use_cache = False
        self._clients = (self.nodes[MONITOR], self.nodes[HELPER])

        # --- ledger service ---------------------------------------------
        self.ledger = SimLedger()
        self.nodes[SERVER].provide(
            "ledger", "ledger",
            {
                "transfer": self._serve_transfer,
                "ping": self.ledger.ping,
                "balance": lambda acct: self.ledger.balances[acct],
            },
        )
        self.discovery.note_provided(0.0, "ledger", "ledger", SERVER)
        self._server_svc = f"{SERVER}:svc"

        # --- reliable-over-secure bulk stream ---------------------------
        self._bulk_dst = Address(MONITOR, _BULK_PORT)
        secure_recv = SecureTransport(
            self.fabric.endpoint(MONITOR, _BULK_PORT), _KEY
        )
        self.bulk_receiver = ReliableTransport(secure_recv, _BULK_PARAMS)
        self.bulk_receiver.set_receiver(self._on_bulk_payload)
        inner_on_frame = self.bulk_receiver._on_frame

        def checked_on_frame(source: Address, frame: bytes) -> None:
            before = len(self.delivery.delivered)
            inner_on_frame(source, frame)
            self.delivery.check_frame(
                self.sim.now(), source, frame, self.bulk_receiver, before
            )

        secure_recv.set_receiver(checked_on_frame)
        self.bulk_sender = ReliableTransport(
            SecureTransport(self.fabric.endpoint(SERVER, _BULK_PORT), _KEY),
            _BULK_PARAMS,
            on_give_up=lambda _dest, payload: self.delivery.note_gave_up(payload),
        )

        # --- shared objects (linearizable mode) and tuple space ---------
        self.so_host = SharedObjectHost(
            self.fabric.endpoint(SERVER, _SO_PORT), write_through_acks=True
        )
        self.so_caches = tuple(
            SharedObjectCache(
                self.fabric.endpoint(node_id, _SO_PORT),
                Address(SERVER, _SO_PORT),
            )
            for node_id in (MONITOR, HELPER)
        )
        self.ts_server = TupleSpaceServer(self.fabric.endpoint(SERVER, _TS_PORT))
        self.ts_clients = tuple(
            TupleSpaceClient(
                self.fabric.endpoint(node_id, _TS_PORT),
                Address(SERVER, _TS_PORT),
            )
            for node_id in (MONITOR, HELPER)
        )

        # --- schedule the scenario --------------------------------------
        heal_by = scenario.horizon_s
        for step in scenario.steps:
            if step.op == "crash":
                node, downtime = step.args
                self.injector.crash_and_recover(node, step.at, downtime)
                self.discovery.note_fault(step.at, step.at + downtime + 0.05,
                                          (node,))
                heal_by = max(heal_by, step.at + downtime)
            elif step.op == "blip":
                self.injector.crash_and_recover(step.args[0], step.at, 0.0)
                self.discovery.note_fault(step.at, step.at + 0.05,
                                          (step.args[0],))
            elif step.op == "partition":
                group_index, duration = step.args
                self.injector.partition_at(
                    step.at, PARTITION_GROUPS[group_index], duration
                )
                self.discovery.note_fault(step.at, step.at + duration + 0.05)
                heal_by = max(heal_by, step.at + duration)
            elif step.op == "loss":
                duration, extra_loss = step.args
                self.injector.loss_burst_at(step.at, duration, extra_loss)
                self.discovery.note_fault(step.at, step.at + duration + 0.05)
                heal_by = max(heal_by, step.at + duration)
            elif step.op == "degrade":
                duration, extra_latency = step.args
                self.injector.degrade_at(step.at, duration,
                                         extra_latency_s=extra_latency)
                self.discovery.note_fault(
                    step.at, step.at + duration + extra_latency + 0.05
                )
                heal_by = max(heal_by, step.at + duration + extra_latency)
            elif step.op == "tamper":
                duration, probability = step.args
                self.injector.corrupt_frames_at(
                    step.at, duration, probability, only_ports=(_BULK_PORT,)
                )
                heal_by = max(heal_by, step.at + duration)
            else:
                self.sim.schedule_at(step.at, self._exec_step, step)

        # --- epilogue: post-heal convergence probes and quiesce ----------
        probe_at = max(scenario.horizon_s, heal_by) + 0.3
        self.sim.schedule_at(probe_at, self._issue_lookup, "ledger", True)
        self.sim.schedule_at(probe_at, self._issue_lookup, "extra", True)
        self.sim.schedule_at(probe_at, self._final_ping)
        self.end_s = max(
            scenario.horizon_s + _BULK_CHAIN_S + 0.4,
            probe_at + _RPC_TIMEOUT_S * (_RPC_RETRIES + 1) + 0.6,
        )

    # ------------------------------------------------------------- recording

    def _record(self, obj: Tuple[str, ...], client: str, op: str,
                args: Tuple[Any, ...], promise: Any) -> _OpRecord:
        record = _OpRecord(obj, client, op, args, self.sim.now())
        self._history.append(record)

        def settle(settled: Any) -> None:
            if settled.fulfilled:
                record.response = self.sim.now()
                record.result = settled.result()

        promise.on_settle(settle)
        return record

    # ------------------------------------------------------------- workload

    def _exec_step(self, step: Any) -> None:
        op, args = step.op, step.args
        if op == "bulk":
            index = args[0]
            self.delivery.note_sent(index)
            self.stats["bulk_sent"] += 1
            self.bulk_sender.send(
                self._bulk_dst, _INDEX.pack(index) + _BULK_PADDING
            )
        elif op == "transfer":
            txid, src, dst, amount, client = args
            promise = self._clients[client].rpc.call(
                Address.parse(self._server_svc), "transfer",
                {"txid": txid, "src": src, "dst": dst, "amount": amount},
                timeout_s=_RPC_TIMEOUT_S, retries=_RPC_RETRIES,
            )
            self._record(("ledger",), f"c{client}", "transfer",
                         (txid, src, dst, amount), promise)

            def note_acked(settled: Any, txid: str = txid) -> None:
                if settled.fulfilled:
                    self.ledger_oracle.note_acked(txid)

            promise.on_settle(note_acked)
        elif op == "balance":
            acct, client = args
            promise = self._clients[client].rpc.call(
                Address.parse(self._server_svc), "balance", {"acct": acct},
                timeout_s=_RPC_TIMEOUT_S, retries=_RPC_RETRIES,
            )
            self._record(("ledger",), f"c{client}", "balance", (acct,), promise)
        elif op == "lookup":
            self._issue_lookup(args[0], False)
        elif op == "provide":
            service_id = f"extra{args[0]}"
            self.nodes[HELPER].provide(service_id, "extra", {},
                                       attributes={"idx": str(args[0])})
            self.discovery.note_provided(self.sim.now(), service_id, "extra",
                                         HELPER)
        elif op == "withdraw":
            service_id = f"extra{args[0]}"
            self.nodes[HELPER].withdraw(service_id)
            self.discovery.note_withdrawn(self.sim.now(), service_id)
        elif op == "so_write":
            key, value, client = args
            self.stats["so_ops"] += 1
            promise = self.so_caches[client].write(key, value)
            self._record(("so", key), f"c{client}", "write", (value,), promise)
        elif op == "so_read":
            key, client = args
            self.stats["so_ops"] += 1
            promise = self.so_caches[client].read(key)
            self._record(("so", key), f"c{client}", "read", (), promise)
        elif op == "ts_out":
            kind, value, client = args
            self.stats["ts_ops"] += 1
            promise = self.ts_clients[client].out(kind, value, confirm=True)
            self._record(("ts", kind), f"c{client}", "out", (kind, value),
                         promise)
        elif op in ("ts_inp", "ts_rdp", "ts_in"):
            kind, client = args
            self.stats["ts_ops"] += 1
            ts = self.ts_clients[client]
            if op == "ts_inp":
                promise = ts.inp(kind, None)
            elif op == "ts_rdp":
                promise = ts.rdp(kind, None)
            else:
                promise = ts.in_(kind, None)
            self._record(("ts", kind), f"c{client}", op[3:], (), promise)
        elif op == "milan":
            self.milan.check_fleet(self.sim.now(), args[0])
            self.stats["milan_checked"] += 1
        else:
            raise ValueError(f"unknown scenario op {op!r}")

    def _serve_transfer(self, txid: str, src: str, dst: str,
                        amount: int) -> bool:
        result = self.ledger.transfer(txid, src, dst, amount)
        self.ledger_oracle.apply_transfer(
            self.sim.now(), txid, src, dst, amount, self.ledger
        )
        return result

    def _on_bulk_payload(self, _source: Address, payload: bytes) -> None:
        self.stats["bulk_delivered"] += 1
        self.delivery.note_delivered(self.sim.now(), payload)

    def _issue_lookup(self, service_type: str, exact: bool) -> None:
        issued = self.sim.now()
        self.stats["lookups"] += 1
        promise = self.nodes[MONITOR].find(
            Query(service_type, max_results=64)
        )

        def settle(settled: Any) -> None:
            results = (
                [d.service_id for d in settled.result()]
                if settled.fulfilled else []
            )
            self.discovery.check_lookup(issued, self.sim.now(), service_type,
                                        results, exact=exact)

        promise.on_settle(settle)

    def _final_ping(self) -> None:
        promise = self.nodes[MONITOR].rpc.call(
            Address.parse(self._server_svc), "ping", {},
            timeout_s=_RPC_TIMEOUT_S, retries=_RPC_RETRIES,
        )
        self._record(("ledger",), "c0", "ping", (), promise)

        def settle(settled: Any) -> None:
            if not settled.fulfilled:
                self.divergences.append(Divergence(
                    "reconvergence", "rpc-failed", self.sim.now(),
                    "post-heal ping to the ledger did not complete",
                ))

        promise.on_settle(settle)

    # --------------------------------------------------------------- running

    def run(self) -> RunResult:
        self.sim.run_until(self.end_s)
        now = self.sim.now()
        self.delivery.finish(now, self.bulk_sender)
        self.ledger_oracle.finish(now, self.ledger)
        self._check_linearizability(now)

        divergences = sorted(
            self.delivery.divergences
            + self.discovery.divergences
            + self.ledger_oracle.divergences
            + self.milan.divergences
            + self.divergences,
            key=lambda d: (d.at, d.oracle, d.kind),
        )
        self.stats["events"] = self.sim.events_processed
        self.stats["bulk_gave_up"] = len(self.delivery.gave_up)
        self.stats["transfers_acked"] = len(self.ledger_oracle.acked)
        self.stats["milan_checked"] = self.milan.checked
        return RunResult(divergences, dict(self.stats))

    def _check_linearizability(self, now: float) -> None:
        groups: Dict[Tuple[str, ...], List[Op]] = defaultdict(list)
        for record in self._history:
            groups[record.obj].append(Op(
                client=record.client, op=record.op, args=record.args,
                invoke=record.invoke, response=record.response,
                result=record.result,
            ))
        for obj, ops in sorted(groups.items()):
            if obj[0] == "so":
                model: Any = RegisterModel()
            elif obj[0] == "ts":
                model = TupleSpaceModel()
            else:
                model = LedgerModel({a: INITIAL_BALANCE for a in ACCOUNTS})
            self.stats["lin_objects"] += 1
            try:
                verdict = check_linearizable(ops, model)
            except CheckAborted:
                self.stats["lin_aborted"] += 1
                continue
            if verdict is not None:
                self.divergences.append(Divergence(
                    f"linearizability-{obj[0]}", "non-linearizable", now,
                    f"object {obj}: {verdict}",
                ))


def execute_scenario(scenario: Scenario,
                     plant: Optional[str] = None) -> RunResult:
    """Run one scenario (optionally with a planted bug) to a result."""
    if plant is None:
        return SimWorld(scenario).run()
    from repro.simtest.plants import planted

    with planted(plant):
        return SimWorld(scenario).run()
