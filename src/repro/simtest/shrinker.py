"""Trace minimization: shrink a diverging scenario to a minimal repro.

Delta-debugging over the scenario's step list: greedy chunked deletion
(halving chunk sizes, ddmin-style) interleaved with adjacent-pair
reorderings (swapping two steps' times), repeated to a fixpoint or until
the replay budget runs out. A candidate counts as still-failing when
replaying it reproduces the *same* ``(oracle, kind)`` divergence signature
— deterministic replay is what makes the greedy loop sound.

The result is written as a repro file: JSON holding the scenario, the
plant (if any), and the expected signature. ``python -m repro.simtest
repro <file>`` replays it and reports whether the divergence still
reproduces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.simtest.scenario import Scenario, Step
from repro.simtest.world import execute_scenario

REPRO_FORMAT = "repro.simtest/1"


@dataclass
class ShrinkResult:
    scenario: Scenario
    signature: Tuple[str, str]
    replays: int
    initial_steps: int

    @property
    def steps(self) -> int:
        return len(self.scenario.steps)


def _reproduces(scenario: Scenario, plant: Optional[str],
                signature: Tuple[str, str]) -> bool:
    return signature in execute_scenario(scenario, plant).signatures()


def _sorted_steps(steps: List[Step]) -> List[Step]:
    return sorted(steps, key=lambda s: s.at)


def shrink(
    scenario: Scenario,
    signature: Tuple[str, str],
    plant: Optional[str] = None,
    max_replays: int = 400,
) -> ShrinkResult:
    """Minimize ``scenario`` while it keeps reproducing ``signature``."""
    replays = 0
    current = list(scenario.steps)

    def attempt(steps: List[Step]) -> bool:
        nonlocal replays, current
        if replays >= max_replays:
            return False
        replays += 1
        candidate = scenario.with_steps(_sorted_steps(steps))
        if _reproduces(candidate, plant, signature):
            current = list(candidate.steps)
            return True
        return False

    progress = True
    while progress and replays < max_replays:
        progress = False
        # Chunked deletion, halving chunk sizes (ddmin).
        chunk = max(len(current) // 2, 1)
        while chunk >= 1:
            index = 0
            while index < len(current):
                if attempt(current[:index] + current[index + chunk:]):
                    progress = True
                else:
                    index += chunk
                if replays >= max_replays:
                    break
            chunk //= 2
        # Adjacent reorder: swap two steps' times, keep the reorder only if
        # it unlocks a deletion the straight pass could not make.
        index = 0
        while index + 1 < len(current) and replays < max_replays:
            first, second = current[index], current[index + 1]
            swapped = (
                current[:index]
                + [Step(second.at, first.op, first.args),
                   Step(first.at, second.op, second.args)]
                + current[index + 2:]
            )
            before = list(current)
            if attempt(swapped):
                if attempt(current[:index] + current[index + 1:]) or attempt(
                    current[:index + 1] + current[index + 2:]
                ):
                    progress = True
                else:
                    current = before  # reorder alone buys nothing: revert
            index += 1
    return ShrinkResult(
        scenario=scenario.with_steps(current),
        signature=signature,
        replays=replays,
        initial_steps=len(scenario.steps),
    )


# ------------------------------------------------------------- repro files


def write_repro(path: str, scenario: Scenario, signature: Tuple[str, str],
                plant: Optional[str] = None,
                detail: Optional[str] = None) -> None:
    payload: Dict[str, Any] = {
        "format": REPRO_FORMAT,
        "plant": plant,
        "signature": list(signature),
        "detail": detail,
        "scenario": scenario.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_repro(path: str) -> Tuple[Scenario, Tuple[str, str], Optional[str]]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path}: not a {REPRO_FORMAT} repro file "
            f"(format={payload.get('format')!r})"
        )
    signature = tuple(payload["signature"])
    if len(signature) != 2:
        raise ValueError(f"{path}: malformed signature {signature!r}")
    return (
        Scenario.from_dict(payload["scenario"]),
        (signature[0], signature[1]),
        payload.get("plant"),
    )


def replay_repro(path: str) -> Tuple[bool, List[Tuple[str, str]]]:
    """Replay a repro file; returns (reproduced, observed signatures)."""
    scenario, signature, plant = load_repro(path)
    result = execute_scenario(scenario, plant)
    observed = result.signatures()
    return signature in observed, observed
