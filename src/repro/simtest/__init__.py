"""Deterministic simulation testing in the FoundationDB style.

Every run is a pure function of a :class:`~repro.simtest.scenario.Scenario`
(itself a pure function of an integer seed): the workload, the fault
schedule, and even the event-loop tie-breaking are all derived from seeds,
so any execution — including one found by random exploration — can be
replayed bit-for-bit from a few integers.

The pieces:

* :mod:`repro.simtest.scenario` — the serializable trace of workload and
  fault steps a run executes.
* :mod:`repro.simtest.world` — a small fixed deployment (4 nodes over an
  ideal radio, so the only nondeterminism is injected) that executes a
  scenario with every oracle attached.
* :mod:`repro.simtest.oracles` — abstract reference models (reliable
  delivery, discovery convergence, ledger atomicity, MiLAN feasible sets)
  stepped in lockstep with the implementation.
* :mod:`repro.simtest.linearizability` — a Wing–Gong checker run over the
  recorded shared-object, tuple-space, and ledger histories.
* :mod:`repro.simtest.explorer` — drives many short randomized executions,
  perturbing schedules and injecting faults, until a divergence appears or
  the budget runs out.
* :mod:`repro.simtest.shrinker` — minimizes a diverging scenario by greedy
  deletion/reordering and emits a replayable repro file.
* :mod:`repro.simtest.plants` — deliberately-broken variants used to prove
  the harness can catch (and shrink) real bugs.

CLI: ``python -m repro.simtest run --budget 500 --seed 0`` explores;
``python -m repro.simtest repro <file>`` replays a minimized repro.
"""

from repro.simtest.explorer import ExplorationReport, explore
from repro.simtest.linearizability import Op, check_linearizable
from repro.simtest.oracles import Divergence
from repro.simtest.scenario import Scenario, Step, generate_scenario
from repro.simtest.shrinker import load_repro, shrink, write_repro
from repro.simtest.world import RunResult, execute_scenario

__all__ = [
    "Divergence",
    "ExplorationReport",
    "Op",
    "RunResult",
    "Scenario",
    "Step",
    "check_linearizable",
    "execute_scenario",
    "explore",
    "generate_scenario",
    "load_repro",
    "shrink",
    "write_repro",
]
