"""Reference-model oracles stepped in lockstep with the implementation.

Each oracle keeps a small abstract state machine — the *specification* of a
subsystem — and compares it against the real component's state after every
relevant event. A mismatch becomes a :class:`Divergence` carrying a stable
``(oracle, kind)`` signature the shrinker can match candidate traces
against.

The oracles here are deliberately pure python-over-dicts: the point is that
they are simple enough to audit by eye, the way
``feasibility_reference`` is for the bitmask search.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.feasibility import minimal_feasible_sets
from repro.core.feasibility_reference import minimal_feasible_sets_reference
from repro.core.sensors import SensorInfo
from repro.util.rng import split_rng

_SEQ = struct.Struct(">Q")
_INDEX = struct.Struct(">I")


@dataclass(frozen=True)
class Divergence:
    """One implementation-vs-model disagreement."""

    oracle: str
    kind: str
    at: float
    detail: str

    @property
    def signature(self) -> Tuple[str, str]:
        return (self.oracle, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "kind": self.kind, "at": self.at,
                "detail": self.detail}


# ----------------------------------------------------------------- delivery


class _PeerModel:
    """The abstract watermark + window machine from the reliable spec."""

    __slots__ = ("watermark", "window")

    def __init__(self) -> None:
        self.watermark = 0
        self.window: Set[int] = set()

    def step(self, seq: int, recv_window: int) -> bool:
        """Apply one DATA frame; returns whether it should deliver."""
        if seq <= self.watermark or seq in self.window:
            return False
        if seq > self.watermark + recv_window:
            return False
        self.window.add(seq)
        while self.watermark + 1 in self.window:
            self.watermark += 1
            self.window.discard(self.watermark)
        return True


class DeliveryOracle:
    """Lockstep model of reliable-transport delivery on the bulk stream.

    The harness wraps the receiving :class:`ReliableTransport`'s inner
    receiver: after every frame the model is stepped with the same frame
    and the receiver's per-peer dedup state (watermark and out-of-order
    window) must match the model's exactly, and a delivery must have
    happened iff the model says so. End-of-run accounting closes the loop:
    every sent message was delivered or given up, nothing was delivered
    twice, nothing undelivered is still pending.
    """

    def __init__(self, recv_window: int):
        self.recv_window = recv_window
        self.divergences: List[Divergence] = []
        self.sent: Set[int] = set()
        self.delivered: List[int] = []
        self.delivered_set: Set[int] = set()
        self.gave_up: Set[int] = set()
        self._models: Dict[Any, _PeerModel] = {}

    def note_sent(self, index: int) -> None:
        self.sent.add(index)

    def note_gave_up(self, payload: bytes) -> None:
        if len(payload) >= _INDEX.size:
            self.gave_up.add(_INDEX.unpack_from(payload)[0])

    def note_delivered(self, now: float, payload: bytes) -> None:
        index = _INDEX.unpack_from(payload)[0]
        if index not in self.sent:
            self._diverge(now, "phantom-delivery", f"index {index} never sent")
        if index in self.delivered_set:
            self._diverge(now, "duplicate-delivery", f"index {index}")
        self.delivered_set.add(index)
        self.delivered.append(index)

    def check_frame(self, now: float, source: Any, frame: bytes,
                    receiver: Any, deliveries_before: int) -> None:
        """Compare model and implementation after one inbound frame."""
        if len(frame) < 1 + _SEQ.size or frame[:1] != b"D":
            return
        seq = _SEQ.unpack_from(frame, 1)[0]
        if seq == 0:
            return  # broadcast frames are out of scope on the bulk stream
        model = self._models.setdefault(source, _PeerModel())
        should_deliver = model.step(seq, self.recv_window)
        did_deliver = len(self.delivered) > deliveries_before
        if did_deliver != should_deliver:
            self._diverge(
                now, "delivery-mismatch",
                f"seq {seq}: model says deliver={should_deliver}, "
                f"implementation delivered={did_deliver}",
            )
        state = receiver._recv.get(source)
        real = (state.watermark, set(state.window)) if state else (0, set())
        if real != (model.watermark, model.window):
            self._diverge(
                now, "state-mismatch",
                f"seq {seq}: model (wm={model.watermark}, "
                f"window={sorted(model.window)}) vs implementation "
                f"(wm={real[0]}, window={sorted(real[1])})",
            )

    def finish(self, now: float, sender: Any) -> None:
        if sender._pending:
            self._diverge(
                now, "timer-leak",
                f"{len(sender._pending)} retransmit entries pending after "
                "quiesce",
            )
        unresolved = self.sent - self.delivered_set - self.gave_up
        if unresolved:
            self._diverge(
                now, "lost-message",
                f"sent but neither delivered nor given up: "
                f"{sorted(unresolved)}",
            )
        stray = self.delivered_set - self.sent
        if stray:
            self._diverge(now, "phantom-delivery",
                          f"delivered but never sent: {sorted(stray)}")

    def _diverge(self, now: float, kind: str, detail: str) -> None:
        self.divergences.append(Divergence("delivery", kind, now, detail))


# ---------------------------------------------------------------- discovery


@dataclass
class _FaultWindow:
    start: float
    end: float
    nodes: Optional[Tuple[str, ...]]  # None = whole network


class DiscoveryOracle:
    """Ground truth for what discovery lookups may and must return.

    The harness reports every provide/withdraw (which it executes itself,
    so the oracle's truth is exact) and every fault window. For each lookup:

    * **may**: a result must be a service provided before the lookup
      completed and not withdrawn before it was issued (anything else is a
      phantom).
    * **must**: if no fault window overlapped the lookup and the provider
      was up throughout, every service advertised comfortably before the
      lookup was issued must appear.

    The final post-heal probe is held to exact-set convergence.
    """

    #: A service must have been advertised this long before a lookup for
    #: the "must find" obligation to apply (flood flight time plus slack).
    ADVERTISE_SLACK_S = 0.2

    def __init__(self) -> None:
        self.divergences: List[Divergence] = []
        self.provided_at: Dict[str, Tuple[float, str, str]] = {}  # sid -> (t, type, node)
        self.withdrawn_at: Dict[str, float] = {}
        self.fault_windows: List[_FaultWindow] = []

    # ------------------------------------------------------------ bookkeeping

    def note_provided(self, now: float, service_id: str, service_type: str,
                      node: str) -> None:
        self.provided_at[service_id] = (now, service_type, node)
        self.withdrawn_at.pop(service_id, None)

    def note_withdrawn(self, now: float, service_id: str) -> None:
        self.withdrawn_at.setdefault(service_id, now)

    def note_fault(self, start: float, end: float,
                   nodes: Optional[Tuple[str, ...]] = None) -> None:
        self.fault_windows.append(_FaultWindow(start, end, nodes))

    def _disturbed(self, start: float, end: float, node: str) -> bool:
        for window in self.fault_windows:
            if window.end < start or window.start > end:
                continue
            if window.nodes is None or node in window.nodes:
                return True
        return False

    def live_services(self, service_type: str, at: float) -> Set[str]:
        return {
            sid
            for sid, (t0, stype, _node) in self.provided_at.items()
            if stype == service_type and t0 <= at
            and not (sid in self.withdrawn_at and self.withdrawn_at[sid] <= at)
        }

    # ------------------------------------------------------------- judgement

    def check_lookup(self, issued: float, completed: float,
                     service_type: str, results: List[str],
                     exact: bool = False) -> None:
        seen = set(results)
        for sid in seen:
            known = self.provided_at.get(sid)
            if known is None or known[0] > completed:
                self._diverge(completed, "phantom-service",
                              f"{sid!r} returned but never provided")
                continue
            withdrawn = self.withdrawn_at.get(sid)
            if withdrawn is not None and withdrawn < issued:
                self._diverge(
                    completed, "stale-service",
                    f"{sid!r} withdrawn at {withdrawn:.3f} but returned by a "
                    f"lookup issued at {issued:.3f}",
                )
        guard = issued - self.ADVERTISE_SLACK_S
        for sid in self.live_services(service_type, guard):
            withdrawn = self.withdrawn_at.get(sid)
            if withdrawn is not None and withdrawn <= completed:
                continue  # withdrawn mid-lookup: either outcome is legal
            node = self.provided_at[sid][2]
            if self._disturbed(guard, completed, node):
                if not exact:
                    continue
            if sid not in seen:
                kind = "convergence-failure" if exact else "missed-service"
                self._diverge(
                    completed, kind,
                    f"{sid!r} (provided {self.provided_at[sid][0]:.3f}, "
                    f"type {service_type!r}) missing from lookup at "
                    f"{issued:.3f} -> {sorted(seen)}",
                )
        if exact:
            expected = self.live_services(service_type, guard)
            extras = seen - expected
            if extras:
                self._diverge(
                    completed, "convergence-failure",
                    f"post-heal lookup returned unexpected {sorted(extras)}",
                )

    def _diverge(self, now: float, kind: str, detail: str) -> None:
        self.divergences.append(Divergence("discovery", kind, now, detail))


# ------------------------------------------------------------------- ledger


class LedgerOracle:
    """Lockstep replica of the idempotent transfer ledger."""

    def __init__(self, accounts: Dict[str, int]):
        self.divergences: List[Divergence] = []
        self.balances = dict(accounts)
        self.applied: Set[str] = set()
        self.acked: Set[str] = set()
        self._initial_total = sum(accounts.values())

    def apply_transfer(self, now: float, txid: str, src: str, dst: str,
                       amount: int, real: Any) -> None:
        """Step the model with the same call the real ledger just served."""
        if txid not in self.applied:
            self.applied.add(txid)
            self.balances[src] -= amount
            self.balances[dst] += amount
        if real.balances != self.balances or real.applied != self.applied:
            self._diverge(
                now, "state-mismatch",
                f"after {txid}: implementation balances {real.balances} / "
                f"{len(real.applied)} applied vs model {self.balances} / "
                f"{len(self.applied)} applied",
            )

    def note_acked(self, txid: str) -> None:
        self.acked.add(txid)

    def finish(self, now: float, real: Any) -> None:
        if sum(real.balances.values()) != self._initial_total:
            self._diverge(
                now, "conservation",
                f"total {sum(real.balances.values())} != "
                f"{self._initial_total}",
            )
        unapplied = self.acked - real.applied
        if unapplied:
            self._diverge(now, "acked-not-applied",
                          f"acked but missing from ledger: {sorted(unapplied)}")

    def _diverge(self, now: float, kind: str, detail: str) -> None:
        self.divergences.append(Divergence("ledger", kind, now, detail))


# -------------------------------------------------------------------- milan


#: Variables the generated fleets may measure.
_MILAN_VARIABLES = ("heart_rate", "blood_pressure", "oxygen_saturation",
                    "motion")


class MilanOracle:
    """Checks the bitmask feasible-set search against the reference spec."""

    def __init__(self) -> None:
        self.divergences: List[Divergence] = []
        self.checked = 0

    def check_fleet(self, now: float, fleet_seed: int) -> None:
        rng = split_rng(fleet_seed, "simtest.fleet")
        sensors = []
        for j in range(rng.randint(4, 9)):
            variables = rng.sample(_MILAN_VARIABLES, rng.randint(1, 3))
            sensors.append(SensorInfo(
                sensor_id=f"s{j}",
                reliabilities={
                    v: round(rng.uniform(0.5, 0.99), 3) for v in variables
                },
            ))
        wanted = rng.sample(_MILAN_VARIABLES, rng.randint(1, 3))
        requirements = {v: round(rng.uniform(0.6, 0.999), 3) for v in wanted}
        max_sets = rng.choice((4, 256))
        fast = minimal_feasible_sets(sensors, requirements, max_sets=max_sets)
        reference = minimal_feasible_sets_reference(
            sensors, requirements, max_sets=max_sets
        )
        self.checked += 1
        if fast != reference:
            self.divergences.append(Divergence(
                "milan", "feasible-set-mismatch", now,
                f"fleet seed {fleet_seed}: fast {fast} != reference "
                f"{reference}",
            ))
