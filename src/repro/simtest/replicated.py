"""The replicated simtest world: kill the primary, judge the failover.

A second fixed deployment next to :class:`repro.simtest.world.SimWorld`,
built around :mod:`repro.replication` instead of single-host services.
Six nodes on an ideal radio:

* ``n0_0`` / ``n0_1`` (clients): each runs a full client stack — a
  :class:`~repro.replication.services.ReplicatedLedger` over the ledger
  group, sharded shared objects, and a sharded tuple space.
* ``n1_0`` / ``n1_1`` / ``n1_2`` (replicas): every service is a 3-way
  replica group over these nodes; ``n1_2`` (the highest id, the member
  Bully election would pick) starts as primary of every group.

Mid-horizon the scenario crashes ``n1_2`` — the primary of *every*
group — and recovers it several seconds later. The workload keeps
issuing operations throughout, so client retries cross the failover.

Every operation is recorded as an interval and fed to the Wing–Gong
checker per independent object (the ledger, each shared-object key,
each tuple kind). On top of linearizability the run is judged by
replication-specific oracles:

* **failover bound** — some surviving replica takes over the ledger
  group within ``FAILOVER_BOUND_S`` of the crash;
* **acked-is-applied** — every acknowledged transfer txid is in every
  ledger replica's applied set after the run;
* **conservation** — account totals are preserved on every replica;
* **convergence** — after the recovered node catches up, every group's
  replicas agree on applied index and machine state.

Everything is a pure function of ``(seed, tie_seed)``: the scorecard is
byte-identical across reruns.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from repro.netsim import topology
from repro.netsim.failures import FailureInjector
from repro.netsim.medium import IDEAL_RADIO
from repro.obs.metrics import get_registry
from repro.replication.client import GroupClient, ShardedClient
from repro.replication.replica import (
    ReplicationParams,
    deploy_group,
    deploy_sharded,
)
from repro.replication.services import (
    KVMachine,
    LedgerMachine,
    ReplicatedLedger,
    ReplicatedSharedObjects,
    ReplicatedTupleSpace,
    TupleSpaceMachine,
)
from repro.simtest.linearizability import (
    CheckAborted,
    LedgerModel,
    Op,
    RegisterModel,
    TupleSpaceModel,
    check_linearizable,
)
from repro.simtest.oracles import Divergence
from repro.simtest.world import RunResult, _OpRecord
from repro.transport.base import Address
from repro.transport.simnet import SimFabric
from repro.util.rng import split_rng

CLIENTS = ("n0_0", "n0_1")
REPLICAS = ("n1_0", "n1_1", "n1_2")
PRIMARY = "n1_2"

_LED_PORT = "led"
_SO_PORT = "so"
_TS_PORT = "ts"
_NUM_SHARDS = 2

ACCOUNTS = ("acct0", "acct1", "acct2", "acct3")
INITIAL_BALANCE = 1000

SO_KEYS = ("cfg", "route", "limit", "peer")
TS_KINDS = ("job", "evt")

HORIZON_S = 16.0

#: Detection (~0.9 s) + a couple of election rounds, with headroom.
FAILOVER_BOUND_S = 5.0

#: Group timers for the scenario: detection ~0.9 s, election ~0.6 s.
REPL_PARAMS = ReplicationParams(
    hb_interval_s=0.3,
    hb_timeout_multiplier=3.0,
    elect_timeout_s=0.3,
    sync_timeout_s=0.3,
    coord_timeout_s=0.8,
    beacon_interval_s=0.3,
    write_timeout_s=3.0,
)

_WEIGHTS = [
    ("transfer", 10),
    ("balance", 6),
    ("so_write", 10),
    ("so_read", 10),
    ("ts_out", 6),
    ("ts_inp", 4),
    ("ts_rdp", 4),
    ("ts_in", 2),
]


def _pick(rng, weighted) -> str:
    total = sum(w for _op, w in weighted)
    roll = rng.uniform(0.0, total)
    for op, weight in weighted:
        roll -= weight
        if roll <= 0.0:
            return op
    return weighted[-1][0]


class _ClientStack:
    """One client node's facades over every replicated service."""

    def __init__(self, fabric: SimFabric, node_id: str, so_map, ts_map):
        self.ledger_client = GroupClient(
            fabric.endpoint(node_id, f"{_LED_PORT}.c"),
            [Address(r, _LED_PORT) for r in REPLICAS],
            request_timeout_s=0.5,
            max_attempts=16,
        )
        self.so_client = ShardedClient(
            lambda shard: fabric.endpoint(node_id, f"{_SO_PORT}.c{shard}"),
            so_map, request_timeout_s=0.5, max_attempts=16,
        )
        self.ts_client = ShardedClient(
            lambda shard: fabric.endpoint(node_id, f"{_TS_PORT}.c{shard}"),
            ts_map, request_timeout_s=0.5, max_attempts=16,
        )
        self.ledger = ReplicatedLedger(self.ledger_client)
        self.objects = ReplicatedSharedObjects(self.so_client)
        self.space = ReplicatedTupleSpace(self.ts_client)

    def close(self) -> None:
        self.ledger_client.close()
        self.so_client.close()
        self.ts_client.close()


class ReplicatedWorld:
    """Builds the replicated deployment and runs one primary-kill run."""

    def __init__(self, seed: int, tie_seed: int = 0,
                 horizon_s: float = HORIZON_S, n_ops: int = 60,
                 crash_primary: bool = True):
        self.seed = seed
        self.tie_seed = tie_seed
        self.horizon_s = horizon_s
        get_registry().reset()

        self.network = topology.grid(
            2, 3, spacing=60.0, radio_profile=IDEAL_RADIO, seed=seed
        )
        self.sim = self.network.sim
        self.sim.set_tie_breaker(split_rng(tie_seed, "simtest.ties").random)
        self.fabric = SimFabric(self.network)
        self.injector = FailureInjector(self.network, seed=seed)

        self.divergences: List[Divergence] = []
        self._history: List[_OpRecord] = []
        self.stats: Dict[str, int] = defaultdict(int)
        self.acked_txids: set = set()

        factory = self.fabric.endpoint
        self.ledger_group = deploy_group(
            factory, REPLICAS,
            lambda: LedgerMachine({a: INITIAL_BALANCE for a in ACCOUNTS}),
            port=_LED_PORT, params=REPL_PARAMS, group="led",
        )
        self.so_map, self.so_groups = deploy_sharded(
            factory, REPLICAS, _NUM_SHARDS, KVMachine,
            port=_SO_PORT, params=REPL_PARAMS, group_prefix="so",
        )
        self.ts_map, self.ts_groups = deploy_sharded(
            factory, REPLICAS, _NUM_SHARDS, TupleSpaceMachine,
            port=_TS_PORT, params=REPL_PARAMS, group_prefix="ts",
        )
        self.clients = tuple(
            _ClientStack(self.fabric, node_id, self.so_map, self.ts_map)
            for node_id in CLIENTS
        )

        # --- the fault: kill every group's primary mid-horizon -----------
        rng = split_rng(seed, "simtest.replicated")
        self.crash_at = 0.0
        self.recover_at = 0.0
        self.first_new_primary_at: Optional[float] = None
        if crash_primary:
            self.crash_at = round(5.5 + rng.uniform(0.0, 1.0), 3)
            downtime = round(5.0 + rng.uniform(0.0, 1.5), 3)
            self.recover_at = round(self.crash_at + downtime, 3)
            self.injector.crash_and_recover(PRIMARY, self.crash_at, downtime)
            probe_at = self.crash_at + 0.25
            while probe_at < self.crash_at + FAILOVER_BOUND_S + 2.0:
                self.sim.schedule_at(probe_at, self._probe_failover)
                probe_at += 0.25

        # --- the workload ------------------------------------------------
        for i in range(n_ops):
            at = round(rng.uniform(0.5, horizon_s - 1.0), 3)
            op = _pick(rng, _WEIGHTS)
            client = rng.choice((0, 1))
            if op == "transfer":
                src, dst = rng.sample(ACCOUNTS, 2)
                args: Tuple[Any, ...] = (
                    f"rt{i}", src, dst, rng.randint(1, 20), client
                )
            elif op == "balance":
                args = (rng.choice(ACCOUNTS), client)
            elif op == "so_write":
                args = (rng.choice(SO_KEYS), rng.randint(0, 999), client)
            elif op == "so_read":
                args = (rng.choice(SO_KEYS), client)
            elif op == "ts_out":
                args = (rng.choice(TS_KINDS), rng.randint(0, 99), client)
            else:  # ts_inp / ts_rdp / ts_in
                args = (rng.choice(TS_KINDS), client)
            self.sim.schedule_at(at, self._exec, op, args)

        self.end_s = max(horizon_s, self.recover_at) + 4.0

    # ------------------------------------------------------------- recording

    def _record(self, obj: Tuple[str, ...], client: int, op: str,
                args: Tuple[Any, ...], promise: Any) -> _OpRecord:
        record = _OpRecord(obj, f"c{client}", op, args, self.sim.now())
        self._history.append(record)

        def settle(settled: Any) -> None:
            if settled.fulfilled:
                record.response = self.sim.now()
                record.result = settled.result()

        promise.on_settle(settle)
        return record

    # -------------------------------------------------------------- workload

    def _exec(self, op: str, args: Tuple[Any, ...]) -> None:
        self.stats[f"ops_{op}"] += 1
        if op == "transfer":
            txid, src, dst, amount, client = args
            promise = self.clients[client].ledger.transfer(
                txid, src, dst, amount
            )
            self._record(("ledger",), client, "transfer",
                         (txid, src, dst, amount), promise)

            def note_acked(settled: Any, txid: str = txid) -> None:
                if settled.fulfilled and settled.result() is True:
                    self.acked_txids.add(txid)

            promise.on_settle(note_acked)
        elif op == "balance":
            acct, client = args
            promise = self.clients[client].ledger.balance(acct)
            self._record(("ledger",), client, "balance", (acct,), promise)
        elif op == "so_write":
            key, value, client = args
            promise = self.clients[client].objects.write(key, value)
            self._record(("so", key), client, "write", (value,), promise)
        elif op == "so_read":
            key, client = args
            promise = self.clients[client].objects.read(key)
            self._record(("so", key), client, "read", (), promise)
        elif op == "ts_out":
            kind, value, client = args
            promise = self.clients[client].space.out(kind, value,
                                                     confirm=True)
            self._record(("ts", kind), client, "out", (kind, value), promise)
        elif op == "ts_inp":
            kind, client = args
            promise = self.clients[client].space.inp(kind, None)
            self._record(("ts", kind), client, "inp", (), promise)
        elif op == "ts_rdp":
            kind, client = args
            promise = self.clients[client].space.rdp(kind, None)
            self._record(("ts", kind), client, "rdp", (), promise)
        elif op == "ts_in":
            kind, client = args
            promise = self.clients[client].space.in_(kind, None)
            self._record(("ts", kind), client, "in", (), promise)
        else:
            raise ValueError(f"unknown workload op {op!r}")

    # --------------------------------------------------------------- oracles

    def _probe_failover(self) -> None:
        if self.first_new_primary_at is not None:
            return
        for node, replica in self.ledger_group.items():
            if node != PRIMARY and replica.role == "primary":
                self.first_new_primary_at = self.sim.now()
                self.new_primary = node
                return

    def _all_groups(self):
        yield "led", self.ledger_group
        for shard, members in sorted(self.so_groups.items()):
            yield f"so.s{shard}", members
        for shard, members in sorted(self.ts_groups.items()):
            yield f"ts.s{shard}", members

    def _check_replication(self, now: float) -> None:
        if self.crash_at and self.first_new_primary_at is None:
            self.divergences.append(Divergence(
                "failover", "no-new-primary", now,
                f"no survivor took over the ledger group within "
                f"{FAILOVER_BOUND_S}s of the crash at t={self.crash_at}",
            ))
        for label, members in self._all_groups():
            primaries = [n for n, r in members.items() if r.role == "primary"]
            if len(primaries) != 1:
                self.divergences.append(Divergence(
                    "failover", "primary-count", now,
                    f"group {label}: primaries={primaries}",
                ))
            head = members[REPLICAS[0]]
            for node in REPLICAS[1:]:
                replica = members[node]
                if (replica.applied_index != head.applied_index
                        or replica.machine.snapshot() != head.machine.snapshot()):
                    self.divergences.append(Divergence(
                        "convergence", "replica-diverged", now,
                        f"group {label}: {node} at index "
                        f"{replica.applied_index} != {REPLICAS[0]} at "
                        f"{head.applied_index}",
                    ))
        for node, replica in self.ledger_group.items():
            machine = replica.machine
            total = sum(machine.balances.values())
            if total != INITIAL_BALANCE * len(ACCOUNTS):
                self.divergences.append(Divergence(
                    "ledger", "conservation", now,
                    f"{node}: total={total}",
                ))
            missing = self.acked_txids - machine.applied_txids
            if missing:
                self.divergences.append(Divergence(
                    "ledger", "acked-not-applied", now,
                    f"{node}: {sorted(missing)}",
                ))

    def _check_linearizability(self, now: float) -> None:
        groups: Dict[Tuple[str, ...], List[Op]] = defaultdict(list)
        for record in self._history:
            groups[record.obj].append(Op(
                client=record.client, op=record.op, args=record.args,
                invoke=record.invoke, response=record.response,
                result=record.result,
            ))
        for obj, ops in sorted(groups.items()):
            if obj[0] == "so":
                model: Any = RegisterModel()
            elif obj[0] == "ts":
                model = TupleSpaceModel()
            else:
                model = LedgerModel(
                    {a: INITIAL_BALANCE for a in ACCOUNTS}
                )
            self.stats["lin_objects"] += 1
            try:
                verdict = check_linearizable(ops, model)
            except CheckAborted:
                self.stats["lin_aborted"] += 1
                continue
            if verdict is not None:
                self.divergences.append(Divergence(
                    f"linearizability-{obj[0]}", "non-linearizable", now,
                    f"object {obj}: {verdict}",
                ))

    # ---------------------------------------------------------------- runner

    def run(self) -> RunResult:
        self.sim.run_until(self.end_s)
        now = self.sim.now()
        self._check_replication(now)
        self._check_linearizability(now)
        registry = get_registry()
        self.stats["events"] = self.sim.events_processed
        self.stats["transfers_acked"] = len(self.acked_txids)
        self.stats["election_rounds"] = int(
            registry.counter_total("repl.election.rounds")
        )
        self.stats["log_catchups"] = int(
            registry.counter_total("repl.log.catchups")
        )
        for client in self.clients:
            client.close()
        for _label, members in self._all_groups():
            for replica in members.values():
                replica.close()
        divergences = sorted(
            self.divergences, key=lambda d: (d.at, d.oracle, d.kind)
        )
        return RunResult(divergences, dict(self.stats))

    # ------------------------------------------------------------- scorecard

    def scorecard(self, result: RunResult) -> Dict[str, Any]:
        primary_machine = self.ledger_group[
            getattr(self, "new_primary", PRIMARY)
        ].machine
        latency = (
            None if self.first_new_primary_at is None
            else round(self.first_new_primary_at - self.crash_at, 6)
        )
        return {
            "seed": self.seed,
            "tie_seed": self.tie_seed,
            "ok": result.ok,
            "divergences": [d.to_dict() for d in result.divergences],
            "failover": {
                "crash_at": self.crash_at,
                "recover_at": self.recover_at,
                "latency_s": latency,
                "new_primary": getattr(self, "new_primary", None),
                "bound_s": FAILOVER_BOUND_S,
                "terms": {
                    node: replica.term
                    for node, replica in sorted(self.ledger_group.items())
                },
            },
            "ledger": {
                "balances": dict(sorted(primary_machine.balances.items())),
                "applied": len(primary_machine.applied_txids),
                "acked": len(self.acked_txids),
            },
            "stats": dict(sorted(result.stats.items())),
        }


def run_failover(seed: int, tie_seed: int = 0,
                 **kwargs: Any) -> Dict[str, Any]:
    """One primary-kill run; returns the scorecard (pure in its inputs)."""
    world = ReplicatedWorld(seed, tie_seed, **kwargs)
    return world.scorecard(world.run())


def scorecard_bytes(scorecard: Dict[str, Any]) -> bytes:
    """Canonical serialized form: byte-identical for identical runs."""
    return json.dumps(scorecard, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
