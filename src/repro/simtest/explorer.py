"""The schedule/fault explorer: many short randomized executions.

Each iteration derives an independent scenario seed and tie-breaker seed
from ``(seed, iteration)``, generates a scenario, and executes it with all
oracles attached. The first diverging scenario is returned for shrinking;
a clean sweep returns aggregate statistics. Everything is a pure function
of the arguments, so a failing iteration number is itself a repro.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.simtest.oracles import Divergence
from repro.simtest.scenario import Scenario, generate_scenario
from repro.simtest.world import execute_scenario
from repro.util.rng import split_rng

#: Step-count range a run draws from when not pinned.
MIN_STEPS = 18
MAX_STEPS = 44


@dataclass
class ExplorationReport:
    """Outcome of one exploration sweep."""

    seed: int
    budget: int
    runs: int = 0
    divergent_scenario: Optional[Scenario] = None
    divergences: List[Divergence] = field(default_factory=list)
    totals: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.divergent_scenario is None


def scenario_for_iteration(seed: int, iteration: int,
                           steps: Optional[int] = None) -> Scenario:
    """The scenario the explorer would run at ``iteration`` — replayable."""
    rng = split_rng(seed, f"simtest.iter.{iteration}")
    scenario_seed = rng.randrange(1 << 31)
    tie_seed = rng.randrange(1 << 31)
    n_steps = steps if steps is not None else rng.randint(MIN_STEPS, MAX_STEPS)
    return generate_scenario(scenario_seed, tie_seed, n_steps)


def explore(
    budget: int,
    seed: int,
    steps: Optional[int] = None,
    plant: Optional[str] = None,
    on_progress: Optional[Callable[[int, Dict[str, int]], None]] = None,
) -> ExplorationReport:
    """Run up to ``budget`` randomized executions; stop at first divergence.

    ``on_progress(iteration, totals)`` is called after each run (the CLI
    uses it for periodic status lines).
    """
    report = ExplorationReport(seed=seed, budget=budget)
    for iteration in range(budget):
        scenario = scenario_for_iteration(seed, iteration, steps)
        result = execute_scenario(scenario, plant)
        report.runs += 1
        for key, value in result.stats.items():
            report.totals[key] = report.totals.get(key, 0) + value
        if on_progress is not None:
            on_progress(iteration, report.totals)
        if result.divergences:
            report.divergent_scenario = scenario
            report.divergences = result.divergences
            break
    return report
