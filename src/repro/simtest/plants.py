"""Deliberately planted bugs: proof the harness catches real defects.

Each plant patches one implementation method with a subtly broken variant
(the kind of off-by-one or forgotten-branch bug refactors introduce),
scoped to a ``with planted(name):`` block and always restored. The test
suite and the CI smoke step run the explorer against a plant and assert
that (a) a divergence is found and (b) the shrinker reduces the trigger to
a handful of steps that replay deterministically.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Tuple


def _plant_broken_watermark() -> Callable[[], None]:
    """Duplicate suppression forgets the watermark itself.

    ``seq <= watermark`` becomes ``seq < watermark``: a retransmission of
    the exact frame the watermark points at (original ack lost) is
    delivered a second time. Caught by the delivery oracle as a
    delivery-mismatch plus receiver-state divergence.
    """
    from repro.transport import reliable

    original = reliable._PeerReceiveState.is_duplicate

    def broken(self, seq: int) -> bool:
        return seq < self.watermark or seq in self.window

    reliable._PeerReceiveState.is_duplicate = broken
    return lambda: setattr(reliable._PeerReceiveState, "is_duplicate", original)


def _plant_truncated_feasibility() -> Callable[[], None]:
    """The feasible-set search silently drops its last result.

    Caught by the MiLAN oracle on the first fleet whose enumeration has
    more than one minimal set.
    """
    from repro.simtest import oracles

    original = oracles.minimal_feasible_sets

    def broken(sensors, requirements, max_size=None, max_sets=256):
        result = original(sensors, requirements, max_size=max_size,
                          max_sets=max_sets)
        return result[:-1] if len(result) > 1 else result

    oracles.minimal_feasible_sets = broken
    return lambda: setattr(oracles, "minimal_feasible_sets", original)


def _plant_double_apply() -> Callable[[], None]:
    """The ledger forgets txid dedup, so RPC retries double-apply.

    Caught by the ledger oracle's lockstep balance comparison the first
    time a retried transfer lands twice.
    """
    from repro.simtest import world

    original = world.SimLedger.transfer

    def broken(self, txid: str, src: str, dst: str, amount: int) -> bool:
        self.applied.add(txid)
        self.balances[src] -= amount
        self.balances[dst] += amount
        return True

    world.SimLedger.transfer = broken
    return lambda: setattr(world.SimLedger, "transfer", original)


def _plant_ghost_withdraw() -> Callable[[], None]:
    """Withdraw forgets to unpublish, leaving a ghost service.

    The provider keeps replying for a service the application withdrew.
    Caught as a stale/phantom result or by the post-heal exact-convergence
    probe.
    """
    from repro.discovery import distributed

    original = distributed.DistributedDiscovery.withdraw

    def broken(self, service_id: str) -> None:
        self._withdrawn.discard(service_id)

    distributed.DistributedDiscovery.withdraw = broken
    return lambda: setattr(distributed.DistributedDiscovery, "withdraw",
                           original)


def _plant_eager_get() -> Callable[[], None]:
    """The host answers gets while invalidations are still outstanding.

    In write-through mode a get must wait until the pending write's
    invalidation round completes; answering early leaks the new value to
    one reader while a cache whose invalidation was lost can still serve
    the old one. Caught by the linearizability checker over shared-object
    histories (a stale read strictly after a fresh one).
    """
    from repro.transactions import sharedobjects

    original = sharedobjects.SharedObjectHost._get_must_wait

    def broken(self, key):
        return False

    sharedobjects.SharedObjectHost._get_must_wait = broken
    return lambda: setattr(sharedobjects.SharedObjectHost, "_get_must_wait",
                           original)


#: name -> (installer returning the restore callable, one-line description).
PLANTS: Dict[str, Tuple[Callable[[], Callable[[], None]], str]] = {
    "broken-watermark": (
        _plant_broken_watermark,
        "reliable dedup uses < instead of <= against the watermark",
    ),
    "truncated-feasibility": (
        _plant_truncated_feasibility,
        "feasible-set search drops its last minimal set",
    ),
    "double-apply": (
        _plant_double_apply,
        "ledger forgets txid dedup; retries double-apply",
    ),
    "ghost-withdraw": (
        _plant_ghost_withdraw,
        "discovery withdraw leaves the service advertised",
    ),
    "eager-get": (
        _plant_eager_get,
        "shared-object host answers gets during pending invalidations",
    ),
}


@contextmanager
def planted(name: str) -> Iterator[None]:
    """Install a plant for the duration of the block; always restores."""
    try:
        installer, _description = PLANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown plant {name!r}; available: {sorted(PLANTS)}"
        ) from None
    restore = installer()
    try:
        yield
    finally:
        restore()
