"""CLI for the simulation-testing framework.

::

    python -m repro.simtest run --budget 500 --seed 0
    python -m repro.simtest run --budget 60 --seed 1 --plant broken-watermark \
        --expect-divergence --repro-out simtest-repro.json
    python -m repro.simtest repro simtest-repro.json
    python -m repro.simtest plants
    python -m repro.simtest failover --runs 10 --seed 0 --json failover.json

``run`` explores; on divergence it shrinks the trace, writes a repro file,
and exits 1 (or 0 with ``--expect-divergence``, the planted-bug smoke
mode, which also verifies the written repro replays). ``repro`` replays a
repro file and exits 0 iff the recorded divergence reproduces.
``failover`` runs the replicated primary-kill world
(:mod:`repro.simtest.replicated`) over a seed range and exits nonzero on
any divergence.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.simtest.explorer import explore
from repro.simtest.plants import PLANTS
from repro.simtest.shrinker import replay_repro, shrink, write_repro


def _cmd_run(args: argparse.Namespace) -> int:
    def progress(iteration: int, totals: dict) -> None:
        if args.progress_every and (iteration + 1) % args.progress_every == 0:
            print(f"  ... {iteration + 1}/{args.budget} runs clean "
                  f"({totals.get('events', 0)} events)")

    report = explore(args.budget, args.seed, steps=args.steps,
                     plant=args.plant, on_progress=progress)
    summary = {
        "seed": args.seed,
        "budget": args.budget,
        "runs": report.runs,
        "plant": args.plant,
        "ok": report.ok,
        "totals": dict(sorted(report.totals.items())),
        "divergences": [d.to_dict() for d in report.divergences],
    }
    if report.ok:
        print(f"simtest: {report.runs} runs, zero divergences "
              f"({report.totals.get('events', 0)} events, "
              f"{report.totals.get('lin_objects', 0)} histories checked)")
        if args.json:
            _write_json(args.json, summary)
        return 0

    first = report.divergences[0]
    scenario = report.divergent_scenario
    assert scenario is not None
    print(f"simtest: divergence after {report.runs} runs: "
          f"[{first.oracle}/{first.kind}] {first.detail}")
    print(f"  scenario: seed={scenario.seed} tie_seed={scenario.tie_seed} "
          f"steps={len(scenario.steps)}")
    result = shrink(scenario, first.signature, plant=args.plant,
                    max_replays=args.shrink_budget)
    print(f"  shrunk: {result.initial_steps} -> {result.steps} steps "
          f"in {result.replays} replays")
    write_repro(args.repro_out, result.scenario, result.signature,
                plant=args.plant, detail=first.detail)
    print(f"  repro written to {args.repro_out}")
    summary["shrunk_steps"] = result.steps
    summary["repro"] = args.repro_out
    if args.json:
        _write_json(args.json, summary)
    if args.expect_divergence:
        reproduced, _observed = replay_repro(args.repro_out)
        if not reproduced:
            print("  ERROR: written repro does not replay", file=sys.stderr)
            return 1
        print("  repro verified: replays deterministically")
        return 0
    return 1


def _cmd_repro(args: argparse.Namespace) -> int:
    reproduced, observed = replay_repro(args.file)
    if reproduced:
        print(f"repro: divergence reproduced ({observed[0][0]}/"
              f"{observed[0][1]})")
        return 0
    print(f"repro: expected divergence did NOT reproduce "
          f"(observed: {observed})", file=sys.stderr)
    return 1


def _cmd_failover(args: argparse.Namespace) -> int:
    from repro.simtest.replicated import run_failover

    scorecards = []
    failed = 0
    for seed in range(args.seed, args.seed + args.runs):
        scorecard = run_failover(seed, tie_seed=args.tie_seed)
        scorecards.append(scorecard)
        failover = scorecard["failover"]
        if scorecard["ok"]:
            print(f"failover: seed={seed} ok "
                  f"(new primary {failover['new_primary']} after "
                  f"{failover['latency_s']}s, "
                  f"{scorecard['stats']['lin_objects']} histories checked)")
        else:
            failed += 1
            first = scorecard["divergences"][0]
            print(f"failover: seed={seed} DIVERGED "
                  f"[{first['oracle']}/{first['kind']}] {first['detail']}")
    if args.json:
        _write_json(args.json, {"runs": scorecards, "failed": failed})
    if failed:
        print(f"failover: {failed}/{args.runs} runs diverged",
              file=sys.stderr)
        return 1
    print(f"failover: {args.runs} runs, zero divergences")
    return 0


def _cmd_plants(_args: argparse.Namespace) -> int:
    for name in sorted(PLANTS):
        print(f"{name}: {PLANTS[name][1]}")
    return 0


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simtest",
        description="Deterministic simulation testing.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="explore schedules and faults")
    run.add_argument("--budget", type=int, default=200,
                     help="number of randomized executions (default 200)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--steps", type=int, default=None,
                     help="pin the per-scenario step count")
    run.add_argument("--plant", choices=sorted(PLANTS), default=None,
                     help="install a deliberately broken variant")
    run.add_argument("--shrink-budget", type=int, default=400,
                     help="max replays during shrinking (default 400)")
    run.add_argument("--repro-out", default="simtest-repro.json")
    run.add_argument("--json", default=None,
                     help="write a machine-readable summary here")
    run.add_argument("--progress-every", type=int, default=100)
    run.add_argument("--expect-divergence", action="store_true",
                     help="exit 0 iff a divergence was found, shrunk, and "
                          "its repro replays (planted-bug smoke mode)")
    run.set_defaults(func=_cmd_run)

    repro = commands.add_parser("repro", help="replay a minimized repro file")
    repro.add_argument("file")
    repro.set_defaults(func=_cmd_repro)

    failover = commands.add_parser(
        "failover", help="run the replicated primary-kill scenario"
    )
    failover.add_argument("--seed", type=int, default=0,
                          help="first seed of the range")
    failover.add_argument("--runs", type=int, default=5,
                          help="number of seeds to run (default 5)")
    failover.add_argument("--tie-seed", type=int, default=0)
    failover.add_argument("--json", default=None,
                          help="write all scorecards here")
    failover.set_defaults(func=_cmd_failover)

    plants = commands.add_parser("plants", help="list available plants")
    plants.set_defaults(func=_cmd_plants)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
