"""Simtest oracles over workload scenarios.

Any registered scenario can run as a simtest world: the run records the
archetype's operation history (tuple-space fan-out, replicated-ledger
traffic), and :func:`check_scenario` replays each object's history through
the Wing-Gong checker plus the archetype's own end-of-run consistency
checks. Linearizability is compositional, so each object — each message
tuple, the ledger — is checked separately.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.simtest.linearizability import (
    LedgerModel,
    Op,
    RegisterModel,
    SequentialModel,
    TupleSpaceModel,
    check_linearizable,
)
from repro.workloads.runner import ScenarioRun, parse_spec


def _model_for(obj: Tuple[Any, ...], archetype) -> SequentialModel:
    kind = obj[0]
    if kind == "ts":
        return TupleSpaceModel()
    if kind == "ledger":
        accounts = dict(getattr(archetype, "initial_accounts", {}))
        return LedgerModel(accounts)
    if kind == "so":
        return RegisterModel()
    raise ConfigurationError(f"no sequential model for history object {obj!r}")


def check_scenario(name: str, seed: int = 0,
                   **overrides: Any) -> Dict[str, Any]:
    """Run ``name`` with history recording and check every oracle.

    Returns ``{"scorecard", "objects", "operations", "violations"}`` where
    ``violations`` collects linearizability counterexamples and the
    archetype's consistency violations (empty means the run is clean).
    Scenarios whose archetype records no history are rejected — a vacuous
    oracle pass is worse than an error.
    """
    run = ScenarioRun(parse_spec(name, seed, record_history=True,
                                 **overrides))
    # The archetype is closed by run(); capture history/violations first
    # via the scorecard path, then read the recorded history.
    archetype = run.archetype
    scorecard = run.run()
    history = archetype.history()
    if not history:
        raise ConfigurationError(
            f"scenario {name!r} recorded no history; it cannot run as a "
            "simtest world"
        )

    by_object: Dict[Tuple[Any, ...], List[Op]] = {}
    for obj, client, op, args, invoke, response, result in history:
        by_object.setdefault(tuple(obj), []).append(
            Op(client=str(client), op=str(op), args=tuple(args),
               invoke=invoke, response=response, result=result)
        )

    violations: List[str] = list(
        scorecard["archetype_detail"]["consistency_violations"]
    )
    for obj in sorted(by_object, key=repr):
        verdict = check_linearizable(by_object[obj], _model_for(obj, archetype))
        if verdict is not None:
            violations.append(f"{obj}: {verdict}")

    return {
        "scorecard": scorecard,
        "objects": len(by_object),
        "operations": len(history),
        "violations": violations,
    }
