"""A Wing–Gong linearizability checker over recorded histories.

A history is a list of :class:`Op` intervals. The checker searches for a
total order (a *linearization*) of the operations that (a) respects real
time — an operation that completed before another was invoked must come
first — and (b) is legal for a sequential model of the object. Operations
still pending at the end of the run may take effect at any point after
their invocation, or never; their results are unconstrained.

The search is the classic Wing & Gong loop: repeatedly pick an operation
that is minimal (no unlinearized *completed* operation responded before it
was invoked), apply it to the model, and recurse, memoizing visited
``(linearized-set, model-state)`` pairs so equivalent prefixes are explored
once. Models return *all* legal ``(next_state, result)`` outcomes for an
operation (a tuple-space ``inp`` may legally return any matching tuple),
and the checker prunes outcomes that contradict the recorded result.

Linearizability is a local (compositional) property, so callers check each
independent object — each shared-object key, each tuple kind — separately,
which keeps the search small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Op:
    """One operation interval in a history.

    ``response`` is ``None`` for operations still pending when the run
    ended; their ``result`` is meaningless and ignored.
    """

    client: str
    op: str
    args: Tuple[Any, ...]
    invoke: float
    response: Optional[float]
    result: Any = None

    @property
    def completed(self) -> bool:
        return self.response is not None


def canonical(value: Any) -> Any:
    """Normalize codec round-trip artifacts (lists) for result comparison."""
    if isinstance(value, (list, tuple)):
        return tuple(canonical(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, canonical(v)) for k, v in value.items()))
    return value


class SequentialModel:
    """Interface for the sequential specification of one object."""

    def initial(self) -> Any:
        raise NotImplementedError

    def apply(self, state: Any, op: str, args: Tuple[Any, ...]) -> Iterable[Tuple[Any, Any]]:
        """All legal ``(next_state, result)`` outcomes of ``op`` in ``state``.

        Returning no outcomes means the operation cannot take effect in this
        state (e.g. a blocking take with no matching tuple).
        """
        raise NotImplementedError


class CheckAborted(Exception):
    """The search exceeded its state budget; the verdict is inconclusive."""


def check_linearizable(
    history: Sequence[Op],
    model: SequentialModel,
    max_states: int = 500_000,
) -> Optional[str]:
    """Return ``None`` if the history is linearizable, else a description.

    Raises :class:`CheckAborted` when more than ``max_states`` distinct
    ``(linearized-set, state)`` pairs are visited — a budget guard, not a
    verdict.
    """
    ops = sorted(history, key=lambda o: (o.invoke, o.response is None))
    n = len(ops)
    if n == 0:
        return None
    completed_mask = 0
    for i, op in enumerate(ops):
        if op.completed:
            completed_mask |= 1 << i
    if completed_mask == 0:
        return None  # nothing constrained: all-pending histories are trivially ok

    initial = model.initial()
    visited = {(0, initial)}
    stack: List[Tuple[int, Any]] = [(0, initial)]
    while stack:
        mask, state = stack.pop()
        if mask & completed_mask == completed_mask:
            return None
        # Real-time bound: nothing invoked after the earliest outstanding
        # completed response may be linearized yet.
        min_response = min(
            ops[i].response  # type: ignore[misc]
            for i in range(n)
            if completed_mask >> i & 1 and not mask >> i & 1
        )
        for i in range(n):
            if mask >> i & 1:
                continue
            op = ops[i]
            if op.invoke > min_response:
                continue
            bit = 1 << i
            want = canonical(op.result) if op.completed else None
            for next_state, result in model.apply(state, op.op, op.args):
                if op.completed and canonical(result) != want:
                    continue
                key = (mask | bit, next_state)
                if key in visited:
                    continue
                if len(visited) >= max_states:
                    raise CheckAborted(
                        f"exceeded {max_states} states over {n} operations"
                    )
                visited.add(key)
                stack.append(key)
    witnesses = [ops[i] for i in range(n) if completed_mask >> i & 1]
    return (
        f"no linearization exists for {len(witnesses)} completed operations "
        f"(first: {witnesses[0].client} {witnesses[0].op}{witnesses[0].args} "
        f"-> {witnesses[0].result!r})"
    )


# --------------------------------------------------------------------- models


class RegisterModel(SequentialModel):
    """A versioned register: one shared-object key.

    State is ``(value, version)``. ``write`` returns the new version (the
    put-ack payload); ``read`` returns the value (``None`` before any write,
    matching a host miss).
    """

    def initial(self) -> Any:
        return (None, 0)

    def apply(self, state: Any, op: str, args: Tuple[Any, ...]) -> Iterable[Tuple[Any, Any]]:
        value, version = state
        if op == "read":
            return [(state, value)]
        if op == "write":
            return [((canonical(args[0]), version + 1), version + 1)]
        raise ValueError(f"register model cannot apply {op!r}")


class TupleSpaceModel(SequentialModel):
    """A bag of tuples of one kind (templates here are kind-only).

    ``out`` adds and echoes the tuple; probes (``inp``/``rdp``) return a
    matching tuple, or ``None`` only when nothing matches; blocking forms
    (``in``/``rd``) cannot take effect while nothing matches.
    """

    def initial(self) -> Any:
        return ()

    def apply(self, state: Any, op: str, args: Tuple[Any, ...]) -> Iterable[Tuple[Any, Any]]:
        bag: Tuple[Any, ...] = state
        if op == "out":
            added = canonical(args)
            return [(tuple(sorted(bag + (added,), key=repr)), added)]
        if op in ("inp", "in"):
            outcomes = [
                (bag[:i] + bag[i + 1:], bag[i])
                for i in range(len(bag))
                if i == 0 or bag[i] != bag[i - 1]
            ]
            if not bag and op == "inp":
                return [(bag, None)]
            return outcomes
        if op in ("rdp", "rd"):
            if not bag:
                return [(bag, None)] if op == "rdp" else []
            return [(bag, t) for t in dict.fromkeys(bag)]
        raise ValueError(f"tuple-space model cannot apply {op!r}")


class LedgerModel(SequentialModel):
    """The idempotent transfer ledger (conservation + txid dedup).

    State is ``(sorted balance items, frozenset of applied txids)``.
    """

    def __init__(self, accounts: Dict[str, int]):
        self._initial = (tuple(sorted(accounts.items())), frozenset())

    def initial(self) -> Any:
        return self._initial

    def apply(self, state: Any, op: str, args: Tuple[Any, ...]) -> Iterable[Tuple[Any, Any]]:
        balances_items, applied = state
        if op == "ping":
            return [(state, "pong")]
        balances = dict(balances_items)
        if op == "balance":
            return [(state, balances[args[0]])]
        if op == "transfer":
            txid, src, dst, amount = args
            if txid in applied:
                return [(state, True)]
            balances[src] -= amount
            balances[dst] += amount
            return [
                ((tuple(sorted(balances.items())), applied | {txid}), True)
            ]
        raise ValueError(f"ledger model cannot apply {op!r}")
