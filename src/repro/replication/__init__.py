"""Replicated, sharded state services with coordinator election.

This package turns the middleware's single-host services (the idempotent
ledger, the tuple space, the shared-object store) into replicated, sharded
deployments without changing client-facing call shapes:

- :mod:`repro.replication.log` — the monotonically-indexed op log with
  term-stamped entries, quorum commit index, and compaction metadata.
- :mod:`repro.replication.replica` — a primary–backup replica node:
  ack-quorum commit, catch-up/state-transfer for lagging or recovered
  backups, and epoch/term fencing so a deposed primary's stale ops are
  rejected.
- :mod:`repro.replication.election` — Bully coordinator election, driven
  by :class:`repro.recovery.heartbeat.HeartbeatDetector` suspicion events.
- :mod:`repro.replication.shards` — hash-partitioning of keyed state
  across replica groups.
- :mod:`repro.replication.client` — the routing client: resolves shard →
  current primary, retries through election windows, load-balances reads
  across caught-up backups with an explicit consistency knob.
- :mod:`repro.replication.services` — state machines and client facades
  for the three existing services.
"""

from repro.replication.client import GroupClient, ShardedClient
from repro.replication.log import LogEntry, OpLog
from repro.replication.replica import (
    Outcome,
    ReplicaNode,
    ReplicationParams,
    StateMachine,
    deploy_group,
    deploy_sharded,
)
from repro.replication.shards import ShardMap

__all__ = [
    "GroupClient",
    "LogEntry",
    "OpLog",
    "Outcome",
    "ReplicaNode",
    "ReplicationParams",
    "ShardMap",
    "ShardedClient",
    "StateMachine",
    "deploy_group",
    "deploy_sharded",
]
