"""Runnable failover demo: a 3-replica x 4-shard replicated ledger.

Stands up four replica groups (one per shard) over the same three nodes
on an in-memory virtual-time fabric, deposits into a handful of
accounts through a :class:`~repro.replication.services.ShardedLedger`,
then crashes the primary of *every* shard mid-run. The Bully election
promotes a survivor per group, the client's redirect/failover logic
re-routes without application changes, and the demo prints the balances
before and after to show no acknowledged deposit was lost.

Run it with::

    PYTHONPATH=src python -m repro.replication.demo

Everything is virtual time, so the output is deterministic.
"""

from __future__ import annotations

from repro.replication.client import ShardedClient
from repro.replication.replica import ReplicationParams, deploy_sharded
from repro.replication.services import LedgerMachine, ShardedLedger
from repro.transport.inmemory import InMemoryFabric

REPLICAS = ("r0", "r1", "r2")  # r2 (highest id) starts as every primary
NUM_SHARDS = 4
ACCOUNTS = ("alice", "bob", "carol", "dave", "erin", "frank")

PARAMS = ReplicationParams(
    hb_interval_s=0.3,
    hb_timeout_multiplier=3.0,
    elect_timeout_s=0.3,
    sync_timeout_s=0.3,
    coord_timeout_s=0.8,
    beacon_interval_s=0.3,
    write_timeout_s=3.0,
)


def main() -> int:
    fabric = InMemoryFabric(latency_s=0.001)
    sim = fabric.sim

    shard_map, replicas = deploy_sharded(
        lambda node, port: fabric.endpoint(node, port),
        REPLICAS, NUM_SHARDS, LedgerMachine, port="led", params=PARAMS,
    )
    client = ShardedClient(
        lambda shard: fabric.endpoint("app", f"led.c{shard}"),
        shard_map,
        request_timeout_s=0.5, max_attempts=16,
    )
    ledger = ShardedLedger(client)

    placement = {a: shard_map.shard_of(a) for a in ACCOUNTS}
    print(f"{NUM_SHARDS} shards x {len(REPLICAS)} replicas, "
          f"accounts -> shards: {placement}")

    # Phase 1: deposits with every shard's initial primary (r2) healthy.
    before = [ledger.deposit(f"d{i}", a, 100)
              for i, a in enumerate(ACCOUNTS)]
    sim.run_until(2.0)
    assert all(p.fulfilled for p in before), "healthy-phase deposits hung"
    print("t=2.0  deposited 100 into each account via primary r2")

    # Phase 2: kill r2 — the current primary of all four groups.
    for shard in range(NUM_SHARDS):
        replicas[shard]["r2"].close()
    print("t=2.0  crashed r2 (primary of every shard)")

    # Deposits issued while elections run: the client retries through
    # redirects until each group's new primary (r1) answers.
    during = [ledger.deposit(f"e{i}", a, 10)
              for i, a in enumerate(ACCOUNTS)]
    sim.run_until(8.0)
    assert all(p.fulfilled for p in during), "failover deposits hung"

    for shard in range(NUM_SHARDS):
        roles = {n: r.role for n, r in replicas[shard].items()
                 if n != "r2"}
        terms = {n: r.term for n, r in replicas[shard].items()
                 if n != "r2"}
        primaries = [n for n, role in roles.items() if role == "primary"]
        assert primaries == ["r1"], (shard, roles)
        print(f"t=8.0  shard {shard}: primary={primaries[0]} "
              f"terms={terms}")

    # Phase 3: balances from the survivors — every ack survived.
    reads = {a: ledger.balance(a) for a in ACCOUNTS}
    sim.run_until(9.0)
    balances = {a: p.result() for a, p in reads.items()}
    print(f"t=9.0  balances: {balances}")
    assert all(v == 110 for v in balances.values()), balances

    client.close()
    for shard in range(NUM_SHARDS):
        for node in ("r0", "r1"):
            replicas[shard][node].close()
    print("ok: all deposits survived the primary crash on every shard")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
