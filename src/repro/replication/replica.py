"""Primary–backup replica nodes with quorum commit and term fencing.

Each :class:`ReplicaNode` hosts one deterministic :class:`StateMachine`
behind the replicated :class:`~repro.replication.log.OpLog`. One member is
the *primary* for the current *term*: it appends client commands to its
log, replicates them to the backups, advances the commit index once an ack
quorum (majority of the group, counting itself) has the entry, applies in
index order, and answers the client. Backups append what the primary sends,
apply up to the piggybacked commit index, and serve reads for clients that
opted into relaxed consistency.

Safety rests on three invariants (see ARCHITECTURE §14):

- **Term fencing** — every replication message carries the sender's term.
  A receiver with a higher term answers ``fenced`` instead of obeying; a
  primary that sees ``fenced`` steps down and fails its in-flight commands
  with ``deposed``. A deposed primary's stale appends therefore cannot
  overwrite state owned by a newer term.
- **Quorum intersection** — an entry commits only when a majority has it,
  and a candidate only wins election after syncing logs from a majority
  (:mod:`repro.replication.election`), so every committed entry survives
  into the next term.
- **Commit-prefix immutability** — conflict truncation and repair never
  cross the commit watermark (:class:`~repro.replication.log.OpLog`
  enforces this structurally).

Reads at the primary are linearizable, gated on the primary still seeing an
unsuspected majority: with equal heartbeat parameters group-wide, a deposed
primary loses that view strictly before any new primary can have committed
a conflicting write (detection on the majority side happens no later, and
election adds strictly positive time on top).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.interop.codec import Codec, get_codec, try_decode_dict
from repro.interop.frames import WireFrame
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.recovery.heartbeat import HeartbeatDetector
from repro.replication.log import LogEntry, OpLog
from repro.transport.base import Address, Transport


@dataclass(frozen=True)
class Outcome:
    """Result of applying one op to a :class:`StateMachine`.

    ``pending`` marks a blocking op (tuple-space ``in``/``rd`` with no
    match) whose result arrives later via another op's ``wakeups`` — a
    tuple of ``(rid, result)`` pairs resolved by this application.
    """

    result: Any = None
    wakeups: Tuple[Tuple[str, Any], ...] = ()
    pending: bool = False


class StateMachine:
    """A deterministic state machine replicated by :class:`ReplicaNode`.

    ``apply`` must be a pure function of (current state, name, args): every
    replica applies the same log prefix and must land in the same state.
    Reads never mutate. Snapshots must round-trip through ``restore`` and
    capture *all* state, including registered blocking waiters.
    """

    def apply(self, name: str, args: Tuple[Any, ...]) -> Outcome:
        raise NotImplementedError

    def read(self, name: str, args: Tuple[Any, ...]) -> Any:
        raise NotImplementedError

    def snapshot(self) -> Any:
        raise NotImplementedError

    def restore(self, snapshot: Any) -> None:
        raise NotImplementedError

    def pending_rids(self) -> Iterable[str]:
        """Rids of blocking ops applied but not yet woken (for failover)."""
        return ()


NOOP = "__noop"


@dataclass(frozen=True)
class ReplicationParams:
    """Tunables for one replica group. Defaults suit the simulator's
    low-latency fabrics; chaos campaigns override with coarser timers."""

    hb_interval_s: float = 0.5
    hb_timeout_multiplier: float = 3.0
    elect_timeout_s: float = 0.6
    sync_timeout_s: float = 0.6
    coord_timeout_s: float = 1.2
    beacon_interval_s: float = 0.5
    write_timeout_s: float = 4.0
    compact_every: int = 0  # retained entries before compaction; 0 = never
    service_delay_s: float = 0.0  # per-request service time (read scaling)


@dataclass
class _PendingCmd:
    source: Address
    rid: str
    timer: Any = None


class ReplicaNode:
    """One member of a replica group."""

    def __init__(
        self,
        transport: Transport,
        hb_transport: Transport,
        members: Sequence[str],
        machine: StateMachine,
        params: Optional[ReplicationParams] = None,
        initial_leader: Optional[str] = None,
        group: str = "g0",
        codec: Optional[Codec] = None,
    ):
        from repro.replication.election import BullyElection

        self.transport = transport
        self.hb_transport = hb_transport
        self.codec = codec if codec is not None else get_codec("binary")
        self.params = params if params is not None else ReplicationParams()
        self.group = group
        self.node_id = transport.local_address.node
        self.port = transport.local_address.port
        self.members = sorted(members)
        if self.node_id not in self.members:
            raise ConfigurationError(
                f"{self.node_id} is not in members {self.members}"
            )
        self.peers = [m for m in self.members if m != self.node_id]
        self.majority = len(self.members) // 2 + 1
        self.machine = machine
        self.scheduler = transport.scheduler

        self.term = 1
        self.leader: Optional[str] = (
            initial_leader if initial_leader is not None else self.members[-1]
        )
        self.role = "primary" if self.leader == self.node_id else "backup"
        self.log = OpLog()
        self.applied_index = 0
        self.closed = False
        self.malformed_frames = 0

        # rid -> (result, index) for every applied op: the at-most-once
        # cache. Populated on *every* replica so a freshly elected primary
        # can answer a client's retry of an op the old primary committed.
        self._results: Dict[str, Tuple[Any, int]] = {}
        # rid -> index for logged-but-not-yet-applied entries.
        self._logged_rids: Dict[str, int] = {}
        # Applied blocking ops still waiting for a wakeup.
        self._parked: set = set()
        # rid -> client address for blocking ops to answer on wakeup.
        self._blocked: Dict[str, Address] = {}
        # index -> in-flight client command (primary only).
        self._pending: Dict[int, _PendingCmd] = {}
        # peer -> highest log index known replicated there (primary only).
        self._match: Dict[str, int] = {p: 0 for p in self.peers}

        self._busy_until = 0.0
        self._beacon_timer: Any = None

        registry = get_registry()
        self._m_appends = registry.counter("repl.log.appends", group=group)
        self._m_commits = registry.counter("repl.log.commits", group=group)
        self._m_catchups = registry.counter("repl.log.catchups", group=group)
        self._m_reads_primary = registry.counter("repl.reads.primary", group=group)
        self._m_reads_backup = registry.counter("repl.reads.backup", group=group)
        self._m_reads_stale = registry.counter(
            "repl.reads.stale_rejected", group=group
        )
        self._g_term = registry.gauge(
            "repl.election.term", group=group, node=self.node_id
        )
        self._g_term.set(self.term)

        transport.set_receiver(self._on_message)

        self.detector = HeartbeatDetector(
            hb_transport,
            interval_s=self.params.hb_interval_s,
            timeout_multiplier=self.params.hb_timeout_multiplier,
            codec=self.codec,
        )
        hb_port = hb_transport.local_address.port
        for peer in self.peers:
            self.detector.send_to(Address(peer, hb_port))
            self.detector.watch(peer)
        self.detector.on_suspect(self._peer_suspected)

        self.election = BullyElection(self)
        if self.role == "primary":
            self._start_beacon()

    # ------------------------------------------------------------- plumbing

    def _send(self, destination: Address, message: Dict[str, Any]) -> None:
        # Message dicts ride in lazy frames (encoded only if a lower layer
        # needs real bytes); fan-out paths pass a prebuilt WireFrame so the
        # whole group shares one potential encode.
        if not self.transport.closed:
            if not isinstance(message, WireFrame):
                message = WireFrame(message, self.codec)
            self.transport.send(destination, message)

    def send_to_member(self, member: str, message: Dict[str, Any]) -> None:
        self._send(Address(member, self.port), message)

    def _quorum_alive(self) -> bool:
        """Does this node still see an unsuspected majority (incl. itself)?"""
        alive = 1 + sum(
            1 for p in self.peers if not self.detector.suspected(p)
        )
        return alive >= self.majority

    def _peer_suspected(self, node_id: str) -> None:
        if self.closed:
            return
        if node_id == self.leader and self.role != "primary":
            self.election.start()

    # ------------------------------------------------------------- messages

    def _on_message(self, source: Address, payload: bytes) -> None:
        if self.closed:
            return
        message = try_decode_dict(self.codec, payload)
        if message is None:
            self.malformed_frames += 1
            return
        op = message.get("op")
        if op == "cmd":
            self._enqueue_cmd(source, message)
            return
        # Everything else is group-internal; ignore strangers.
        if source.node not in self.members:
            return
        if op == "append":
            self._on_append(source, message)
        elif op == "append_ack":
            self._on_append_ack(source, message)
        elif op == "need_catchup":
            self._on_need_catchup(source, message)
        elif op == "fenced":
            self._on_fenced(message)
        elif op == "snapshot":
            self._on_snapshot(source, message)
        elif op == "elect":
            self.election.on_elect(source.node, int(message.get("term", 0)))
        elif op == "elect_ok":
            self.election.on_elect_ok(int(message.get("term", 0)))
        elif op == "coord":
            self._on_coord(source, message)
        elif op == "sync_req":
            self._on_sync_req(source, message)
        elif op == "sync":
            self.election.on_sync(
                source.node,
                int(message.get("term", 0)),
                int(message.get("commit", 0)),
                [LogEntry.from_wire(e) for e in message.get("entries", [])],
            )

    # -------------------------------------------------------- client traffic

    def _enqueue_cmd(self, source: Address, message: Dict[str, Any]) -> None:
        """Admit a client command through the service-time queue.

        ``service_delay_s`` models per-request service time at this member:
        requests occupy the member FIFO-style, which is what makes read
        throughput scale with the number of backups serving relaxed reads
        (see benchmarks/bench_replication.py).
        """
        delay = self.params.service_delay_s
        if delay <= 0:
            self._on_cmd(source, message)
            return
        now = self.scheduler.now()
        start = max(now, self._busy_until)
        self._busy_until = start + delay
        self.scheduler.schedule(
            self._busy_until - now, self._on_cmd, source, message
        )

    def _on_cmd(self, source: Address, message: Dict[str, Any]) -> None:
        if self.closed:
            return
        rid = message.get("rid")
        name = message.get("name")
        if not isinstance(rid, str) or not isinstance(name, str):
            self.malformed_frames += 1
            return
        args = tuple(message.get("args", ()))
        if message.get("read"):
            self._on_read(source, rid, name, args, message)
            return
        # At-most-once: an already-applied rid answers from the cache.
        cached = self._results.get(rid)
        if cached is not None:
            result, index = cached
            self._send(
                source,
                {"op": "cmd_ack", "rid": rid, "result": result, "index": index},
            )
            return
        if self.role != "primary":
            self._send(
                source,
                {
                    "op": "redirect",
                    "rid": rid,
                    "leader": self.leader,
                    "term": self.term,
                },
            )
            return
        if rid in self._parked:
            # Blocking op already applied, still waiting for its wakeup:
            # remember where to send the eventual answer.
            self._blocked[rid] = source
            return
        logged = self._logged_rids.get(rid)
        if logged is not None:
            # Retry of an in-flight write: re-attach the client, no re-append.
            pend = self._pending.get(logged)
            if pend is not None:
                pend.source = source
            else:
                self._arm_pending(logged, source, rid)
            return
        if not self._quorum_alive():
            self._send(
                source, {"op": "cmd_err", "rid": rid, "error": "no_quorum"}
            )
            return
        entry = self.log.append(self.term, rid, name, args)
        self._logged_rids[rid] = entry.index
        self._m_appends.inc()
        self._arm_pending(entry.index, source, rid)
        self._replicate([entry])
        self._maybe_commit()

    def _on_read(
        self,
        source: Address,
        rid: str,
        name: str,
        args: Tuple[Any, ...],
        message: Dict[str, Any],
    ) -> None:
        mode = message.get("mode", "primary")
        if self.role == "primary":
            if not self._quorum_alive():
                # Possibly deposed (partitioned minority): a newer primary
                # may exist, so a "linearizable" answer here could be stale.
                self._send(
                    source, {"op": "cmd_err", "rid": rid, "error": "no_quorum"}
                )
                return
            self._m_reads_primary.inc()
            self._answer_read(source, rid, name, args)
            return
        if mode == "primary":
            self._send(
                source,
                {
                    "op": "redirect",
                    "rid": rid,
                    "leader": self.leader,
                    "term": self.term,
                },
            )
            return
        min_index = int(message.get("min_index", 0))
        if self.applied_index < min_index:
            self._m_reads_stale.inc()
            self._send(
                source,
                {
                    "op": "stale",
                    "rid": rid,
                    "applied": self.applied_index,
                    "leader": self.leader,
                },
            )
            return
        self._m_reads_backup.inc()
        self._answer_read(source, rid, name, args)

    def _answer_read(
        self, source: Address, rid: str, name: str, args: Tuple[Any, ...]
    ) -> None:
        result = self.machine.read(name, args)
        self._send(
            source,
            {
                "op": "cmd_ack",
                "rid": rid,
                "result": result,
                "index": self.applied_index,
            },
        )

    def _arm_pending(self, index: int, source: Address, rid: str) -> None:
        pend = _PendingCmd(source, rid)
        pend.timer = self.scheduler.schedule(
            self.params.write_timeout_s, self._write_timeout, index
        )
        self._pending[index] = pend

    def _write_timeout(self, index: int) -> None:
        pend = self._pending.pop(index, None)
        if pend is None or self.closed:
            return
        # The entry stays in the log: if it commits later, the apply path
        # fills the result cache and the client's retry dedups against it.
        self._send(
            pend.source,
            {"op": "cmd_err", "rid": pend.rid, "error": "no_quorum"},
        )

    # ---------------------------------------------------------- replication

    def _replicate(
        self,
        entries: List[LogEntry],
        repair_from: Optional[int] = None,
        only: Optional[str] = None,
    ) -> None:
        first = repair_from if repair_from is not None else (
            entries[0].index if entries else self.log.last_index + 1
        )
        prev_index = first - 1
        prev_term = self.log.term_at(prev_index)
        message = {
            "op": "append",
            "term": self.term,
            "commit": self.log.commit_index,
            "prev": prev_index,
            "prev_term": prev_term if prev_term is not None else -1,
            "entries": [e.to_wire() for e in entries],
        }
        if repair_from is not None:
            message["repair"] = True
            message["from"] = repair_from
        targets = [only] if only is not None else self.peers
        message = WireFrame(message, self.codec)
        if TRACER.enabled:
            with TRACER.span(
                "repl.append",
                group=self.group,
                node=self.node_id,
                entries=len(entries),
                term=self.term,
            ):
                for peer in targets:
                    self.send_to_member(peer, message)
        else:
            for peer in targets:
                self.send_to_member(peer, message)

    def _start_beacon(self) -> None:
        self._cancel_beacon()
        self._beacon_timer = self.scheduler.schedule(
            self.params.beacon_interval_s, self._beacon
        )

    def _cancel_beacon(self) -> None:
        if self._beacon_timer is not None:
            self._beacon_timer.cancel()
            self._beacon_timer = None

    def _beacon(self) -> None:
        if self.closed or self.role != "primary":
            return
        self._replicate([])
        self._beacon_timer = self.scheduler.schedule(
            self.params.beacon_interval_s, self._beacon
        )

    def _on_append(self, source: Address, message: Dict[str, Any]) -> None:
        term = int(message.get("term", 0))
        if term < self.term:
            self.send_to_member(source.node, {"op": "fenced", "term": self.term})
            return
        self._adopt_leader(term, source.node)
        entries = [LogEntry.from_wire(e) for e in message.get("entries", [])]
        if message.get("repair"):
            self._apply_repair(int(message["from"]), entries)
        else:
            prev_index = int(message.get("prev", 0))
            prev_term = int(message.get("prev_term", -1))
            if not self._prefix_matches(prev_index, prev_term):
                self._request_catchup()
                return
            for entry in entries:
                if entry.index <= self.log.snapshot_index:
                    continue
                existing = self.log.entry(entry.index)
                if existing is not None:
                    if existing.term == entry.term:
                        continue
                    self._truncate_from(entry.index)
                if entry.index > self.log.last_index + 1:
                    self._request_catchup()
                    return
                self.log.extend([entry])
                self._logged_rids[entry.rid] = entry.index
        commit = int(message.get("commit", 0))
        if commit > self.log.last_index:
            # The primary has committed entries we do not hold yet.
            self._advance_commit(self.log.last_index)
            self._request_catchup()
            return
        self._advance_commit(commit)
        self.send_to_member(
            source.node,
            {"op": "append_ack", "term": self.term, "index": self.log.last_index},
        )

    def _prefix_matches(self, prev_index: int, prev_term: int) -> bool:
        if prev_index <= self.log.snapshot_index:
            # Our snapshot covers it: committed prefixes agree by invariant.
            return True
        if prev_index > self.log.last_index:
            return False
        local = self.log.term_at(prev_index)
        return local is not None and local == prev_term

    def _request_catchup(self) -> None:
        if self.leader is None or self.leader == self.node_id:
            return
        self.send_to_member(
            self.leader,
            {"op": "need_catchup", "from": self.log.commit_index + 1},
        )

    def _apply_repair(self, from_index: int, entries: List[LogEntry]) -> None:
        """Adopt the primary's authoritative tail starting at ``from_index``.

        The local log is made to match exactly: conflicting suffixes are
        truncated (never below commit — committed prefixes agree across the
        group by quorum intersection) and trailing local junk beyond the
        repair is dropped.
        """
        if from_index > self.log.last_index + 1:
            self._request_catchup()
            return
        for entry in entries:
            if entry.index <= self.log.snapshot_index:
                continue
            if entry.index <= self.log.commit_index:
                continue  # committed prefix already agrees
            existing = self.log.entry(entry.index)
            if existing is not None and existing.term != entry.term:
                self._truncate_from(entry.index)
                existing = None
            if existing is None:
                if entry.index > self.log.last_index + 1:
                    self._request_catchup()
                    return
                self.log.extend([entry])
                self._logged_rids[entry.rid] = entry.index
        tail_end = entries[-1].index if entries else from_index - 1
        if self.log.last_index > tail_end:
            self._truncate_from(max(tail_end + 1, self.log.commit_index + 1))

    def _truncate_from(self, index: int) -> None:
        for entry in self.log.entries_from(index):
            self._logged_rids.pop(entry.rid, None)
            pend = self._pending.pop(entry.index, None)
            if pend is not None:
                if pend.timer is not None:
                    pend.timer.cancel()
                self._send(
                    pend.source,
                    {"op": "cmd_err", "rid": pend.rid, "error": "deposed"},
                )
        self.log.truncate_from(index)

    def _on_append_ack(self, source: Address, message: Dict[str, Any]) -> None:
        term = int(message.get("term", 0))
        if term > self.term:
            self._step_down(term)
            return
        if self.role != "primary":
            return
        index = int(message.get("index", 0))
        if index > self._match.get(source.node, 0):
            self._match[source.node] = index
        self._maybe_commit()

    def _maybe_commit(self) -> None:
        if self.role != "primary":
            return
        new_commit = self.log.commit_index
        for idx in range(self.log.commit_index + 1, self.log.last_index + 1):
            acks = 1 + sum(1 for m in self._match.values() if m >= idx)
            if acks < self.majority:
                break
            # Only entries of the current term commit by counting (the
            # standard safety rule); older-term entries commit transitively
            # when a current-term entry above them does.
            if self.log.term_at(idx) == self.term:
                new_commit = idx
        if new_commit > self.log.commit_index:
            self._advance_commit(new_commit)
            # Propagate the new commit index promptly (idle backups would
            # otherwise wait for the next beacon).
            self._replicate([])

    def _advance_commit(self, new_commit: int) -> None:
        new_commit = min(new_commit, self.log.last_index)
        while self.log.commit_index < new_commit:
            self.log.commit_index += 1
            entry = self.log.entry(self.log.commit_index)
            self._m_commits.inc()
            self._apply(entry)
        if (
            self.params.compact_every
            and self.log.commit_index - self.log.snapshot_index
            >= self.params.compact_every
        ):
            self.log.compact_to(self.applied_index)

    def _apply(self, entry: LogEntry) -> None:
        self.applied_index = entry.index
        self._logged_rids.pop(entry.rid, None)
        if entry.name == NOOP:
            outcome = Outcome(result=None)
        else:
            outcome = self.machine.apply(entry.name, entry.args)
        if outcome.pending:
            self._parked.add(entry.rid)
        else:
            self._results[entry.rid] = (outcome.result, entry.index)
        for wrid, wresult in outcome.wakeups:
            self._results[wrid] = (wresult, entry.index)
            self._parked.discard(wrid)
            waiter = self._blocked.pop(wrid, None)
            if waiter is not None and self.role == "primary":
                self._send(
                    waiter,
                    {
                        "op": "cmd_ack",
                        "rid": wrid,
                        "result": wresult,
                        "index": entry.index,
                    },
                )
        pend = self._pending.pop(entry.index, None)
        if pend is not None:
            if pend.timer is not None:
                pend.timer.cancel()
            if outcome.pending:
                self._blocked[pend.rid] = pend.source
            else:
                self._send(
                    pend.source,
                    {
                        "op": "cmd_ack",
                        "rid": pend.rid,
                        "result": outcome.result,
                        "index": entry.index,
                    },
                )

    # ------------------------------------------------------------- catch-up

    def _on_need_catchup(self, source: Address, message: Dict[str, Any]) -> None:
        if self.role != "primary":
            return
        from_index = int(message.get("from", 1))
        self._m_catchups.inc()
        if from_index <= self.log.snapshot_index:
            # The requested prefix is compacted away: state-transfer the
            # applied snapshot, then repair the remaining tail.
            self.send_to_member(
                source.node,
                {
                    "op": "snapshot",
                    "term": self.term,
                    "index": self.applied_index,
                    "sterm": self.log.term_at(self.applied_index),
                    "state": self.machine.snapshot(),
                    "commit": self.log.commit_index,
                },
            )
            tail = self.log.entries_from(self.applied_index + 1)
            self._replicate(
                tail, repair_from=self.applied_index + 1, only=source.node
            )
        else:
            self._replicate(
                self.log.entries_from(from_index),
                repair_from=from_index,
                only=source.node,
            )

    def _on_snapshot(self, source: Address, message: Dict[str, Any]) -> None:
        term = int(message.get("term", 0))
        if term < self.term:
            self.send_to_member(source.node, {"op": "fenced", "term": self.term})
            return
        self._adopt_leader(term, source.node)
        index = int(message.get("index", 0))
        if index <= self.log.commit_index:
            return  # stale snapshot; we are already past it
        self.machine.restore(message.get("state"))
        self.log.reset(index, int(message.get("sterm", 0)))
        self.applied_index = index
        self._logged_rids.clear()
        self._parked = set(self.machine.pending_rids())
        self.send_to_member(
            source.node,
            {"op": "append_ack", "term": self.term, "index": self.log.last_index},
        )

    # -------------------------------------------------------------- fencing

    def _on_fenced(self, message: Dict[str, Any]) -> None:
        term = int(message.get("term", 0))
        if term > self.term:
            self._step_down(term)
        self.election.on_fenced(term)

    def _step_down(self, term: int) -> None:
        """A newer term exists: become a backup and fail in-flight writes."""
        self.term = max(self.term, term)
        self._g_term.set(self.term)
        if self.role == "primary":
            self.role = "backup"
            self.leader = None
            self._cancel_beacon()
            for index in sorted(self._pending):
                pend = self._pending[index]
                if pend.timer is not None:
                    pend.timer.cancel()
                self._send(
                    pend.source,
                    {"op": "cmd_err", "rid": pend.rid, "error": "deposed"},
                )
            self._pending.clear()
        self.leader = None
        self.election.note_deposed()

    def _adopt_leader(self, term: int, leader: str) -> None:
        if term > self.term or self.leader != leader:
            self.term = max(self.term, term)
            self._g_term.set(self.term)
            if self.role == "primary" and leader != self.node_id:
                self._step_down(term)
            self.leader = leader
            self.role = "primary" if leader == self.node_id else "backup"
            self.election.cancel()

    def _on_coord(self, source: Address, message: Dict[str, Any]) -> None:
        term = int(message.get("term", 0))
        if term < self.term:
            self.send_to_member(source.node, {"op": "fenced", "term": self.term})
            return
        self._adopt_leader(term, str(message.get("leader", source.node)))

    def _on_sync_req(self, source: Address, message: Dict[str, Any]) -> None:
        term = int(message.get("term", 0))
        if term < self.term:
            self.send_to_member(source.node, {"op": "fenced", "term": self.term})
            return
        if term > self.term:
            # Adopting the candidate's term fences the old primary during
            # the sync window, before the winner's first append.
            self._step_down(term)
        from_index = int(message.get("from_index", 1))
        entries = self.log.entries_from(max(from_index, self.log.first_index))
        self.send_to_member(
            source.node,
            {
                "op": "sync",
                "term": term,
                "commit": self.log.commit_index,
                "entries": [e.to_wire() for e in entries],
            },
        )

    # ------------------------------------------------------------- election

    def become_primary(
        self,
        term: int,
        replies: Dict[str, Tuple[int, List[LogEntry]]],
    ) -> None:
        """Called by the election once a majority has synced logs with us."""
        self.term = term
        self._g_term.set(term)
        base = self.log.commit_index
        best: Dict[int, LogEntry] = {
            e.index: e for e in self.log.entries_from(base + 1)
        }
        max_commit = self.log.commit_index
        for _node, (commit, entries) in sorted(replies.items()):
            max_commit = max(max_commit, commit)
            for entry in entries:
                current = best.get(entry.index)
                if current is None or entry.term > current.term:
                    best[entry.index] = entry
        merged: List[LogEntry] = []
        idx = base + 1
        while idx in best:
            merged.append(best[idx])
            idx += 1
        self._truncate_from(base + 1)
        self.log.extend(merged)
        for entry in merged:
            self._logged_rids[entry.rid] = entry.index
        self.leader = self.node_id
        self.role = "primary"
        self._match = {p: 0 for p in self.peers}
        self._advance_commit(min(max_commit, self.log.last_index))
        self._parked = set(self.machine.pending_rids())
        # A no-op entry of the new term: committing it commits the whole
        # adopted tail (older-term entries cannot commit by counting), and
        # its replication announces term + commit to every backup.
        noop = self.log.append(self.term, f"{NOOP}-{self.group}-{self.term}", NOOP, ())
        self._logged_rids[noop.rid] = noop.index
        self._m_appends.inc()
        for peer in self.peers:
            self.send_to_member(
                peer, {"op": "coord", "term": self.term, "leader": self.node_id}
            )
        self._replicate(
            self.log.entries_from(base + 1), repair_from=base + 1
        )
        self._maybe_commit()
        self._start_beacon()

    # ------------------------------------------------------------ lifecycle

    def snapshot_state(self) -> Any:
        return self.machine.snapshot()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._cancel_beacon()
        self.election.shutdown()
        for pend in self._pending.values():
            if pend.timer is not None:
                pend.timer.cancel()
        self._pending.clear()
        self.detector.stop()
        if not self.transport.closed:
            self.transport.close()
        if not self.hb_transport.closed:
            self.hb_transport.close()


# ------------------------------------------------------------- deployment

TransportFactory = Callable[[str, str], Transport]


def deploy_group(
    transport_factory: TransportFactory,
    node_ids: Sequence[str],
    machine_factory: Callable[[], StateMachine],
    *,
    port: str = "repl",
    params: Optional[ReplicationParams] = None,
    group: str = "g0",
    initial_leader: Optional[str] = None,
) -> Dict[str, ReplicaNode]:
    """Stand up one replica group across ``node_ids``.

    ``transport_factory(node_id, port)`` must return a bound transport;
    each member binds ``port`` (data) and ``port + ".hb"`` (heartbeats).
    The initial primary defaults to the highest node id — the same member
    Bully election would pick — so a cold group starts without a vote.
    """
    members = sorted(node_ids)
    leader = initial_leader if initial_leader is not None else members[-1]
    replicas: Dict[str, ReplicaNode] = {}
    for node_id in members:
        replicas[node_id] = ReplicaNode(
            transport=transport_factory(node_id, port),
            hb_transport=transport_factory(node_id, f"{port}.hb"),
            members=members,
            machine=machine_factory(),
            params=params,
            initial_leader=leader,
            group=group,
        )
    return replicas


def deploy_sharded(
    transport_factory: TransportFactory,
    node_ids: Sequence[str],
    num_shards: int,
    machine_factory: Callable[[], StateMachine],
    *,
    port: str = "repl",
    params: Optional[ReplicationParams] = None,
    group_prefix: str = "shard",
):
    """Stand up ``num_shards`` replica groups over the same node set.

    Returns ``(shard_map, replicas)`` where ``replicas[shard][node]`` is a
    :class:`ReplicaNode` and the :class:`~repro.replication.shards.ShardMap`
    routes keys to the per-shard data ports (``port + ".s<i>"``).
    """
    from repro.replication.shards import ShardMap

    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    members = sorted(node_ids)
    groups = []
    replicas: Dict[int, Dict[str, ReplicaNode]] = {}
    for shard in range(num_shards):
        shard_port = f"{port}.s{shard}"
        replicas[shard] = deploy_group(
            transport_factory,
            members,
            machine_factory,
            port=shard_port,
            params=params,
            group=f"{group_prefix}{shard}",
        )
        groups.append(tuple(Address(n, shard_port) for n in members))
    return ShardMap(tuple(groups)), replicas
