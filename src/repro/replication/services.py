"""Replicated state machines and client facades for the existing services.

Three deterministic :class:`~repro.replication.replica.StateMachine`
implementations mirror the middleware's single-host services — the
idempotent transfer ledger (chaos campaigns / simtest worlds), the
shared-object store (:mod:`repro.transactions.sharedobjects`) and the
tuple space (:mod:`repro.transactions.tuplespace`) — plus thin facades
whose call shapes match the original clients, so unmodified application
code talks to a replicated, sharded deployment.

The tuple-space machine replicates its *waiters* too: a blocking ``in``
with no match is applied on every replica (registering the waiter in
machine state and parking the request), and the ``out`` that later matches
computes the wakeup deterministically during apply — so after a failover
the new primary knows exactly which blocked request owns the tuple, and a
client retry is answered from the replicated result cache instead of
consuming a second tuple.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.replication.client import GroupClient, ShardedClient
from repro.replication.replica import Outcome, StateMachine
from repro.transactions.tuplespace import template_matches
from repro.util.ids import IdGenerator
from repro.util.promise import Promise


# ------------------------------------------------------------------ ledger


class LedgerMachine(StateMachine):
    """Account balances with idempotent, atomic transfers (txid-deduped)."""

    def __init__(self, accounts: Optional[Dict[str, int]] = None):
        self.balances: Dict[str, int] = dict(accounts or {})
        self.applied_txids: set = set()

    def apply(self, name: str, args: Tuple[Any, ...]) -> Outcome:
        if name == "transfer":
            txid, src, dst, amount = args
            if txid in self.applied_txids:
                return Outcome(result=True)
            if self.balances.get(src, 0) < amount:
                return Outcome(result=False)
            self.applied_txids.add(txid)
            self.balances[src] = self.balances.get(src, 0) - amount
            self.balances[dst] = self.balances.get(dst, 0) + amount
            return Outcome(result=True)
        if name == "deposit":
            txid, account, amount = args
            if txid not in self.applied_txids:
                self.applied_txids.add(txid)
                self.balances[account] = self.balances.get(account, 0) + amount
            return Outcome(result=self.balances[account])
        raise ValueError(f"unknown ledger op {name!r}")

    def read(self, name: str, args: Tuple[Any, ...]) -> Any:
        if name == "balance":
            return self.balances.get(args[0], 0)
        if name == "total":
            return sum(self.balances.values())
        if name == "ping":
            return "pong"
        raise ValueError(f"unknown ledger read {name!r}")

    def snapshot(self) -> Any:
        return {
            "balances": dict(self.balances),
            "applied": sorted(self.applied_txids),
        }

    def restore(self, snapshot: Any) -> None:
        self.balances = dict(snapshot["balances"])
        self.applied_txids = set(snapshot["applied"])


class ReplicatedLedger:
    """The chaos/simtest ledger API over one replica group."""

    def __init__(self, client: GroupClient):
        self.client = client

    def transfer(self, txid: str, src: str, dst: str, amount: int) -> Promise:
        # The transaction id is the natural idempotency key: a retry that
        # crosses a failover dedups against the replicated result cache.
        return self.client.command(
            "transfer", txid, src, dst, amount, rid=f"tx:{txid}"
        )

    def deposit(self, txid: str, account: str, amount: int) -> Promise:
        return self.client.command(
            "deposit", txid, account, amount, rid=f"tx:{txid}"
        )

    def balance(self, account: str, mode: str = "primary") -> Promise:
        return self.client.read("balance", account, mode=mode)

    def ping(self) -> Promise:
        return self.client.read("ping")


class ShardedLedger:
    """Account-sharded ledger: per-account ops only (no cross-shard txns)."""

    def __init__(self, client: ShardedClient):
        self.client = client

    def deposit(self, txid: str, account: str, amount: int) -> Promise:
        return self.client.command(
            account, "deposit", txid, account, amount, rid=f"tx:{txid}"
        )

    def balance(self, account: str, mode: str = "primary") -> Promise:
        return self.client.read(account, "balance", account, mode=mode)


# ---------------------------------------------------------- shared objects


class KVMachine(StateMachine):
    """Versioned key→value store matching the shared-object semantics:
    writes return the new version, reads return the value."""

    def __init__(self) -> None:
        self.objects: Dict[str, Tuple[Any, int]] = {}

    def apply(self, name: str, args: Tuple[Any, ...]) -> Outcome:
        if name == "write":
            key, value = args
            version = self.objects.get(key, (None, 0))[1] + 1
            self.objects[key] = (value, version)
            return Outcome(result=version)
        raise ValueError(f"unknown kv op {name!r}")

    def read(self, name: str, args: Tuple[Any, ...]) -> Any:
        if name == "read":
            entry = self.objects.get(args[0])
            return entry[0] if entry is not None else None
        if name == "version":
            entry = self.objects.get(args[0])
            return entry[1] if entry is not None else 0
        raise ValueError(f"unknown kv read {name!r}")

    def snapshot(self) -> Any:
        return {k: [v, ver] for k, (v, ver) in self.objects.items()}

    def restore(self, snapshot: Any) -> None:
        self.objects = {k: (v, ver) for k, (v, ver) in snapshot.items()}


class ReplicatedSharedObjects:
    """The :class:`~repro.transactions.sharedobjects.SharedObjectCache`
    call shape (read fulfills with value, write with new version) over a
    sharded replicated deployment."""

    def __init__(self, client: ShardedClient, read_mode: str = "primary"):
        self.client = client
        self.read_mode = read_mode

    def read(self, key: str, mode: Optional[str] = None) -> Promise:
        return self.client.read(
            key, "read", key, mode=mode if mode is not None else self.read_mode
        )

    def write(self, key: str, value: Any) -> Promise:
        return self.client.command(key, "write", key, value)


# ------------------------------------------------------------- tuple space


class TupleSpaceMachine(StateMachine):
    """Tuple space with *replicated* blocking waiters.

    ``in``/``rd`` carry their request id as an op argument: registering a
    waiter is itself a replicated state change, so every replica knows
    which requests are parked, and wakeups computed by a later ``out`` are
    identical group-wide. Waiter semantics mirror
    :class:`repro.transactions.tuplespace.TupleSpaceServer`: one ``out``
    wakes every waiting read and at most the first matching take.
    """

    def __init__(self) -> None:
        self.tuples: List[List[Any]] = []
        # (rid, template, destructive) in registration order.
        self.waiters: List[Tuple[str, List[Any], bool]] = []

    def apply(self, name: str, args: Tuple[Any, ...]) -> Outcome:
        if name == "out":
            values = list(args[0])
            wakeups: List[Tuple[str, Any]] = []
            consumed = False
            remaining: List[Tuple[str, List[Any], bool]] = []
            for rid, template, destructive in self.waiters:
                if not template_matches(list(template), values):
                    remaining.append((rid, template, destructive))
                    continue
                if destructive:
                    if consumed:
                        remaining.append((rid, template, destructive))
                        continue
                    consumed = True
                wakeups.append((rid, list(values)))
            self.waiters = remaining
            if not consumed:
                self.tuples.append(values)
            return Outcome(result=list(values), wakeups=tuple(wakeups))
        if name == "inp":
            return Outcome(result=self._probe(list(args[0]), remove=True))
        if name in ("in", "rd"):
            template, rid = list(args[0]), args[1]
            found = self._probe(template, remove=(name == "in"))
            if found is not None:
                return Outcome(result=found)
            if all(w[0] != rid for w in self.waiters):
                self.waiters.append((rid, template, name == "in"))
            return Outcome(pending=True)
        raise ValueError(f"unknown tuple-space op {name!r}")

    def _probe(self, template: List[Any], remove: bool) -> Optional[List[Any]]:
        for i, candidate in enumerate(self.tuples):
            if template_matches(template, candidate):
                if remove:
                    del self.tuples[i]
                return list(candidate)
        return None

    def read(self, name: str, args: Tuple[Any, ...]) -> Any:
        if name == "rdp":
            return self._probe(list(args[0]), remove=False)
        if name == "count":
            return len(self.tuples)
        raise ValueError(f"unknown tuple-space read {name!r}")

    def snapshot(self) -> Any:
        return {
            "tuples": [list(t) for t in self.tuples],
            "waiters": [[r, list(t), d] for r, t, d in self.waiters],
        }

    def restore(self, snapshot: Any) -> None:
        self.tuples = [list(t) for t in snapshot["tuples"]]
        self.waiters = [(r, list(t), bool(d)) for r, t, d in snapshot["waiters"]]

    def pending_rids(self) -> Iterable[str]:
        return [rid for rid, _template, _destructive in self.waiters]


class ReplicatedTupleSpace:
    """The :class:`~repro.transactions.tuplespace.TupleSpaceClient` call
    shape over a sharded deployment.

    Tuples shard by their first element (the "kind"), so templates must
    have a concrete (non-wildcard) first element — the same constraint a
    statically partitioned tuple space imposes.
    """

    def __init__(self, client: ShardedClient):
        self.client = client
        # Scope waiter rids to this client's endpoint: rids are replica-side
        # idempotency keys, so two clients must never collide.
        local = client.groups[0].transport.local_address
        self._rids = IdGenerator(f"tsw.{local.node}.{local.port}")

    @staticmethod
    def _key(values: Tuple[Any, ...]) -> str:
        if not values or values[0] is None:
            raise ValueError(
                "sharded tuple space needs a concrete first element"
            )
        return str(values[0])

    def out(self, *values: Any, confirm: bool = False) -> Optional[Promise]:
        promise = self.client.command(self._key(values), "out", list(values))
        return promise if confirm else None

    def rd(self, *template: Any) -> Promise:
        rid = self._rids.next()
        return self.client.command(
            self._key(template), "rd", list(template), rid,
            rid=rid, blocking=True,
        )

    def in_(self, *template: Any) -> Promise:
        rid = self._rids.next()
        return self.client.command(
            self._key(template), "in", list(template), rid,
            rid=rid, blocking=True,
        )

    def rdp(self, *template: Any) -> Promise:
        return self.client.read(self._key(template), "rdp", list(template))

    def inp(self, *template: Any) -> Promise:
        return self.client.command(self._key(template), "inp", list(template))
