"""Bully coordinator election over heartbeat suspicion.

The classic Bully algorithm (Garcia-Molina 1982), adapted to the
replicated log: members are totally ordered by node id, a member that
suspects the primary challenges every *higher* member (``elect``); anyone
higher answers ``elect_ok`` and runs its own round; a candidate that hears
no ``elect_ok`` within the timeout has won the vote — but before taking
office it must **sync**: it requests log tails (``sync_req``) from every
peer and only becomes primary after a majority (counting itself) answered.
Quorum intersection then guarantees the new primary holds every committed
entry; adopting the highest-term entry per index resolves conflicts in
favour of the newest regime.

``sync_req`` doubles as the fence: receivers adopt the candidate's term
immediately, so a deposed primary is rejected (``fenced``) by the quorum
before the winner's first append, not merely after.

A candidate that cannot assemble a sync majority (partitioned minority)
does **not** take office — it backs off and retries, leaving the minority
side with no primary and therefore no writes.

Election is triggered by the failure detector's suspect transition
(:meth:`repro.recovery.heartbeat.HeartbeatDetector.on_suspect`), which
fires exactly once per alive→suspected flip — flapping cannot start
duplicate concurrent rounds. Deterministic under the simulator clock.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.replication.log import LogEntry


class BullyElection:
    """One member's view of the election protocol; owned by a ReplicaNode."""

    def __init__(self, replica) -> None:
        self.replica = replica
        self._phase = "idle"  # idle | waiting_ok | waiting_coord | syncing
        self._proposed_term = replica.term
        self._sync_replies: Dict[str, Tuple[int, List[LogEntry]]] = {}
        self._timer: Any = None
        self._retry_timer: Any = None
        self.rounds = 0
        self._m_rounds = get_registry().counter(
            "repl.election.rounds", group=replica.group
        )

    # ------------------------------------------------------------- triggers

    def start(self) -> None:
        """Begin a round (suspicion of the primary); no-op mid-election."""
        if self.replica.closed or self._phase != "idle":
            return
        self._round()

    def note_deposed(self) -> None:
        """We were fenced/deposed: if no leader announces itself soon, run."""
        self._arm_retry()

    def on_fenced(self, term: int) -> None:
        """A peer rejected our candidacy: a newer regime exists; back off."""
        if self._phase != "idle":
            self.cancel()
            self._arm_retry()

    # -------------------------------------------------------------- the vote

    def _round(self) -> None:
        replica = self.replica
        self.rounds += 1
        self._m_rounds.inc()
        self._proposed_term = max(self._proposed_term, replica.term) + 1
        higher = [m for m in replica.members if m > replica.node_id]
        message = {"op": "elect", "term": self._proposed_term}
        if TRACER.enabled:
            with TRACER.span(
                "repl.election.round",
                group=replica.group,
                node=replica.node_id,
                term=self._proposed_term,
            ):
                for member in higher:
                    replica.send_to_member(member, message)
        else:
            for member in higher:
                replica.send_to_member(member, message)
        if not higher:
            self._begin_sync()
            return
        self._phase = "waiting_ok"
        self._arm(replica.params.elect_timeout_s, self._elect_timeout)

    def _elect_timeout(self) -> None:
        if self._phase == "waiting_ok":
            # No higher member answered: the vote is ours, prove quorum.
            self._begin_sync()

    def on_elect(self, source_node: str, term: int) -> None:
        """A lower-priority member is campaigning: answer and take over."""
        replica = self.replica
        if replica.closed or source_node >= replica.node_id:
            return
        replica.send_to_member(source_node, {"op": "elect_ok", "term": term})
        if replica.role == "primary":
            if replica._quorum_alive():
                # Healthy primary: reassert instead of running a round.
                replica.send_to_member(
                    source_node,
                    {"op": "coord", "term": replica.term, "leader": replica.node_id},
                )
            return
        if self._phase == "idle":
            self.start()

    def on_elect_ok(self, term: int) -> None:
        if self._phase == "waiting_ok" and term == self._proposed_term:
            # A higher member took over; wait for its coordinator announce.
            self._phase = "waiting_coord"
            self._arm(self.replica.params.coord_timeout_s, self._coord_timeout)

    def _coord_timeout(self) -> None:
        if self._phase == "waiting_coord":
            # The higher candidate died mid-election: run again.
            self._round()

    # ------------------------------------------------------------- the sync

    def _begin_sync(self) -> None:
        replica = self.replica
        self._phase = "syncing"
        self._sync_replies = {}
        if not replica.peers:
            self._finish_sync()
            return
        message = {
            "op": "sync_req",
            "term": self._proposed_term,
            "from_index": replica.log.commit_index + 1,
        }
        for peer in replica.peers:
            replica.send_to_member(peer, message)
        self._arm(replica.params.sync_timeout_s, self._finish_sync)

    def on_sync(
        self, node: str, term: int, commit: int, entries: List[LogEntry]
    ) -> None:
        if self._phase != "syncing" or term != self._proposed_term:
            return
        self._sync_replies[node] = (commit, entries)
        if len(self._sync_replies) == len(self.replica.peers):
            self._finish_sync()

    def _finish_sync(self) -> None:
        if self._phase != "syncing":
            return
        self._disarm()
        self._phase = "idle"
        replica = self.replica
        replies = self._sync_replies
        self._sync_replies = {}
        if 1 + len(replies) < replica.majority:
            # Partitioned minority: refuse office, retry until healed.
            self._arm_retry()
            return
        replica.become_primary(self._proposed_term, replies)

    # ------------------------------------------------------------- plumbing

    def cancel(self) -> None:
        """A coordinator announced itself (or we shut down): stand down."""
        self._phase = "idle"
        self._disarm()

    def shutdown(self) -> None:
        """Node closing: cancel everything, including the retry timer."""
        self.cancel()
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    def _arm(self, delay: float, fn) -> None:
        self._disarm()
        self._timer = self.replica.scheduler.schedule(delay, fn)

    def _disarm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm_retry(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        self._retry_timer = self.replica.scheduler.schedule(
            self.replica.params.coord_timeout_s, self._retry
        )

    def _retry(self) -> None:
        self._retry_timer = None
        replica = self.replica
        if replica.closed or self._phase != "idle":
            return
        if replica.leader is None:
            self._round()
