"""Client-side routing for replicated, sharded deployments.

A :class:`GroupClient` talks to one replica group: it tracks a leader
hint, follows ``redirect`` answers, scans the membership when the hint
goes cold, and retries through election windows with capped backoff — so
callers see a Promise that settles once *some* primary commits the op,
however many failovers happened in between.

Read consistency is an explicit knob (``mode``):

- ``"primary"`` (default) — linearizable; served only by a primary that
  still observes a quorum.
- ``"ryw"`` — read-your-writes; any backup whose applied index has reached
  the client's last acked write index may answer (a backup that has not
  answers ``stale`` and the client retries at the primary).
- ``"any"`` — monotonic-prefix-stale; load-balanced round-robin across
  backups, whatever they have applied.

A :class:`ShardedClient` fans a keyspace across per-shard group clients
via a :class:`~repro.replication.shards.ShardMap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import AdmissionRefused, ConfigurationError, DeliveryError
from repro.interop.codec import Codec, get_codec, try_decode_dict
from repro.interop.frames import WireFrame
from repro.replication.shards import ShardMap
from repro.transport.base import Address, Transport
from repro.util.ids import IdGenerator
from repro.util.promise import Promise


@dataclass
class _Request:
    rid: str
    message: Dict[str, Any]
    promise: Promise
    blocking: bool
    read: bool
    attempts: int = 0
    probe: int = 0
    force_primary: bool = False
    target: Optional[Address] = None
    timer: Any = None
    # The request's lazy frame: retransmissions across timeouts/failovers
    # reuse it, so the message encodes at most once per request lifetime.
    wire: Optional[WireFrame] = None


class GroupClient:
    """Routes commands and reads to one replica group."""

    def __init__(
        self,
        transport: Transport,
        members: Sequence[Address],
        *,
        codec: Optional[Codec] = None,
        request_timeout_s: float = 1.0,
        max_attempts: Optional[int] = 12,
        backoff_factor: float = 1.5,
        max_backoff_s: float = 4.0,
        admission: Optional[Any] = None,
        priority: str = "normal",
    ):
        if not members:
            raise ConfigurationError("a group client needs at least one member")
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self.members: List[Address] = sorted(set(members))
        self.request_timeout_s = request_timeout_s
        self.max_attempts = max_attempts
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        # Optional AdmissionController consulted in _submit: a refused
        # request rejects immediately (with retry_after_s) instead of
        # entering the retry/failover machinery and amplifying overload.
        self.admission = admission
        self.priority = priority
        self.scheduler = transport.scheduler
        # Bully picks the highest node id, so that is the best cold guess.
        self._leader: Optional[int] = max(
            range(len(self.members)), key=lambda i: self.members[i].node
        )
        self._rr = 0
        self._requests: Dict[str, _Request] = {}
        local = transport.local_address
        self._rids = IdGenerator(f"c.{local.node}.{local.port}")
        self.seen_index = 0
        self.redirects = 0
        self.failovers = 0
        self.stale_retries = 0
        self.rejections = 0
        self.admission_rejected = 0
        self.malformed_frames = 0
        transport.set_receiver(self._on_message)

    # ------------------------------------------------------------------ API

    def command(
        self, name: str, *args: Any, rid: Optional[str] = None,
        blocking: bool = False,
    ) -> Promise:
        """Replicate one state mutation; fulfills with the applied result.

        ``rid`` is the idempotency key — callers with a natural one (e.g. a
        transaction id) should pass it so retries across failovers dedup.
        ``blocking`` ops (tuple-space ``in``/``rd``) retry indefinitely.
        """
        rid = rid if rid is not None else self._rids.next()
        message = {"op": "cmd", "rid": rid, "name": name, "args": list(args)}
        return self._submit(rid, message, blocking=blocking, read=False)

    def read(self, name: str, *args: Any, mode: str = "primary") -> Promise:
        if mode not in ("primary", "ryw", "any"):
            raise ConfigurationError(f"unknown read mode {mode!r}")
        rid = self._rids.next()
        message = {
            "op": "cmd",
            "rid": rid,
            "name": name,
            "args": list(args),
            "read": True,
            "mode": mode,
            "min_index": self.seen_index if mode == "ryw" else 0,
        }
        return self._submit(rid, message, blocking=False, read=True)

    def close(self) -> None:
        """Cancel timers and reject everything still in flight."""
        for req in list(self._requests.values()):
            self._settle(req)
            if req.promise.pending:
                req.promise.reject(DeliveryError("group client closed"))
        if not self.transport.closed:
            self.transport.close()

    # ------------------------------------------------------------- internals

    def _submit(
        self, rid: str, message: Dict[str, Any], *, blocking: bool, read: bool
    ) -> Promise:
        promise = Promise()
        if self.admission is not None:
            retry_after = self.admission.try_admit(
                self.priority, now=self.scheduler.now()
            )
            if retry_after is not None:
                self.admission_rejected += 1
                promise.reject(AdmissionRefused(
                    f"request {rid} refused by admission class "
                    f"{self.priority!r}", retry_after_s=retry_after,
                ))
                return promise
        request = _Request(
            rid=rid, message=message, promise=promise,
            blocking=blocking, read=read,
        )
        self._requests[rid] = request
        self._send_attempt(request)
        return promise

    def _pick_target(self, request: _Request) -> Address:
        wants_primary = (
            not request.read
            or request.message.get("mode") == "primary"
            or request.force_primary
        )
        if wants_primary:
            if self._leader is not None:
                return self.members[self._leader]
            target = self.members[request.probe % len(self.members)]
            return target
        # Relaxed read: round-robin the members that are not the leader hint.
        candidates = [
            m for i, m in enumerate(self.members) if i != self._leader
        ]
        if not candidates:
            return self.members[self._leader if self._leader is not None else 0]
        target = candidates[self._rr % len(candidates)]
        self._rr += 1
        return target

    def _send_attempt(self, request: _Request) -> None:
        if request.rid not in self._requests:
            return
        if self.transport.closed:
            self._settle(request)
            if request.promise.pending:
                request.promise.reject(DeliveryError("transport closed"))
            return
        request.attempts += 1
        request.target = self._pick_target(request)
        if request.timer is not None:
            request.timer.cancel()
        request.timer = self.scheduler.schedule(
            self.request_timeout_s, self._on_timeout, request.rid,
            request.attempts,
        )
        if request.wire is None:
            request.wire = WireFrame(request.message, self.codec)
        self.transport.send(request.target, request.wire)

    def _on_timeout(self, rid: str, attempt: int) -> None:
        request = self._requests.get(rid)
        if request is None or request.attempts != attempt:
            return
        self.failovers += 1
        if (
            self._leader is not None
            and request.target == self.members[self._leader]
        ):
            self._leader = None  # the hinted leader is not answering
        request.probe += 1
        self._retry(request, immediate=True)

    def _retry(self, request: _Request, immediate: bool) -> None:
        if (
            not request.blocking
            and self.max_attempts is not None
            and request.attempts >= self.max_attempts
        ):
            self._settle(request)
            request.promise.reject(
                DeliveryError(
                    f"request {request.rid} gave up after "
                    f"{request.attempts} attempts"
                )
            )
            return
        if immediate:
            self._send_attempt(request)
            return
        delay = min(
            self.request_timeout_s
            * (self.backoff_factor ** max(0, request.attempts - 1)),
            self.max_backoff_s,
        )
        attempt = request.attempts
        if request.timer is not None:
            request.timer.cancel()
        request.timer = self.scheduler.schedule(
            delay, self._deferred_resend, request.rid, attempt
        )

    def _deferred_resend(self, rid: str, attempt: int) -> None:
        request = self._requests.get(rid)
        if request is None or request.attempts != attempt:
            return
        self._send_attempt(request)

    def _settle(self, request: _Request) -> None:
        if request.timer is not None:
            request.timer.cancel()
            request.timer = None
        self._requests.pop(request.rid, None)

    def _leader_index(self, node: Optional[str]) -> Optional[int]:
        if not node:
            return None
        for i, member in enumerate(self.members):
            if member.node == node:
                return i
        return None

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = try_decode_dict(self.codec, payload)
        if message is None:
            self.malformed_frames += 1
            return
        rid = message.get("rid")
        request = self._requests.get(rid) if isinstance(rid, str) else None
        if request is None:
            return  # late answer for an already-settled request
        op = message.get("op")
        if op == "cmd_ack":
            index = message.get("index", 0)
            if isinstance(index, int) and index > self.seen_index:
                self.seen_index = index
            self._settle(request)
            request.promise.fulfill(message.get("result"))
        elif op == "cmd_err":
            self.rejections += 1
            if message.get("error") == "deposed":
                self._leader = None
                self._retry(request, immediate=True)
            else:  # no_quorum: wait out the election window
                self._leader = None
                request.probe += 1
                self._retry(request, immediate=False)
        elif op == "redirect":
            self.redirects += 1
            leader = self._leader_index(message.get("leader"))
            if leader is not None and leader != self._leader:
                self._leader = leader
                self._retry(request, immediate=True)
            else:
                # The member does not know a (new) leader either: back off.
                if leader is None:
                    self._leader = None
                request.probe += 1
                self._retry(request, immediate=False)
        elif op == "stale":
            self.stale_retries += 1
            request.force_primary = True
            leader = self._leader_index(message.get("leader"))
            if leader is not None:
                self._leader = leader
            self._retry(request, immediate=True)

    # ---------------------------------------------------------------- stats

    def stats(self) -> Dict[str, int]:
        return {
            "redirects": self.redirects,
            "failovers": self.failovers,
            "stale_retries": self.stale_retries,
            "rejections": self.rejections,
            "admission_rejected": self.admission_rejected,
            "in_flight": len(self._requests),
        }


class ShardedClient:
    """Routes a keyspace across replica groups via a :class:`ShardMap`.

    ``transport_factory(shard)`` must return a dedicated client transport
    per shard (transports are single-receiver endpoints).
    """

    def __init__(
        self,
        transport_factory: Callable[[int], Transport],
        shard_map: ShardMap,
        **client_kwargs: Any,
    ):
        self.shard_map = shard_map
        self.groups: List[GroupClient] = [
            GroupClient(
                transport_factory(shard), shard_map.groups[shard],
                **client_kwargs,
            )
            for shard in range(shard_map.num_shards)
        ]

    def group(self, key: str) -> GroupClient:
        return self.groups[self.shard_map.shard_of(key)]

    def command(
        self, key: str, name: str, *args: Any,
        rid: Optional[str] = None, blocking: bool = False,
    ) -> Promise:
        return self.group(key).command(name, *args, rid=rid, blocking=blocking)

    def read(self, key: str, name: str, *args: Any, mode: str = "primary") -> Promise:
        return self.group(key).read(name, *args, mode=mode)

    def close(self) -> None:
        for group in self.groups:
            group.close()

    def stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for group in self.groups:
            for key, value in group.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals
