"""Hash-partitioning of keyed state across replica groups.

A :class:`ShardMap` is an immutable routing table: shard *i* is served by
``groups[i]``, a tuple of member data-port addresses. Keys hash with
``zlib.crc32`` — stable across processes and Python versions, unlike the
builtin ``hash`` whose string seed is randomized per interpreter — so a
client and a test harness always agree on placement.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError
from repro.transport.base import Address


@dataclass(frozen=True)
class ShardMap:
    """Routes keys to replica groups. ``groups[i]`` are shard *i*'s members."""

    groups: Tuple[Tuple[Address, ...], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("a shard map needs at least one group")
        for members in self.groups:
            if not members:
                raise ConfigurationError("every shard needs at least one member")

    @property
    def num_shards(self) -> int:
        return len(self.groups)

    def shard_of(self, key: str) -> int:
        return zlib.crc32(str(key).encode("utf-8")) % len(self.groups)

    def group_for(self, key: str) -> Tuple[Address, ...]:
        return self.groups[self.shard_of(key)]

    @staticmethod
    def build(
        node_ids: Sequence[str], num_shards: int, port: str
    ) -> "ShardMap":
        """All shards over the same node set, data ports ``port + ".s<i>"``."""
        members = sorted(node_ids)
        return ShardMap(
            tuple(
                tuple(Address(n, f"{port}.s{i}") for n in members)
                for i in range(num_shards)
            )
        )
