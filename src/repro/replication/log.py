"""The replicated op log.

Every state mutation travels through a :class:`OpLog`: a monotonically
indexed, term-stamped sequence of :class:`LogEntry` records. Indices are
1-based; index 0 is the empty prefix (term 0). The log tracks a commit
index (everything at or below it is replicated on an ack quorum and safe
to apply) and compaction metadata (``snapshot_index``/``snapshot_term``)
so a primary can discard the applied prefix and bring a far-behind backup
up via state transfer instead of replaying history.

The log itself is deliberately passive — all protocol decisions (when to
append, truncate, or advance commit) live in
:mod:`repro.replication.replica`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LogEntry:
    """One replicated operation.

    ``rid`` is the client-chosen request id used for at-most-once
    application (retries of an already-logged rid never re-append).
    """

    index: int
    term: int
    rid: str
    name: str
    args: Tuple[Any, ...]

    def to_wire(self) -> Dict[str, Any]:
        return {
            "i": self.index,
            "t": self.term,
            "r": self.rid,
            "n": self.name,
            "a": list(self.args),
        }

    @staticmethod
    def from_wire(raw: Dict[str, Any]) -> "LogEntry":
        return LogEntry(
            index=int(raw["i"]),
            term=int(raw["t"]),
            rid=str(raw["r"]),
            name=str(raw["n"]),
            args=tuple(raw["a"]),
        )


class OpLog:
    """A 1-based, compactable op log with a commit watermark."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self.snapshot_index = 0  # everything <= this has been compacted away
        self.snapshot_term = 0
        self.commit_index = 0

    # -------------------------------------------------------------- queries

    @property
    def first_index(self) -> int:
        """Index of the first retained entry (snapshot_index + 1)."""
        return self.snapshot_index + 1

    @property
    def last_index(self) -> int:
        return self.snapshot_index + len(self._entries)

    def entry(self, index: int) -> Optional[LogEntry]:
        """The retained entry at ``index``, or None if absent/compacted."""
        offset = index - self.first_index
        if 0 <= offset < len(self._entries):
            return self._entries[offset]
        return None

    def term_at(self, index: int) -> Optional[int]:
        """Term of the entry at ``index``; 0 for the empty prefix, None if
        unknown (beyond the log, or compacted below the snapshot)."""
        if index == 0:
            return 0
        if index == self.snapshot_index:
            return self.snapshot_term
        entry = self.entry(index)
        return entry.term if entry is not None else None

    def entries_from(self, index: int) -> List[LogEntry]:
        """All retained entries with index >= ``index``."""
        offset = max(0, index - self.first_index)
        return list(self._entries[offset:])

    # ------------------------------------------------------------ mutations

    def append(self, term: int, rid: str, name: str, args: Tuple[Any, ...]) -> LogEntry:
        entry = LogEntry(self.last_index + 1, term, rid, name, tuple(args))
        self._entries.append(entry)
        return entry

    def extend(self, entries: List[LogEntry]) -> None:
        """Append pre-built entries; indices must continue the log exactly."""
        for entry in entries:
            if entry.index != self.last_index + 1:
                raise ConfigurationError(
                    f"log extend out of order: expected index "
                    f"{self.last_index + 1}, got {entry.index}"
                )
            self._entries.append(entry)

    def truncate_from(self, index: int) -> int:
        """Drop every entry with index >= ``index``; returns dropped count.

        Never allowed to cross the commit watermark — committed entries are
        immutable by construction, a caller asking to drop one is a protocol
        bug.
        """
        if index <= self.commit_index:
            raise ConfigurationError(
                f"refusing to truncate committed prefix: index {index} <= "
                f"commit {self.commit_index}"
            )
        offset = max(0, index - self.first_index)
        dropped = len(self._entries) - offset
        if dropped > 0:
            del self._entries[offset:]
        return max(0, dropped)

    def compact_to(self, index: int) -> None:
        """Discard entries at or below ``index`` (must be committed)."""
        if index > self.commit_index:
            raise ConfigurationError(
                f"cannot compact beyond commit: {index} > {self.commit_index}"
            )
        if index <= self.snapshot_index:
            return
        term = self.term_at(index)
        offset = index - self.first_index + 1
        del self._entries[:offset]
        self.snapshot_index = index
        self.snapshot_term = term if term is not None else 0

    def reset(self, index: int, term: int) -> None:
        """Replace the whole log with a snapshot boundary (state transfer)."""
        self._entries = []
        self.snapshot_index = index
        self.snapshot_term = term
        self.commit_index = index
