"""Request-edge admission control with priority classes.

Overload protection starts where work enters the system: an
:class:`AdmissionController` decides, *before* a request is transmitted,
whether the stack can afford to carry it. Section 3.7's prescription —
priority scheduling plus bandwidth reservation — maps directly onto the
existing :class:`~repro.scheduling.bandwidth.BandwidthAllocator`: each
**priority class** is a reserved flow (its guaranteed request rate), and
privileged classes (probes, handoffs, distress traffic) may additionally
borrow unreserved headroom. One conserving mechanism therefore paces both
bytes on links and requests at the edge, and the conservation property in
``tests/test_bandwidth.py`` covers admission too.

A refused request is not an error to hide: :meth:`try_admit` returns the
``retry_after_s`` pacing hint (when the class's bucket will next afford the
request), and the RPC / replication clients surface it by rejecting the
promise with :class:`~repro.errors.AdmissionRefused` carrying that hint —
the caller can back off *exactly* as long as needed instead of guessing.

Metrics: ``admission.admitted`` / ``admission.rejected`` counters labeled
by class, and an ``admission.rejection_fraction`` gauge the overload
governor samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.scheduling.bandwidth import BandwidthAllocator


@dataclass(frozen=True)
class PriorityClass:
    """One admission class: a guaranteed request rate plus privilege.

    ``rate_per_s`` is the sustained admission rate the class is guaranteed;
    ``burst`` how many requests it may admit back-to-back (defaults to one
    second's worth, minimum 1). ``privileged`` classes borrow headroom the
    way the handoff boost does on links.
    """

    name: str
    rate_per_s: float
    burst: Optional[float] = None
    privileged: bool = False

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError(
                f"class {self.name!r} rate must be positive, got {self.rate_per_s!r}"
            )


class AdmissionController:
    """Token-bucket admission with priority classes over one capacity.

    ``capacity_per_s`` is the total request rate the protected resource is
    believed to sustain; classes reserve guaranteed shares of it and the
    remainder is headroom that privileged classes may borrow. ``now_fn``
    supplies (virtual) time — pass the transport scheduler's ``now``.
    """

    def __init__(
        self,
        now_fn: Callable[[], float],
        capacity_per_s: float,
        classes: Iterable[PriorityClass],
        *,
        registry=None,
    ):
        classes = list(classes)
        if not classes:
            raise ConfigurationError("admission control needs at least one class")
        self.now_fn = now_fn
        self._classes: Dict[str, PriorityClass] = {}
        # One request = one "bit": rates are requests/sec, bursts requests.
        # burst_s=1.0 so a class's default burst is one second of its rate.
        self.allocator = BandwidthAllocator(capacity_per_s, burst_s=1.0)
        now = now_fn()
        for cls in classes:
            if cls.name in self._classes:
                raise ConfigurationError(f"duplicate class {cls.name!r}")
            self._classes[cls.name] = cls
            self.allocator.reserve(cls.name, cls.rate_per_s,
                                   privileged=cls.privileged, now=now)
            if cls.burst is not None:
                bucket = self.allocator._flows[cls.name]
                bucket.burst_bits = max(1.0, cls.burst)
                bucket.tokens = min(bucket.tokens, bucket.burst_bits)
        self.admitted = 0
        self.rejected = 0
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._admit_counters = {
            name: registry.counter("admission.admitted", cls=name)
            for name in self._classes
        }
        self._reject_counters = {
            name: registry.counter("admission.rejected", cls=name)
            for name in self._classes
        }
        self._fraction_gauge = registry.gauge("admission.rejection_fraction")

    def classes(self) -> Dict[str, PriorityClass]:
        return dict(self._classes)

    # ------------------------------------------------------------- admission

    def try_admit(self, cls: str = "normal", cost: float = 1.0,
                  now: Optional[float] = None) -> Optional[float]:
        """Admit one request of ``cost`` units for class ``cls``.

        Returns ``None`` when admitted, else the ``retry_after_s`` hint —
        how long until the class (or, for privileged classes, the headroom)
        could afford the request. ``float("inf")`` means "never at this
        cost" (cost exceeds every reachable burst).
        """
        if cls not in self._classes:
            raise ConfigurationError(f"unknown admission class {cls!r}")
        if now is None:
            now = self.now_fn()
        if self.allocator.try_send(cls, cost, now):
            self.admitted += 1
            self._admit_counters[cls].inc()
            self._update_fraction()
            return None
        retry_after = self.allocator.time_until_available(cls, cost, now)
        self.rejected += 1
        self._reject_counters[cls].inc()
        self._update_fraction()
        if TRACER.enabled:
            TRACER.instant("admission.rejected", cls=cls,
                           retry_after_s=round(retry_after, 6)
                           if retry_after != float("inf") else -1.0)
        return retry_after

    def _update_fraction(self) -> None:
        total = self.admitted + self.rejected
        self._fraction_gauge.set(self.rejected / total if total else 0.0)

    # ------------------------------------------------------------ inspection

    @property
    def rejection_fraction(self) -> float:
        """Lifetime rejected / (admitted + rejected); the governor's signal."""
        total = self.admitted + self.rejected
        return self.rejected / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejection_fraction": self.rejection_fraction,
        }
