"""Spatial QoS: the space dimension of consumer QoS.

Section 3.4's canonical example: "a user would like to print a file on the
nearest and 'best matched printer'. Some matching algorithms only consider
logical location, which is not compatible with spatial QoS." This module
scores physical proximity; experiment E3 compares spatial-aware matching
against logical-only matching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


def spatial_score(distance_m: float, scale_m: float) -> float:
    """Proximity score in (0, 1]: exp(-distance/scale).

    ``scale_m`` is the distance at which the score drops to 1/e — pick it
    near "how far is still convenient" for the application (a printer down
    the hall vs. across campus).
    """
    if scale_m <= 0:
        raise ConfigurationError(f"spatial scale must be positive, got {scale_m!r}")
    return math.exp(-max(0.0, distance_m) / scale_m)


@dataclass(frozen=True)
class SpatialPreference:
    """A consumer's spatial QoS term.

    Attributes:
        scale_m: convenience scale for :func:`spatial_score`.
        max_distance_m: hard cutoff; suppliers farther than this are
            infeasible regardless of other merits (None = no cutoff).
        weight: relative weight of proximity in the combined match score.
    """

    scale_m: float = 50.0
    max_distance_m: Optional[float] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.scale_m <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale_m!r}")
        if self.max_distance_m is not None and self.max_distance_m <= 0:
            raise ConfigurationError(
                f"max distance must be positive, got {self.max_distance_m!r}"
            )
        if self.weight < 0:
            raise ConfigurationError(f"weight must be >= 0, got {self.weight!r}")

    def feasible(self, distance_m: float) -> bool:
        return self.max_distance_m is None or distance_m <= self.max_distance_m

    def score(self, distance_m: float) -> float:
        return spatial_score(distance_m, self.scale_m)
