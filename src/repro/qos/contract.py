"""QoS contracts: agreed terms plus runtime compliance tracking.

When discovery binds a consumer to a supplier, the match terms become a
contract. The contract watches a sliding window of delivery observations and
emits ``"violated"`` / ``"repaired"`` events as compliance changes — the
hook the degradation manager (Section 3.4's fault-tolerance requirement)
reacts to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.clock import Clock, ManualClock
from repro.util.events import EventEmitter


@dataclass(frozen=True)
class ContractTerms:
    """What the supplier agreed to deliver.

    Attributes:
        min_success_rate: floor on the windowed fraction of successful
            deliveries.
        max_mean_latency_s: ceiling on the windowed mean delivery latency
            (None = unconstrained).
        window: number of recent observations considered.
        min_observations: compliance is not judged until this many
            observations arrive (avoids flapping on startup).
    """

    min_success_rate: float = 0.9
    max_mean_latency_s: Optional[float] = None
    window: int = 20
    min_observations: int = 5

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_success_rate <= 1.0:
            raise ConfigurationError(
                f"min success rate must be in [0,1], got {self.min_success_rate!r}"
            )
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window!r}")
        if not 0 < self.min_observations <= self.window:
            raise ConfigurationError(
                f"min_observations must be in (0, window], got {self.min_observations!r}"
            )
        if self.max_mean_latency_s is not None and self.max_mean_latency_s <= 0:
            raise ConfigurationError(
                f"max mean latency must be positive, got {self.max_mean_latency_s!r}"
            )


class QoSContract:
    """A live contract between one consumer and one supplier.

    Events (via :attr:`events`):

    * ``"violated"`` (contract) — compliance transitioned to violated.
    * ``"repaired"`` (contract) — compliance restored.
    """

    def __init__(
        self,
        contract_id: str,
        consumer_id: str,
        supplier_id: str,
        terms: ContractTerms = ContractTerms(),
        clock: Optional[Clock] = None,
    ):
        self.contract_id = contract_id
        self.consumer_id = consumer_id
        self.supplier_id = supplier_id
        self.terms = terms
        self.clock = clock if clock is not None else ManualClock()
        self.events = EventEmitter()
        # (success, latency) observations, newest last.
        self._observations: Deque[Tuple[bool, float]] = deque(maxlen=terms.window)
        self._violated = False
        self.violations = 0
        self.total_observations = 0

    # ------------------------------------------------------------ observing

    def observe(self, latency_s: float, success: bool = True) -> None:
        """Record one delivery and re-evaluate compliance."""
        self._observations.append((success, max(0.0, latency_s)))
        self.total_observations += 1
        self._evaluate()

    def observe_failure(self) -> None:
        """Record a delivery that never happened (timeout, supplier down)."""
        self.observe(latency_s=0.0, success=False)

    # ------------------------------------------------------------ evaluating

    @property
    def violated(self) -> bool:
        return self._violated

    def success_rate(self) -> Optional[float]:
        if len(self._observations) < self.terms.min_observations:
            return None
        return sum(1 for ok, _lat in self._observations if ok) / len(self._observations)

    def mean_latency(self) -> Optional[float]:
        successful = [lat for ok, lat in self._observations if ok]
        if len(self._observations) < self.terms.min_observations or not successful:
            return None
        return sum(successful) / len(successful)

    def _compliant(self) -> Optional[bool]:
        """True/False once enough observations exist, else None."""
        rate = self.success_rate()
        if rate is None:
            return None
        if rate < self.terms.min_success_rate:
            return False
        if self.terms.max_mean_latency_s is not None:
            mean = self.mean_latency()
            if mean is None or mean > self.terms.max_mean_latency_s:
                return False
        return True

    def _evaluate(self) -> None:
        compliant = self._compliant()
        if compliant is None:
            return
        if not compliant and not self._violated:
            self._violated = True
            self.violations += 1
            self.events.emit("violated", self)
        elif compliant and self._violated:
            self._violated = False
            self.events.emit("repaired", self)

    def reset_window(self) -> None:
        """Forget past observations (used after rebinding to a new supplier)."""
        self._observations.clear()
        if self._violated:
            self._violated = False
            self.events.emit("repaired", self)
