"""Quality of Service (Section 3.4).

The paper splits QoS three ways and this package mirrors that split:

* **supplier QoS** — what a service can promise: availability, reliability,
  latency, security requirements, power constraints
  (:class:`~repro.qos.spec.SupplierQoS`);
* **consumer QoS** — what an application needs, over time (benefit
  functions, :mod:`repro.qos.benefit`) and space (spatial preferences,
  :mod:`repro.qos.spatial`) (:class:`~repro.qos.spec.ConsumerQoS`);
* **network QoS** — bandwidth, density, traffic
  (:class:`~repro.qos.spec.NetworkQoS`).

:func:`~repro.qos.spec.score_match` combines all three into the matching
score used by service discovery, and :mod:`repro.qos.contract` /
:mod:`repro.qos.monitor` provide the runtime side: contracts, violation
detection, and the graceful-degradation manager.
"""

from repro.qos.benefit import (
    BenefitFunction,
    ConstantBenefit,
    ExponentialDecayBenefit,
    LinearDecayBenefit,
    StepBenefit,
)
from repro.qos.contract import ContractTerms, QoSContract
from repro.qos.monitor import DegradationManager, QoSMonitor
from repro.qos.spatial import SpatialPreference, spatial_score
from repro.qos.spec import ConsumerQoS, MatchScore, NetworkQoS, SupplierQoS, score_match

__all__ = [
    "BenefitFunction",
    "ConstantBenefit",
    "ExponentialDecayBenefit",
    "LinearDecayBenefit",
    "StepBenefit",
    "ContractTerms",
    "QoSContract",
    "DegradationManager",
    "QoSMonitor",
    "SpatialPreference",
    "spatial_score",
    "ConsumerQoS",
    "MatchScore",
    "NetworkQoS",
    "SupplierQoS",
    "score_match",
]
