"""Quality of Service (Section 3.4).

The paper splits QoS three ways and this package mirrors that split:

* **supplier QoS** — what a service can promise: availability, reliability,
  latency, security requirements, power constraints
  (:class:`~repro.qos.spec.SupplierQoS`);
* **consumer QoS** — what an application needs, over time (benefit
  functions, :mod:`repro.qos.benefit`) and space (spatial preferences,
  :mod:`repro.qos.spatial`) (:class:`~repro.qos.spec.ConsumerQoS`);
* **network QoS** — bandwidth, density, traffic
  (:class:`~repro.qos.spec.NetworkQoS`).

:func:`~repro.qos.spec.score_match` combines all three into the matching
score used by service discovery, and :mod:`repro.qos.contract` /
:mod:`repro.qos.monitor` provide the runtime side: contracts, violation
detection, and the graceful-degradation manager. :mod:`repro.qos.admission`
adds request-edge admission control with priority classes — the front door
of the overload-protection path (Section 3.7).
"""

from repro.qos.benefit import (
    BenefitFunction,
    ConstantBenefit,
    ExponentialDecayBenefit,
    LinearDecayBenefit,
    StepBenefit,
)
from repro.qos.contract import ContractTerms, QoSContract
from repro.qos.monitor import DegradationManager, QoSMonitor
from repro.qos.spatial import SpatialPreference, spatial_score
from repro.qos.spec import ConsumerQoS, MatchScore, NetworkQoS, SupplierQoS, score_match


def __getattr__(name):
    # Lazy: repro.qos is imported by discovery (service descriptions embed
    # SupplierQoS), and admission pulls in repro.scheduling → transactions →
    # discovery. Deferring the import breaks that cycle.
    if name in ("AdmissionController", "PriorityClass"):
        from repro.qos import admission

        return getattr(admission, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionController",
    "PriorityClass",
    "BenefitFunction",
    "ConstantBenefit",
    "ExponentialDecayBenefit",
    "LinearDecayBenefit",
    "StepBenefit",
    "ContractTerms",
    "QoSContract",
    "DegradationManager",
    "QoSMonitor",
    "SpatialPreference",
    "spatial_score",
    "ConsumerQoS",
    "MatchScore",
    "NetworkQoS",
    "SupplierQoS",
    "score_match",
]
