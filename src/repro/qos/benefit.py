"""Benefit functions: the time dimension of consumer QoS.

Section 3.4: "It should also include the time constraints of the QoS
(benefit function). The application should receive the data immediately or
with some small delay." A benefit function maps delivery delay to the value
the application derives, in [0, 1]. Real-time applications use a hard
:class:`StepBenefit`; e-mail-like applications use a gentle decay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError


@runtime_checkable
class BenefitFunction(Protocol):
    """Maps a delivery delay (seconds) to application benefit in [0, 1]."""

    def value(self, delay_s: float) -> float:
        ...


@dataclass(frozen=True)
class ConstantBenefit:
    """Delay-insensitive (e-mail): full benefit whenever data arrives."""

    level: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= 1.0:
            raise ConfigurationError(f"benefit level must be in [0,1], got {self.level!r}")

    def value(self, delay_s: float) -> float:
        return self.level


@dataclass(frozen=True)
class StepBenefit:
    """Hard real-time: full benefit up to the deadline, zero after."""

    deadline_s: float

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ConfigurationError(f"deadline must be positive, got {self.deadline_s!r}")

    def value(self, delay_s: float) -> float:
        return 1.0 if delay_s <= self.deadline_s else 0.0


@dataclass(frozen=True)
class LinearDecayBenefit:
    """Soft real-time: full benefit until ``full_until_s``, then a linear
    ramp down to zero at ``zero_at_s``."""

    full_until_s: float
    zero_at_s: float

    def __post_init__(self) -> None:
        if self.full_until_s < 0:
            raise ConfigurationError(f"full_until must be >= 0, got {self.full_until_s!r}")
        if self.zero_at_s <= self.full_until_s:
            raise ConfigurationError(
                f"zero_at ({self.zero_at_s!r}) must exceed full_until ({self.full_until_s!r})"
            )

    def value(self, delay_s: float) -> float:
        if delay_s <= self.full_until_s:
            return 1.0
        if delay_s >= self.zero_at_s:
            return 0.0
        span = self.zero_at_s - self.full_until_s
        return 1.0 - (delay_s - self.full_until_s) / span


@dataclass(frozen=True)
class ExponentialDecayBenefit:
    """Freshness-valuing: benefit halves every ``half_life_s``."""

    half_life_s: float

    def __post_init__(self) -> None:
        if self.half_life_s <= 0:
            raise ConfigurationError(f"half life must be positive, got {self.half_life_s!r}")

    def value(self, delay_s: float) -> float:
        if delay_s <= 0:
            return 1.0
        return math.pow(0.5, delay_s / self.half_life_s)


def expected_benefit(fn: BenefitFunction, expected_delay_s: float) -> float:
    """Benefit at the expected delay, clamped into [0, 1] defensively."""
    return min(1.0, max(0.0, fn.value(max(0.0, expected_delay_s))))
