"""Runtime QoS monitoring and graceful degradation.

Section 3.4: "All QoS characteristics should provide to the middleware tools
to deal with fault tolerance to provide graceful degradation of the system
in the presence of failures."

The :class:`DegradationManager` keeps a consumer bound to the best currently
feasible supplier: when the active supplier's contract is violated (or the
supplier disappears), it re-runs QoS matching over the surviving candidates
and rebinds, relaxing the consumer's hard floors in configured steps if
nothing feasible remains — degrading gracefully instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.qos.contract import ContractTerms, QoSContract
from repro.qos.spec import ConsumerQoS, MatchScore, NetworkQoS, SupplierQoS, rank_matches
from repro.util.clock import Clock, ManualClock
from repro.util.events import EventEmitter
from repro.util.ids import IdGenerator

#: (supplier key, supplier QoS, distance) triples, as discovery provides.
Candidate = Tuple[str, SupplierQoS, Optional[float]]
CandidatesProvider = Callable[[], Sequence[Candidate]]


class QoSMonitor:
    """Aggregates delivered QoS across many contracts (reporting surface)."""

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock if clock is not None else ManualClock()
        self.contracts: Dict[str, QoSContract] = {}
        self.events = EventEmitter()

    def register(self, contract: QoSContract) -> None:
        self.contracts[contract.contract_id] = contract
        contract.events.on("violated", lambda c: self.events.emit("violated", c))
        contract.events.on("repaired", lambda c: self.events.emit("repaired", c))

    def violated_contracts(self) -> List[QoSContract]:
        return [c for c in self.contracts.values() if c.violated]

    def system_success_rate(self) -> Optional[float]:
        rates = [c.success_rate() for c in self.contracts.values()]
        known = [r for r in rates if r is not None]
        if not known:
            return None
        return sum(known) / len(known)


@dataclass(frozen=True)
class DegradationStep:
    """One relaxation of the consumer's hard floors."""

    reliability_delta: float = 0.1
    availability_delta: float = 0.1
    latency_factor: float = 2.0


class DegradationManager:
    """Keeps one consumer bound to the best feasible supplier, degrading
    its requirements stepwise when the world gets worse.

    Events (via :attr:`events`):

    * ``"bound"`` (supplier_key, MatchScore) — new binding chosen.
    * ``"degraded"`` (level) — requirements were relaxed to level ``level``.
    * ``"unsatisfiable"`` () — nothing feasible even fully degraded.
    """

    def __init__(
        self,
        consumer: ConsumerQoS,
        candidates: CandidatesProvider,
        network: NetworkQoS = NetworkQoS(),
        contract_terms: ContractTerms = ContractTerms(),
        degradation_step: DegradationStep = DegradationStep(),
        max_degradation_level: int = 3,
        clock: Optional[Clock] = None,
    ):
        self.base_consumer = consumer
        self.candidates = candidates
        self.network = network
        self.contract_terms = contract_terms
        self.step = degradation_step
        self.max_level = max_degradation_level
        self.clock = clock if clock is not None else ManualClock()
        self.events = EventEmitter()
        self._ids = IdGenerator("contract")
        self.level = 0
        self.current_supplier: Optional[str] = None
        self.current_score: Optional[MatchScore] = None
        self.contract: Optional[QoSContract] = None
        self.rebinds = 0

    # ------------------------------------------------------------ requirements

    def effective_consumer(self) -> ConsumerQoS:
        """The consumer QoS relaxed to the current degradation level."""
        if self.level == 0:
            return self.base_consumer
        reliability = max(
            0.0, self.base_consumer.min_reliability - self.level * self.step.reliability_delta
        )
        availability = max(
            0.0,
            self.base_consumer.min_availability - self.level * self.step.availability_delta,
        )
        latency = self.base_consumer.max_latency_s
        if latency is not None:
            latency = latency * (self.step.latency_factor**self.level)
        return replace(
            self.base_consumer,
            min_reliability=reliability,
            min_availability=availability,
            max_latency_s=latency,
        )

    # --------------------------------------------------------------- binding

    def bind(self) -> Optional[str]:
        """(Re)select the best feasible supplier, degrading as needed.

        Returns the chosen supplier key, or None (after emitting
        ``"unsatisfiable"``) when even fully degraded requirements match
        nothing.
        """
        available = list(self.candidates())
        while True:
            ranked = rank_matches(
                [(key, qos, dist) for key, qos, dist in available],
                self.effective_consumer(),
                self.network,
            )
            if ranked:
                key, score = ranked[0]
                self._bind_to(key, score)
                return key
            if self.level >= self.max_level:
                self.current_supplier = None
                self.current_score = None
                self.contract = None
                self.events.emit("unsatisfiable")
                return None
            self.level += 1
            self.events.emit("degraded", self.level)

    def _bind_to(self, key: str, score: MatchScore) -> None:
        if key != self.current_supplier:
            self.rebinds += 1
        self.current_supplier = key
        self.current_score = score
        contract = QoSContract(
            self._ids.next(), "consumer", key, self.contract_terms, self.clock
        )
        contract.events.on("violated", self._on_violation)
        self.contract = contract
        self.events.emit("bound", key, score)

    def _on_violation(self, _contract: QoSContract) -> None:
        self.bind()

    # ------------------------------------------------------------- observing

    def observe(self, latency_s: float, success: bool = True) -> None:
        """Feed a delivery observation for the current binding."""
        if self.contract is not None:
            self.contract.observe(latency_s, success)

    def supplier_lost(self, key: str) -> None:
        """Signal that a supplier vanished; rebinds if it was the active one."""
        if key == self.current_supplier:
            self.bind()

    def try_recover(self) -> None:
        """Attempt to undo degradation (e.g. after suppliers return).

        Resets to level 0 and rebinds; if the original requirements are
        feasible again the application is back at full QoS.
        """
        self.level = 0
        self.bind()

    def delivered_quality(self) -> float:
        """Current match score total, or 0.0 when unbound — the E4 metric."""
        return self.current_score.total if self.current_score is not None else 0.0
