"""QoS specifications and the three-way match.

Section 3.4 enumerates what each party brings to a match:

* the **supplier**: required connections, security access, power
  constraints, availability;
* the **consumer**: service/attribute needs over time and space, benefit
  (time-constraint) functions;
* the **network**: "mainly related to bandwidth issues, but network density
  and traffic patterns can be considered as well".

:func:`score_match` is the single place these meet. Hard constraints
(security, reliability floor, latency ceiling, spatial cutoff, bandwidth)
make a match infeasible; soft terms combine into a weighted score that
discovery uses to rank feasible suppliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.qos.benefit import BenefitFunction, ConstantBenefit, expected_benefit
from repro.qos.spatial import SpatialPreference


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class SupplierQoS:
    """What a service supplier promises and requires.

    Attributes:
        reliability: probability a request yields correct data, in [0, 1].
        availability: long-run fraction of time the service is up.
        expected_latency_s: typical response latency the supplier can meet.
        bandwidth_bps: bandwidth one active consumer costs the network.
        battery_powered: True for energy-constrained suppliers.
        battery_fraction: remaining energy fraction (None when mains-powered).
        requires_password: consumer must present a credential.
        encrypted: transport encryption is applied (adds latency, satisfies
            consumers that demand encryption).
        properties: free-form extra attributes, matched by discovery.
    """

    reliability: float = 1.0
    availability: float = 1.0
    expected_latency_s: float = 0.01
    bandwidth_bps: float = 0.0
    battery_powered: bool = False
    battery_fraction: Optional[float] = None
    requires_password: bool = False
    encrypted: bool = False
    properties: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_unit("reliability", self.reliability)
        _check_unit("availability", self.availability)
        if self.expected_latency_s < 0:
            raise ConfigurationError(
                f"latency must be >= 0, got {self.expected_latency_s!r}"
            )
        if self.battery_fraction is not None:
            _check_unit("battery fraction", self.battery_fraction)


@dataclass(frozen=True)
class ConsumerQoS:
    """What a service consumer needs.

    Attributes:
        min_reliability / min_availability: hard floors.
        max_latency_s: hard ceiling on expected latency (None = don't care).
        benefit: time-constraint function over delivery delay.
        spatial: spatial preference (None = logical matching only —
            exactly the deficiency experiment E3 demonstrates).
        require_encryption: hard security constraint.
        password: credential presented to password-protected suppliers.
        prefer_mains_power: softly prefer wall-powered suppliers, so battery
            nodes are spared (feeds MiLAN's energy goal).
        weights: relative weights of the soft terms; keys among
            {"reliability", "availability", "benefit", "spatial", "power"}.
    """

    min_reliability: float = 0.0
    min_availability: float = 0.0
    max_latency_s: Optional[float] = None
    benefit: BenefitFunction = ConstantBenefit()
    spatial: Optional[SpatialPreference] = None
    require_encryption: bool = False
    password: Optional[str] = None
    prefer_mains_power: bool = False
    weights: Dict[str, float] = field(
        default_factory=lambda: {
            "reliability": 1.0,
            "availability": 0.5,
            "benefit": 1.0,
            "spatial": 1.0,
            "power": 0.5,
        }
    )

    def __post_init__(self) -> None:
        _check_unit("min reliability", self.min_reliability)
        _check_unit("min availability", self.min_availability)
        if self.max_latency_s is not None and self.max_latency_s <= 0:
            raise ConfigurationError(
                f"max latency must be positive, got {self.max_latency_s!r}"
            )
        for key, weight in self.weights.items():
            if weight < 0:
                raise ConfigurationError(f"weight {key!r} must be >= 0, got {weight!r}")


@dataclass(frozen=True)
class NetworkQoS:
    """Network-side constraints at match time.

    Attributes:
        available_bandwidth_bps: headroom on the path (None = unconstrained).
        density: nodes per radio neighborhood (drives adaptive discovery).
        traffic_load: utilization estimate in [0, 1]; inflates expected
            latency multiplicatively.
    """

    available_bandwidth_bps: Optional[float] = None
    density: float = 0.0
    traffic_load: float = 0.0

    def __post_init__(self) -> None:
        _check_unit("traffic load", self.traffic_load)
        if self.density < 0:
            raise ConfigurationError(f"density must be >= 0, got {self.density!r}")


@dataclass(frozen=True)
class MatchScore:
    """Result of a feasible match: total plus per-term breakdown."""

    total: float
    terms: Dict[str, float]


#: A neutral network when callers have no network information.
UNCONSTRAINED_NETWORK = NetworkQoS()


def score_match(
    supplier: SupplierQoS,
    consumer: ConsumerQoS,
    network: NetworkQoS = UNCONSTRAINED_NETWORK,
    distance_m: Optional[float] = None,
) -> Optional[MatchScore]:
    """Score a (supplier, consumer) pair under network conditions.

    Returns None when any hard constraint fails; otherwise a
    :class:`MatchScore` whose total is the weighted mean of the soft terms,
    in [0, 1]. ``distance_m`` is required for consumers with a spatial
    preference — passing None there is the "logical location only" mode.
    """
    # --- hard constraints ---------------------------------------------------
    if supplier.reliability < consumer.min_reliability:
        return None
    if supplier.availability < consumer.min_availability:
        return None
    if consumer.require_encryption and not supplier.encrypted:
        return None
    if supplier.requires_password and consumer.password is None:
        return None
    effective_latency = supplier.expected_latency_s * (1.0 + network.traffic_load)
    if consumer.max_latency_s is not None and effective_latency > consumer.max_latency_s:
        return None
    if (
        network.available_bandwidth_bps is not None
        and supplier.bandwidth_bps > network.available_bandwidth_bps
    ):
        return None
    if (
        consumer.spatial is not None
        and distance_m is not None
        and not consumer.spatial.feasible(distance_m)
    ):
        return None

    # --- soft terms ----------------------------------------------------------
    terms: Dict[str, float] = {
        "reliability": supplier.reliability,
        "availability": supplier.availability,
        "benefit": expected_benefit(consumer.benefit, effective_latency),
    }
    if consumer.spatial is not None and distance_m is not None:
        terms["spatial"] = consumer.spatial.score(distance_m)
    if consumer.prefer_mains_power:
        if supplier.battery_powered:
            terms["power"] = (
                supplier.battery_fraction if supplier.battery_fraction is not None else 0.5
            )
        else:
            terms["power"] = 1.0

    weighted_sum = 0.0
    weight_total = 0.0
    for name, value in terms.items():
        weight = consumer.weights.get(name, 1.0)
        if name == "spatial" and consumer.spatial is not None:
            weight *= consumer.spatial.weight
        weighted_sum += weight * value
        weight_total += weight
    total = weighted_sum / weight_total if weight_total > 0 else 0.0
    return MatchScore(total=total, terms=terms)


def rank_matches(
    candidates: List[tuple],
    consumer: ConsumerQoS,
    network: NetworkQoS = UNCONSTRAINED_NETWORK,
) -> List[tuple]:
    """Rank ``(key, SupplierQoS, distance_m)`` triples by match score, best first.

    Infeasible candidates are dropped. Returns ``(key, MatchScore)`` pairs.
    Ties break by key for determinism.
    """
    scored = []
    for key, supplier, distance_m in candidates:
        match = score_match(supplier, consumer, network, distance_m)
        if match is not None:
            scored.append((key, match))
    scored.sort(key=lambda pair: (-pair[1].total, str(pair[0])))
    return scored
