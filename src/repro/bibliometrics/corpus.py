"""Synthetic publication corpus.

Each :class:`PaperRecord` has a year, a title assembled from topic phrases,
and a keyword set. The generator is calibrated per topic and year: the
expected number of papers matching the query term "middleware" in year Y
equals the count digitized from the paper's Figure 1, and the companion
topics (distributed systems, network, wireless network) grow earlier and
larger — reproducing the correlation Section 2 reads off the data. Noise is
binomial around the calibration, seeded, so the reproduction is exact in
expectation and stable per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.util.rng import split_rng

YEARS = tuple(range(1989, 2002))

#: Topic -> year -> expected matching-paper count. The middleware row is
#: digitized from Figure 1 (first article 1993, 7 in 1994, ~170/year at the
#: plateau); companion rows follow the text's narrative of networks and
#: distributed systems leading middleware.
CALIBRATION: Dict[str, Dict[int, int]] = {
    "middleware": {
        1989: 0, 1990: 0, 1991: 0, 1992: 0, 1993: 1, 1994: 7, 1995: 25,
        1996: 60, 1997: 105, 1998: 140, 1999: 170, 2000: 175, 2001: 170,
    },
    "distributed systems": {
        1989: 80, 1990: 95, 1991: 110, 1992: 130, 1993: 150, 1994: 175,
        1995: 200, 1996: 230, 1997: 260, 1998: 290, 1999: 320, 2000: 345,
        2001: 360,
    },
    "network": {
        1989: 300, 1990: 340, 1991: 390, 1992: 450, 1993: 520, 1994: 600,
        1995: 700, 1996: 820, 1997: 950, 1998: 1100, 1999: 1250, 2000: 1380,
        2001: 1450,
    },
    "wireless network": {
        1989: 5, 1990: 8, 1991: 12, 1992: 18, 1993: 28, 1994: 45, 1995: 70,
        1996: 105, 1997: 150, 1998: 210, 1999: 280, 2000: 360, 2001: 430,
    },
}

_TITLE_TEMPLATES = (
    "A {topic} approach for {domain}",
    "On the design of {topic} for {domain}",
    "{topic} support in {domain}",
    "Evaluating {topic} architectures for {domain}",
    "Towards adaptive {topic} in {domain}",
)

_DOMAINS = (
    "real-time applications", "multimedia services", "mobile computing",
    "embedded devices", "enterprise integration", "sensor applications",
    "telecommunication systems", "industrial control",
)


@dataclass(frozen=True)
class PaperRecord:
    """One synthetic publication."""

    paper_id: int
    year: int
    title: str
    keywords: Tuple[str, ...]


class CorpusGenerator:
    """Builds the corpus for one seed.

    ``noise`` perturbs each calibrated count with a seeded +/- binomial
    wobble (fraction of the count), modeling indexing variance; 0 gives the
    calibration exactly.
    """

    def __init__(self, seed: int = 0, noise: float = 0.05):
        if not 0.0 <= noise <= 0.5:
            raise ValueError(f"noise must be in [0, 0.5], got {noise!r}")
        self.seed = seed
        self.noise = noise

    def _count_for(self, topic: str, year: int, rng) -> int:
        base = CALIBRATION[topic].get(year, 0)
        if base == 0 or self.noise == 0.0:
            return base
        wobble = int(round(base * self.noise))
        return max(0, base + rng.randint(-wobble, wobble))

    def generate(self) -> List[PaperRecord]:
        """The full corpus, deterministic in the seed."""
        rng = split_rng(self.seed, "bibliometrics-corpus")
        papers: List[PaperRecord] = []
        paper_id = 0
        for topic in sorted(CALIBRATION):
            for year in YEARS:
                for _ in range(self._count_for(topic, year, rng)):
                    template = rng.choice(_TITLE_TEMPLATES)
                    domain = rng.choice(_DOMAINS)
                    title = template.format(topic=topic, domain=domain)
                    keywords = (topic,) + tuple(
                        w for w in domain.split() if len(w) > 4
                    )
                    papers.append(PaperRecord(paper_id, year, title, keywords))
                    paper_id += 1
        return papers
