"""Keyword query engine over the corpus.

The same pipeline a real index search exercises: tokenize the query, match
phrase-wise against titles and keywords, aggregate hits per year. Queries
are the "very simple" keyword queries Section 2 describes.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence

from repro.bibliometrics.corpus import PaperRecord

_WORD = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    return _WORD.findall(text.lower())


def _contains_phrase(haystack: Sequence[str], phrase: Sequence[str]) -> bool:
    if not phrase:
        return False
    n = len(phrase)
    return any(
        list(haystack[i:i + n]) == list(phrase)
        for i in range(len(haystack) - n + 1)
    )


class QueryEngine:
    """Indexes a corpus once; answers phrase queries."""

    def __init__(self, papers: Iterable[PaperRecord]):
        self.papers = list(papers)
        # Pre-tokenized titles and keyword phrases.
        self._title_tokens = [tokenize(p.title) for p in self.papers]
        self._keyword_tokens = [
            [tokenize(k) for k in p.keywords] for p in self.papers
        ]

    def search(self, query: str) -> List[PaperRecord]:
        """Papers whose title or keywords contain the query phrase."""
        phrase = tokenize(query)
        hits: List[PaperRecord] = []
        for paper, title_tokens, keyword_tokens in zip(
            self.papers, self._title_tokens, self._keyword_tokens
        ):
            if _contains_phrase(title_tokens, phrase) or any(
                _contains_phrase(k, phrase) for k in keyword_tokens
            ):
                hits.append(paper)
        return hits

    def counts_by_year(self, query: str) -> Dict[int, int]:
        """The Figure 1 aggregation: matching papers per publication year."""
        counts: Dict[int, int] = defaultdict(int)
        for paper in self.search(query):
            counts[paper.year] += 1
        return dict(counts)

    def total(self, query: str) -> int:
        return len(self.search(query))


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson r between two equal-length series (pure-python)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length series of length >= 2")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5
