"""Figure 1, reproduced.

Runs the paper's four queries — middleware, distributed systems, network,
wireless network — against the synthetic corpus and reports:

* the middleware references-per-year series (the figure itself),
* the paper's headline checkpoints (first article in 1993; 7 articles in
  1994; ~170/year at the plateau),
* the positive correlation between the middleware series and the
  networks/distributed-systems series that Section 2 argues from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bibliometrics.corpus import CALIBRATION, CorpusGenerator, YEARS
from repro.bibliometrics.query import QueryEngine, pearson_correlation

#: The digitized target: what the printed figure shows for "middleware".
MIDDLEWARE_TARGET_SERIES: Dict[int, int] = dict(CALIBRATION["middleware"])

QUERIES = ("middleware", "distributed systems", "network", "wireless network")


@dataclass
class Figure1Result:
    """Everything the figure (and the surrounding text) claims."""

    series: Dict[str, Dict[int, int]]  # query -> year -> count
    first_middleware_year: int
    middleware_1994: int
    plateau_mean: float  # mean of 1999-2001
    correlation_with_network: float
    correlation_with_distributed: float

    def middleware_series(self) -> List[int]:
        return [self.series["middleware"].get(y, 0) for y in YEARS]

    def render_ascii(self, width: int = 50) -> str:
        """The bar chart, in the terminal."""
        counts = self.series["middleware"]
        peak = max(counts.values()) or 1
        lines = ["Figure 1: middleware references per year (reproduced)"]
        for year in YEARS:
            count = counts.get(year, 0)
            bar = "#" * int(round(width * count / peak))
            lines.append(f"{year}  {count:>4}  {bar}")
        return "\n".join(lines)


def reproduce_figure1(seed: int = 0, noise: float = 0.05) -> Figure1Result:
    """Generate the corpus, run the queries, aggregate the claims."""
    corpus = CorpusGenerator(seed=seed, noise=noise).generate()
    engine = QueryEngine(corpus)
    series = {query: engine.counts_by_year(query) for query in QUERIES}

    middleware = series["middleware"]
    first_year = min((y for y, c in middleware.items() if c > 0), default=0)
    plateau_years = [1999, 2000, 2001]
    plateau = sum(middleware.get(y, 0) for y in plateau_years) / len(plateau_years)

    def aligned(query: str) -> List[float]:
        return [float(series[query].get(y, 0)) for y in YEARS]

    return Figure1Result(
        series=series,
        first_middleware_year=first_year,
        middleware_1994=middleware.get(1994, 0),
        plateau_mean=plateau,
        correlation_with_network=pearson_correlation(
            aligned("middleware"), aligned("network")
        ),
        correlation_with_distributed=pearson_correlation(
            aligned("middleware"), aligned("distributed systems")
        ),
    )
