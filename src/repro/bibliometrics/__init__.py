"""Bibliometrics: the substrate for reproducing Figure 1.

The paper's only quantitative artifact is Figure 1 — the number of
middleware-related references per year returned by keyword queries against
the IEEE Xplore database (plus CiteSeer totals in the text). We have no
database access, so per the substitution rule this package provides:

* :mod:`repro.bibliometrics.corpus` — a seeded synthetic publication corpus
  whose per-year topic mixture is calibrated to the published counts,
* :mod:`repro.bibliometrics.query` — a small keyword query engine (the same
  code path a real index search exercises: tokenize, match, aggregate),
* :mod:`repro.bibliometrics.figure1` — the queries of Section 2 run against
  the corpus, yielding the per-year series, the middleware-vs-networks
  correlation the authors argue from, and an ASCII rendering of the figure.
"""

from repro.bibliometrics.corpus import CorpusGenerator, PaperRecord
from repro.bibliometrics.figure1 import (
    MIDDLEWARE_TARGET_SERIES,
    Figure1Result,
    reproduce_figure1,
)
from repro.bibliometrics.query import QueryEngine

__all__ = [
    "CorpusGenerator",
    "PaperRecord",
    "MIDDLEWARE_TARGET_SERIES",
    "Figure1Result",
    "reproduce_figure1",
    "QueryEngine",
]
