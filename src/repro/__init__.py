"""repro — a network-based distributed-systems middleware.

A full reproduction of Carvalho, Murphy, Heinzelman & Coelho,
*Network-Based Distributed Systems Middleware* (MIDDLEWARE 2003): the
Section 3 feature catalogue implemented as subsystems, the Section 4 MiLAN
core on top, and a discrete-event network substrate underneath.

Quickstart::

    from repro import MiddlewareNode, Query
    from repro.netsim import topology
    from repro.transport.simnet import SimFabric

    net = topology.star(4)
    fabric = SimFabric(net)
    hub = MiddlewareNode(fabric, "hub")                 # runs flooding discovery
    sensor = MiddlewareNode(fabric, "leaf0")
    sensor.provide("t1", "thermometer", {"read": lambda: 21.5})
    found = hub.find(Query("thermometer"))
    net.sim.run_for(2.0)
    print(found.result())

Subsystem map (paper section -> package):

==========  ==============================  ===========================
Section     Feature                         Package
==========  ==============================  ===========================
3.2         network independence            :mod:`repro.transport`
3.3         plug and play / discovery       :mod:`repro.discovery`
3.4         quality of service              :mod:`repro.qos`
3.5         locating and routing            :mod:`repro.routing`,
                                            :mod:`repro.naming`
3.6         transactions                    :mod:`repro.transactions`
3.7         scheduling                      :mod:`repro.scheduling`
3.8         recovery                        :mod:`repro.recovery`
3.9         interoperability                :mod:`repro.interop`
4           MiLAN                           :mod:`repro.core`
(substrate) network simulator               :mod:`repro.netsim`
(figure 1)  bibliometrics                   :mod:`repro.bibliometrics`
==========  ==============================  ===========================
"""

from repro.core.milan import Milan
from repro.core.policy import ApplicationPolicy, health_monitor_policy
from repro.discovery.description import ServiceDescription
from repro.discovery.matching import AttributeConstraint, Query
from repro.errors import MiddlewareError
from repro.middleware import MiddlewareNode
from repro.monitoring import SystemEventBus
from repro.qos.spec import ConsumerQoS, NetworkQoS, SupplierQoS
from repro.transactions.transaction import TransactionKind, TransactionSpec

__version__ = "1.0.0"

__all__ = [
    "Milan",
    "ApplicationPolicy",
    "health_monitor_policy",
    "ServiceDescription",
    "AttributeConstraint",
    "Query",
    "MiddlewareError",
    "MiddlewareNode",
    "SystemEventBus",
    "ConsumerQoS",
    "NetworkQoS",
    "SupplierQoS",
    "TransactionKind",
    "TransactionSpec",
    "__version__",
]
