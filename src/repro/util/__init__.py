"""Shared utilities: virtual clocks, id generation, event emitters, geometry.

These are deliberately dependency-free building blocks used by every other
subsystem. Nothing in here knows about networks or middleware.
"""

from repro.util.clock import Clock, ManualClock, SystemClock
from repro.util.events import EventEmitter, Subscription
from repro.util.geometry import Point, distance
from repro.util.ids import IdGenerator, SequenceGenerator
from repro.util.priorityqueue import StablePriorityQueue
from repro.util.rng import make_rng, split_rng

__all__ = [
    "Clock",
    "ManualClock",
    "SystemClock",
    "EventEmitter",
    "Subscription",
    "Point",
    "distance",
    "IdGenerator",
    "SequenceGenerator",
    "StablePriorityQueue",
    "make_rng",
    "split_rng",
]
