"""2-D geometry for node placement, mobility, and spatial QoS."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point (meters)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translate(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def move_toward(self, target: "Point", step: float) -> "Point":
        """Return the point ``step`` meters from self toward ``target``.

        Never overshoots: if the target is closer than ``step``, returns the
        target itself.
        """
        remaining = self.distance_to(target)
        if remaining <= step or remaining == 0.0:
            return target
        fraction = step / remaining
        return Point(
            self.x + (target.x - self.x) * fraction,
            self.y + (target.y - self.y) * fraction,
        )

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


ORIGIN = Point(0.0, 0.0)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    xs, ys, n = 0.0, 0.0, 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid of empty point collection")
    return Point(xs / n, ys / n)


def bounding_box(points: Iterable[Point]) -> Tuple[Point, Point]:
    """Return (lower-left, upper-right) corners of the points' bounding box."""
    iterator = iter(points)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("bounding box of empty point collection") from None
    min_x = max_x = first.x
    min_y = max_y = first.y
    for p in iterator:
        min_x = min(min_x, p.x)
        max_x = max(max_x, p.x)
        min_y = min(min_y, p.y)
        max_y = max(max_y, p.y)
    return Point(min_x, min_y), Point(max_x, max_y)
