"""A single-assignment future for callback-style asynchronous APIs.

The middleware is event-driven over virtual time — there are no threads to
block — so asynchronous operations (RPC calls, lookups) return a
:class:`Promise`. Callbacks added after completion fire immediately.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, List, Optional, TypeVar

T = TypeVar("T")

_PENDING = "pending"
_FULFILLED = "fulfilled"
_REJECTED = "rejected"


class PromisePending(Exception):
    """Raised by :meth:`Promise.result` when the promise is not settled."""


class Promise(Generic[T]):
    """Settles exactly once with a value or an error."""

    def __init__(self) -> None:
        self._state = _PENDING
        self._value: Optional[T] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Promise[T]"], None]] = []

    # ------------------------------------------------------------- settling

    def fulfill(self, value: T) -> None:
        """Settle successfully; later settle attempts are ignored (first wins)."""
        if self._state != _PENDING:
            return
        self._state = _FULFILLED
        self._value = value
        self._run_callbacks()

    def reject(self, error: BaseException) -> None:
        """Settle with an error; later settle attempts are ignored."""
        if self._state != _PENDING:
            return
        self._state = _REJECTED
        self._error = error
        self._run_callbacks()

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -------------------------------------------------------------- reading

    @property
    def pending(self) -> bool:
        return self._state == _PENDING

    @property
    def fulfilled(self) -> bool:
        return self._state == _FULFILLED

    @property
    def rejected(self) -> bool:
        return self._state == _REJECTED

    def result(self) -> T:
        """The value; raises the error if rejected, PromisePending if pending."""
        if self._state == _PENDING:
            raise PromisePending("promise has not settled")
        if self._state == _REJECTED:
            assert self._error is not None
            raise self._error
        return self._value  # type: ignore[return-value]

    def error(self) -> Optional[BaseException]:
        return self._error

    # ------------------------------------------------------------- chaining

    def on_settle(self, callback: Callable[["Promise[T]"], None]) -> "Promise[T]":
        """Run ``callback(self)`` once settled (immediately if already)."""
        if self._state == _PENDING:
            self._callbacks.append(callback)
        else:
            callback(self)
        return self

    def on_value(self, callback: Callable[[T], None]) -> "Promise[T]":
        return self.on_settle(
            lambda p: callback(p._value) if p.fulfilled else None  # type: ignore[arg-type]
        )

    def on_error(self, callback: Callable[[BaseException], None]) -> "Promise[T]":
        return self.on_settle(
            lambda p: callback(p._error) if p.rejected else None  # type: ignore[arg-type]
        )


def gather(promises: List[Promise[Any]]) -> Promise[List[Any]]:
    """A promise fulfilled with all values, or rejected with the first error."""
    combined: Promise[List[Any]] = Promise()
    remaining = len(promises)
    if remaining == 0:
        combined.fulfill([])
        return combined
    results: List[Any] = [None] * remaining

    def make_callback(index: int) -> Callable[[Promise[Any]], None]:
        def callback(settled: Promise[Any]) -> None:
            nonlocal remaining
            if settled.rejected:
                combined.reject(settled.error())  # type: ignore[arg-type]
                return
            results[index] = settled.result()
            remaining -= 1
            if remaining == 0:
                combined.fulfill(results)

        return callback

    for i, promise in enumerate(promises):
        promise.on_settle(make_callback(i))
    return combined
