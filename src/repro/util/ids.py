"""Deterministic identifier generation.

Identifiers in the middleware (message ids, transaction ids, lease ids, ...)
are generated from per-scope counters rather than UUIDs so that simulation
runs are reproducible bit-for-bit.
"""

from __future__ import annotations

import itertools
from typing import Iterator


class SequenceGenerator:
    """A monotonically increasing integer sequence starting at ``start``."""

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)

    def next(self) -> int:
        return next(self._counter)

    def __iter__(self) -> Iterator[int]:
        return self._counter


class IdGenerator:
    """Generates string ids of the form ``"<prefix>-<n>"``.

    A single generator is typically owned by one subsystem instance (e.g. one
    RPC endpoint), giving ids that are unique within that scope and stable
    across runs.
    """

    def __init__(self, prefix: str, start: int = 0):
        if not prefix:
            raise ValueError("id prefix must be non-empty")
        self.prefix = prefix
        self._seq = SequenceGenerator(start)

    def next(self) -> str:
        return f"{self.prefix}-{self._seq.next()}"
