"""A small synchronous event emitter.

The paper (Section 3.10) asks that middleware "react to events from all
system components". Internally every subsystem publishes lifecycle events
(service registered, QoS violated, node crashed, ...) through this emitter so
other subsystems and applications can observe them without tight coupling.

Delivery is synchronous and in subscription order; handlers must not block.
A handler that raises does not prevent delivery to later handlers — errors
are collected and re-raised as a single :class:`HandlerErrors` after the
emit completes, because errors should never pass silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

Handler = Callable[..., None]


class HandlerErrors(Exception):
    """One or more event handlers raised during an emit."""

    def __init__(self, event: str, errors: List[BaseException]):
        super().__init__(
            f"{len(errors)} handler(s) failed for event {event!r}: "
            + "; ".join(repr(e) for e in errors)
        )
        self.event = event
        self.errors = errors


@dataclass(frozen=True)
class Subscription:
    """A handle returned by :meth:`EventEmitter.on`; call cancel() to detach."""

    emitter: "EventEmitter"
    event: str
    handler: Handler = field(compare=False)
    token: int = 0

    def cancel(self) -> None:
        self.emitter.off(self)


class EventEmitter:
    """Maps event names to ordered handler lists."""

    def __init__(self) -> None:
        self._handlers: Dict[str, List[Tuple[int, Handler]]] = {}
        self._next_token = 0

    def on(self, event: str, handler: Handler) -> Subscription:
        """Subscribe ``handler`` to ``event``; returns a cancellable handle."""
        token = self._next_token
        self._next_token += 1
        self._handlers.setdefault(event, []).append((token, handler))
        return Subscription(self, event, handler, token)

    def once(self, event: str, handler: Handler) -> Subscription:
        """Subscribe for a single delivery."""
        subscription_box: List[Subscription] = []

        def wrapper(*args: Any, **kwargs: Any) -> None:
            subscription_box[0].cancel()
            handler(*args, **kwargs)

        subscription = self.on(event, wrapper)
        subscription_box.append(subscription)
        return subscription

    def off(self, subscription: Subscription) -> None:
        """Detach a subscription; detaching twice is a no-op."""
        handlers = self._handlers.get(subscription.event)
        if not handlers:
            return
        self._handlers[subscription.event] = [
            (token, handler)
            for token, handler in handlers
            if token != subscription.token
        ]

    def emit(self, event: str, *args: Any, **kwargs: Any) -> int:
        """Deliver to all current subscribers; returns the delivery count.

        Raises :class:`HandlerErrors` after delivering to everyone if any
        handler raised.
        """
        handlers = list(self._handlers.get(event, ()))
        errors: List[BaseException] = []
        for _token, handler in handlers:
            try:
                handler(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - collected and re-raised
                errors.append(exc)
        if errors:
            raise HandlerErrors(event, errors)
        return len(handlers)

    def listener_count(self, event: str) -> int:
        return len(self._handlers.get(event, ()))
