"""Clock abstraction.

The middleware never reads wall-clock time directly. Every component takes a
:class:`Clock`, so the same code runs under the discrete-event simulator
(where time is virtual and tests never sleep) and in real deployments.
"""

from __future__ import annotations

import time as _time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now() -> float`` method (seconds)."""

    def now(self) -> float:
        """Return the current time in seconds."""
        ...


class SystemClock:
    """Wall-clock time via :func:`time.monotonic`."""

    def now(self) -> float:
        return _time.monotonic()


class ManualClock:
    """A clock advanced explicitly by the caller.

    Used standalone in unit tests and as the base of the simulator clock.
    Time never moves backwards: :meth:`advance` rejects negative deltas and
    :meth:`set` rejects times earlier than the current one.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self._now

    def set(self, when: float) -> float:
        """Jump time forward to ``when`` and return it."""
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now!r} to {when!r}"
            )
        self._now = float(when)
        return self._now
