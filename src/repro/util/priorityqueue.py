"""A stable priority queue with lazy deletion.

The simulator's event loop and the transaction scheduler both need a queue
that (a) breaks priority ties in insertion order — determinism — and
(b) supports cancelling entries without an O(n) remove.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")

_REMOVED = object()


#: Dead entries may outnumber live ones by this much before :meth:`cancel`
#: triggers an automatic :meth:`StablePriorityQueue.compact` sweep.
_AUTO_COMPACT_MIN_DEAD = 64


class StablePriorityQueue(Generic[T]):
    """Min-heap keyed by (priority, insertion sequence).

    Entries with equal priority pop in the order they were pushed. ``push``
    returns an opaque handle usable with :meth:`cancel`.

    Cancellation is lazy — the entry is tombstoned in place and skipped at
    pop time. Workloads that cancel most of what they schedule (e.g. the
    reliable transport's retransmit timers, cancelled on every ack) would
    otherwise grow the heap without bound, so :meth:`cancel` sweeps the
    tombstones out whenever dead entries outnumber live ones; see
    :meth:`compact`.

    The heap list (``_heap``) and tombstone sentinel (``_REMOVED``) are
    deliberately stable internals: the simulator's event loop inlines the
    pop path against them (see :mod:`repro.netsim.simulator`). ``compact``
    therefore rebuilds the heap *in place*, never rebinding the list.
    """

    def __init__(self) -> None:
        self._heap: List[List[Any]] = []
        self._seq = itertools.count()
        self._live = 0

    def push(self, priority: Any, item: T) -> List[Any]:
        entry = [priority, next(self._seq), item]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def cancel(self, entry: List[Any]) -> bool:
        """Mark an entry removed; returns False if already popped/cancelled."""
        if entry[2] is _REMOVED:
            return False
        entry[2] = _REMOVED
        self._live -= 1
        dead = len(self._heap) - self._live
        if dead > _AUTO_COMPACT_MIN_DEAD and dead > self._live:
            self.compact()
        return True

    def compact(self) -> int:
        """Sweep tombstoned entries out of the heap; returns how many.

        O(live) rebuild, amortized O(1) per cancel under the automatic
        trigger (each sweep removes at least half the heap). Rebuilds the
        existing list in place so long-lived references to the heap stay
        valid across a sweep.
        """
        heap = self._heap
        dead = len(heap) - self._live
        if dead == 0:
            return 0
        heap[:] = [entry for entry in heap if entry[2] is not _REMOVED]
        heapq.heapify(heap)
        return dead

    def pop(self) -> Tuple[Any, T]:
        """Remove and return ``(priority, item)`` for the smallest entry."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            priority, _seq, item = entry
            if item is not _REMOVED:
                # Mark popped so a late cancel() of the same handle is a no-op.
                entry[2] = _REMOVED
                self._live -= 1
                return priority, item
        raise IndexError("pop from empty priority queue")

    def peek(self) -> Tuple[Any, T]:
        """Return ``(priority, item)`` for the smallest entry, not removing it."""
        while self._heap:
            priority, _seq, item = self._heap[0]
            if item is not _REMOVED:
                return priority, item
            heapq.heappop(self._heap)
        raise IndexError("peek into empty priority queue")

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[Tuple[Any, T]]:
        """Iterate live entries in heap order (not sorted)."""
        return (
            (priority, item)
            for priority, _seq, item in self._heap
            if item is not _REMOVED
        )

    def pop_if_at_most(self, bound: Any) -> Optional[Tuple[Any, T]]:
        """Pop the smallest entry if its priority is <= ``bound``, else None."""
        try:
            priority, _item = self.peek()
        except IndexError:
            return None
        if priority > bound:
            return None
        return self.pop()
