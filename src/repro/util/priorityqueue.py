"""A stable priority queue with lazy deletion.

The simulator's event loop and the transaction scheduler both need a queue
that (a) breaks priority ties in insertion order — determinism — and
(b) supports cancelling entries without an O(n) remove.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")

_REMOVED = object()


class StablePriorityQueue(Generic[T]):
    """Min-heap keyed by (priority, insertion sequence).

    Entries with equal priority pop in the order they were pushed. ``push``
    returns an opaque handle usable with :meth:`cancel`.
    """

    def __init__(self) -> None:
        self._heap: List[List[Any]] = []
        self._seq = itertools.count()
        self._live = 0

    def push(self, priority: Any, item: T) -> List[Any]:
        entry = [priority, next(self._seq), item]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def cancel(self, entry: List[Any]) -> bool:
        """Mark an entry removed; returns False if already popped/cancelled."""
        if entry[2] is _REMOVED:
            return False
        entry[2] = _REMOVED
        self._live -= 1
        return True

    def pop(self) -> Tuple[Any, T]:
        """Remove and return ``(priority, item)`` for the smallest entry."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            priority, _seq, item = entry
            if item is not _REMOVED:
                # Mark popped so a late cancel() of the same handle is a no-op.
                entry[2] = _REMOVED
                self._live -= 1
                return priority, item
        raise IndexError("pop from empty priority queue")

    def peek(self) -> Tuple[Any, T]:
        """Return ``(priority, item)`` for the smallest entry, not removing it."""
        while self._heap:
            priority, _seq, item = self._heap[0]
            if item is not _REMOVED:
                return priority, item
            heapq.heappop(self._heap)
        raise IndexError("peek into empty priority queue")

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[Tuple[Any, T]]:
        """Iterate live entries in heap order (not sorted)."""
        return (
            (priority, item)
            for priority, _seq, item in self._heap
            if item is not _REMOVED
        )

    def pop_if_at_most(self, bound: Any) -> Optional[Tuple[Any, T]]:
        """Pop the smallest entry if its priority is <= ``bound``, else None."""
        try:
            priority, _item = self.peek()
        except IndexError:
            return None
        if priority > bound:
            return None
        return self.pop()
