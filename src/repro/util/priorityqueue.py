"""A stable priority queue with lazy deletion and a pluggable tie-breaker.

The simulator's event loop and the transaction scheduler both need a queue
that (a) breaks priority ties deterministically — by default in insertion
order — and (b) supports cancelling entries without an O(n) remove.

Tie-breaking is explicit and two-level. Every entry carries::

    [priority, tie, seq, item]

``seq`` is a **monotonic insertion sequence number** (0, 1, 2, ...): it
uniquely identifies the push and makes the heap order total, so two entries
never compare on ``item``. ``tie`` is a secondary key in front of it,
``0`` unless a *tie-breaker* is installed (:meth:`set_tie_breaker`), in
which case it is drawn from the tie-breaker at push time. The simulation-
testing explorer (:mod:`repro.simtest`) uses a seeded-RNG tie-breaker to
perturb the order of same-time events: because the draw is a pure function
of the RNG seed and the push sequence, any perturbed schedule can be
replayed exactly by re-running with the same seed — schedule exploration
and deterministic replay both hang off this hook.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")

_REMOVED = object()

#: Index of the payload slot in a heap entry (``[priority, tie, seq, item]``).
#: The simulator's inlined pop path and the tombstoning both use it.
_ITEM = 3


#: Dead entries may outnumber live ones by this much before :meth:`cancel`
#: triggers an automatic :meth:`StablePriorityQueue.compact` sweep.
_AUTO_COMPACT_MIN_DEAD = 64


class StablePriorityQueue(Generic[T]):
    """Min-heap keyed by ``(priority, tie, insertion sequence)``.

    With no tie-breaker installed (the default), ``tie`` is 0 for every
    entry, so entries with equal priority pop in the order they were pushed.
    ``push`` returns an opaque handle usable with :meth:`cancel`.

    Cancellation is lazy — the entry is tombstoned in place and skipped at
    pop time. Workloads that cancel most of what they schedule (e.g. the
    reliable transport's retransmit timers, cancelled on every ack) would
    otherwise grow the heap without bound, so :meth:`cancel` sweeps the
    tombstones out whenever dead entries outnumber live ones; see
    :meth:`compact`.

    The heap list (``_heap``), tombstone sentinel (``_REMOVED``), and entry
    layout (``[priority, tie, seq, item]``, payload at index :data:`_ITEM`)
    are deliberately stable internals: the simulator's event loop inlines
    the pop path against them (see :mod:`repro.netsim.simulator`).
    ``compact`` therefore rebuilds the heap *in place*, never rebinding the
    list.
    """

    def __init__(self) -> None:
        self._heap: List[List[Any]] = []
        self._next_seq = 0
        self._live = 0
        self._tie_breaker: Optional[Callable[[], Any]] = None

    def set_tie_breaker(self, tie_breaker: Optional[Callable[[], Any]]) -> None:
        """Install (or clear, with ``None``) a secondary-key source.

        ``tie_breaker()`` is called once per push; its return value orders
        entries with equal priority *before* the insertion sequence does.
        Keys must be mutually comparable and comparable with ``0`` (the key
        of entries pushed while no tie-breaker was installed) — seeded
        ``random()`` floats satisfy both. Installing one mid-run is safe:
        existing entries keep their keys.
        """
        self._tie_breaker = tie_breaker

    def push(self, priority: Any, item: T) -> List[Any]:
        seq = self._next_seq
        self._next_seq = seq + 1
        tie_breaker = self._tie_breaker
        entry = [priority, 0 if tie_breaker is None else tie_breaker(), seq, item]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def cancel(self, entry: List[Any]) -> bool:
        """Mark an entry removed; returns False if already popped/cancelled."""
        if entry[_ITEM] is _REMOVED:
            return False
        entry[_ITEM] = _REMOVED
        self._live -= 1
        dead = len(self._heap) - self._live
        if dead > _AUTO_COMPACT_MIN_DEAD and dead > self._live:
            self.compact()
        return True

    def compact(self) -> int:
        """Sweep tombstoned entries out of the heap; returns how many.

        O(live) rebuild, amortized O(1) per cancel under the automatic
        trigger (each sweep removes at least half the heap). Rebuilds the
        existing list in place so long-lived references to the heap stay
        valid across a sweep.
        """
        heap = self._heap
        dead = len(heap) - self._live
        if dead == 0:
            return 0
        heap[:] = [entry for entry in heap if entry[_ITEM] is not _REMOVED]
        heapq.heapify(heap)
        return dead

    def pop(self) -> Tuple[Any, T]:
        """Remove and return ``(priority, item)`` for the smallest entry."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            item = entry[_ITEM]
            if item is not _REMOVED:
                # Mark popped so a late cancel() of the same handle is a no-op.
                entry[_ITEM] = _REMOVED
                self._live -= 1
                return entry[0], item
        raise IndexError("pop from empty priority queue")

    def peek(self) -> Tuple[Any, T]:
        """Return ``(priority, item)`` for the smallest entry, not removing it."""
        while self._heap:
            entry = self._heap[0]
            if entry[_ITEM] is not _REMOVED:
                return entry[0], entry[_ITEM]
            heapq.heappop(self._heap)
        raise IndexError("peek into empty priority queue")

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[Tuple[Any, T]]:
        """Iterate live entries in heap order (not sorted)."""
        return (
            (entry[0], entry[_ITEM])
            for entry in self._heap
            if entry[_ITEM] is not _REMOVED
        )

    def pop_if_at_most(self, bound: Any) -> Optional[Tuple[Any, T]]:
        """Pop the smallest entry if its priority is <= ``bound``, else None."""
        try:
            priority, _item = self.peek()
        except IndexError:
            return None
        if priority > bound:
            return None
        return self.pop()
