"""Seeded random-number helpers.

All stochastic behaviour in the library (topology generation, channel loss,
mobility, workloads) draws from :class:`random.Random` instances created
here, never from the module-level :mod:`random` functions, so that every
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import random
import zlib


def make_rng(seed: int) -> random.Random:
    """Create an independent RNG from an integer seed."""
    return random.Random(seed)


def split_rng(seed: int, label: str) -> random.Random:
    """Derive an independent, stable sub-stream from (seed, label).

    Different labels give statistically independent streams; the same
    (seed, label) pair always gives the same stream. Used to decorrelate
    e.g. channel loss from mobility within one simulation seed.
    """
    derived = (seed & 0xFFFFFFFF) ^ zlib.crc32(label.encode("utf-8"))
    return random.Random(derived)
