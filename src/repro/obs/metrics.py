"""Metrics: counters, gauges, streaming histograms, and the registry.

Naming conventions (see docs/ARCHITECTURE.md "Observability"):

* metric names are dot-separated lowercase (``transport.bytes_sent``,
  ``route.drops``, ``bus.events``);
* dimensions go in **labels** (``node=...``, ``topic=...``), never baked
  into the name;
* durations are seconds, sizes are bytes.

A :class:`MetricsRegistry` keys instruments by ``(name, labels)``. Getting
an instrument is get-or-create, so call sites never pre-register.

:class:`Histogram` is a fixed-bucket streaming estimator: geometric bucket
bounds, O(1) memory, nearest-rank percentiles read from the bucket upper
edge (clamped to the observed min/max). Good to ~2x relative error at the
default bucket growth, which is what latency dashboards need; experiments
wanting exact percentiles keep raw samples via :class:`MetricsRecorder`.

:class:`MetricsRecorder` (previously ``repro.netsim.trace``) lives here now
and is re-exported from its old home. When bound to a registry it mirrors
every recording into it — this is how ``SystemEventBus`` per-topic counting
migrated onto the registry without breaking any existing caller.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.util.clock import Clock

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down; remembers only the latest."""

    __slots__ = ("name", "labels", "value", "updates")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


#: Default histogram bounds: geometric, 1 µs .. ~134 s (factor 2 per bucket).
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(28))


class Histogram:
    """Fixed-bucket streaming distribution with percentile estimates."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "total", "minimum", "maximum")

    def __init__(self, name: str, labels: LabelKey,
                 bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else DEFAULT_BUCKET_BOUNDS
        )
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        # One overflow bucket past the last bound.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (bucket upper edge, clamped to the
        observed [min, max]).

        Degenerate histograms are well-defined, not errors — scorecards from
        zero-traffic windows depend on this:

        * empty (``count == 0``): every quantile is **0.0**;
        * single sample: every quantile is exactly that sample (the clamp
          to [min, max] collapses the bucket edge onto it).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= rank:
                edge = (self.bounds[i] if i < len(self.bounds) else self.maximum)
                return min(max(edge, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - ranks always land above

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Get-or-create instruments keyed by name + labels."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        # Bumped by reset(); hot paths caching instrument references
        # compare this to know their cached Counter has been orphaned.
        self.generation = 0

    # ------------------------------------------------------------- accessors

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, _bounds: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], _bounds)
        return instrument

    # -------------------------------------------------------------- reading

    def counters(self) -> Iterator[Counter]:
        for key in sorted(self._counters):
            yield self._counters[key]

    def gauges(self) -> Iterator[Gauge]:
        for key in sorted(self._gauges):
            yield self._gauges[key]

    def histograms(self) -> Iterator[Histogram]:
        for key in sorted(self._histograms):
            yield self._histograms[key]

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        return sum(c.value for (n, _k), c in self._counters.items() if n == name)

    def reset(self) -> None:
        """Drop every instrument (benches/tests isolating the process-wide
        registry between measured scenarios).

        Call sites holding an instrument reference keep incrementing their
        orphaned copy; re-fetch after a reset to land in the registry again
        (or key a cache on :attr:`generation`, which this bumps).
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.generation += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self.counters()
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in self.gauges()
            ],
            "histograms": [
                {"name": h.name, "labels": dict(h.labels), **h.summary()}
                for h in self.histograms()
            ],
        }

    def render(self, title: str = "metrics") -> str:
        lines = [title, "-" * len(title)]

        def tag(name: str, labels: LabelKey) -> str:
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        for c in self.counters():
            lines.append(f"{tag(c.name, c.labels)}  {c.value:g}")
        for g in self.gauges():
            lines.append(f"{tag(g.name, g.labels)}  {g.value:g}")
        for h in self.histograms():
            s = h.summary()
            lines.append(
                f"{tag(h.name, h.labels)}  n={s['count']} mean={s['mean']:.6g} "
                f"p50={s['p50']:.6g} p95={s['p95']:.6g} p99={s['p99']:.6g}"
            )
        return "\n".join(lines)


#: Process-wide default registry (components may also own private ones).
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


# --------------------------------------------------------------------------
# The experiment-facing recorder (moved from repro.netsim.trace).
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SeriesPoint:
    time: float
    value: float


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on an already-sorted sequence.

    An empty sample yields **0.0** (matching :meth:`Histogram.quantile` and
    :meth:`Summary.of`), so percentiles over zero-traffic windows are
    well-defined values rather than exceptions.
    """
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample set."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @staticmethod
    def of(values: Sequence[float]) -> "Summary":
        if not values:
            return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)
        return Summary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 50),
            p95=_percentile(ordered, 95),
            p99=_percentile(ordered, 99),
        )


class MetricsRecorder:
    """Counters + time series + samples, keyed by metric name.

    When ``registry`` is given, every recording is mirrored into it:
    ``incr`` into a counter, ``sample`` into a histogram, ``record`` into a
    gauge — so legacy recorder call sites feed registry-based dashboards
    without changing.
    """

    def __init__(self, clock: Optional[Clock] = None,
                 registry: Optional[MetricsRegistry] = None):
        self._clock = clock
        self.registry = registry
        self.counters: Dict[str, float] = defaultdict(float)
        self.series: Dict[str, List[SeriesPoint]] = defaultdict(list)
        self.samples: Dict[str, List[float]] = defaultdict(list)

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    # ------------------------------------------------------------- recording

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount
        if self.registry is not None:
            self.registry.counter(name).inc(amount)

    def record(self, name: str, value: float) -> None:
        """Append a time-stamped point to a series (for trend plots)."""
        self.series[name].append(SeriesPoint(self._now(), value))
        if self.registry is not None:
            self.registry.gauge(name).set(value)

    def sample(self, name: str, value: float) -> None:
        """Append an order-insensitive sample (for latency distributions)."""
        self.samples[name].append(value)
        if self.registry is not None:
            self.registry.histogram(name).observe(value)

    # --------------------------------------------------------------- reading

    def count(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def summary(self, name: str) -> Summary:
        return Summary.of(self.samples.get(name, []))

    def last(self, name: str) -> Optional[SeriesPoint]:
        points = self.series.get(name)
        return points[-1] if points else None

    def series_values(self, name: str) -> List[Tuple[float, float]]:
        return [(p.time, p.value) for p in self.series.get(name, [])]

    # ------------------------------------------------------------- reporting

    def table(self) -> List[Tuple[str, str]]:
        """All metrics as (name, rendered value) rows, sorted by name."""
        rows: List[Tuple[str, str]] = []
        for name in sorted(self.counters):
            rows.append((name, f"{self.counters[name]:g}"))
        for name in sorted(self.samples):
            s = self.summary(name)
            rows.append(
                (name, f"n={s.count} mean={s.mean:.6g} p50={s.p50:.6g} p95={s.p95:.6g}")
            )
        for name in sorted(self.series):
            last = self.last(name)
            assert last is not None
            rows.append((name, f"points={len(self.series[name])} last={last.value:g}"))
        return rows

    def render(self, title: str = "metrics") -> str:
        lines = [title, "-" * len(title)]
        width = max((len(name) for name, _value in self.table()), default=0)
        for name, value in self.table():
            lines.append(f"{name:<{width}}  {value}")
        return "\n".join(lines)
