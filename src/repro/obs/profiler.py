"""Event-loop profiling: wall-clock attribution per callback type.

The simulator is the only place real time is spent, so knowing *which
callbacks* burn it is the map every perf PR needs. A :class:`LoopProfiler`
plugged into :meth:`repro.netsim.simulator.Simulator.set_profiler` receives
``(fn, elapsed_seconds)`` for every processed event and aggregates by the
callback's qualified name::

    sim = Simulator()
    profiler = LoopProfiler.attach(sim)
    ... run the workload ...
    print(profiler.render())

The hook costs one ``is None`` check per event when detached; attach only
when measuring.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List


class LoopProfiler:
    """Aggregates per-callback-type wall-clock time."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        # key -> [calls, total_seconds]
        self._records: Dict[str, List[float]] = {}

    @staticmethod
    def attach(sim: Any) -> "LoopProfiler":
        """Create a profiler and install it on a simulator."""
        profiler = LoopProfiler()
        sim.set_profiler(profiler)
        return profiler

    def add(self, fn: Callable[..., None], elapsed_s: float) -> None:
        key = getattr(fn, "__qualname__", None) or repr(fn)
        record = self._records.get(key)
        if record is None:
            self._records[key] = [1, elapsed_s]
        else:
            record[0] += 1
            record[1] += elapsed_s

    # --------------------------------------------------------------- reading

    @property
    def total_s(self) -> float:
        return sum(total for _calls, total in self._records.values())

    @property
    def calls(self) -> int:
        return int(sum(calls for calls, _total in self._records.values()))

    def rows(self) -> List[Dict[str, Any]]:
        """Per-callback stats, heaviest total first."""
        total = self.total_s or 1.0
        rows = [
            {
                "callback": key,
                "calls": int(calls),
                "total_ms": elapsed * 1e3,
                "mean_us": elapsed / calls * 1e6,
                "share": elapsed / total,
            }
            for key, (calls, elapsed) in self._records.items()
        ]
        rows.sort(key=lambda row: (-row["total_ms"], row["callback"]))
        return rows

    def render(self, title: str = "event-loop profile") -> str:
        rows = self.rows()
        lines = [title, "-" * len(title)]
        if not rows:
            lines.append("(no events profiled)")
            return "\n".join(lines)
        width = max(len(row["callback"]) for row in rows)
        lines.append(f"{'callback':<{width}}  {'calls':>8} {'total ms':>10} "
                     f"{'mean us':>9} {'share':>6}")
        for row in rows:
            lines.append(
                f"{row['callback']:<{width}}  {row['calls']:>8} "
                f"{row['total_ms']:>10.3f} {row['mean_us']:>9.2f} "
                f"{row['share']:>6.1%}"
            )
        return "\n".join(lines)
