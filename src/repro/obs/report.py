"""Plain-text reporting over exported traces.

Usage::

    python -m repro.obs.report trace.json             # validate + summarize
    python -m repro.obs.report --validate trace.json  # validate only (CI)

Exits non-zero if the file is not valid Chrome trace-event JSON, so CI can
gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import render_summary, validate_chrome_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("trace", type=Path, help="exported trace JSON file")
    parser.add_argument("--validate", action="store_true",
                        help="only validate against the Chrome trace-event "
                             "schema; print nothing but the verdict")
    args = parser.parse_args(argv)

    try:
        trace = json.loads(args.trace.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1

    errors = validate_chrome_trace(trace)
    if errors:
        for error in errors[:20]:
            print(f"invalid: {error}", file=sys.stderr)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more", file=sys.stderr)
        return 1

    event_count = len(trace.get("traceEvents", []))
    if args.validate:
        print(f"OK: {args.trace} is valid Chrome trace JSON ({event_count} events)")
        return 0

    print(render_summary(trace, title=f"{args.trace} ({event_count} events)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
