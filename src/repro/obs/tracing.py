"""Causal tracing over simulated time.

A :class:`Span` is a named interval of sim time with labels and a parent;
spans with the same ``trace_id`` form one tree per root operation. The
module-level :data:`TRACER` singleton is what the middleware instruments
against — components do::

    from repro.obs.tracing import TRACER
    ...
    if TRACER.enabled:
        with TRACER.span("transport.send", node=..., peer=...):
            self._send(destination, payload)
    else:
        self._send(destination, payload)

Design points:

* **Off by default, near-zero disabled cost.** ``TRACER.enabled`` is a
  plain attribute; the disabled branch does no allocation. Call sites that
  cannot use ``with`` get :data:`NOOP_SPAN`, whose methods all no-op.
* **Deterministic ids.** :meth:`Tracer.enable` derives the id stream from
  ``repro.util.rng.split_rng(seed, "obs.span-ids")`` — never ``uuid4`` or
  module-level ``random`` — so a seeded run exports a byte-identical trace.
* **Well-nested by construction.** Closing a span extends every finished
  ancestor's end to cover it, so a parent's sim-time interval is always the
  closure of its children's even for asynchronous operations (an RPC span
  closed when the reply arrives, a deliver span on another node). Sim time
  is monotone, so a child can never *start* before its parent.
* **Context propagation.** The tracer keeps a stack of active spans; a new
  span parents onto the top of the stack unless an explicit ``parent`` (a
  :class:`Span` or a ``(trace_id, span_id)`` tuple carried in a packet
  header) is given. :meth:`Tracer.activate` re-enters an open asynchronous
  span so work done on its behalf nests under it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.util.rng import split_rng

#: Wire-friendly span reference: ``(trace_id, span_id)``.
SpanContext = Tuple[str, str]


class _NoopSpan:
    """Absorbs the full Span API without recording anything."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_label(self, **labels: Any) -> None:
        pass

    def finish(self, end_time: Optional[float] = None) -> None:
        pass

    def context(self) -> Optional[SpanContext]:
        return None


#: Shared disabled-tracer span; all operations on it are no-ops.
NOOP_SPAN = _NoopSpan()


class Span:
    """One named sim-time interval in a trace tree."""

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "start", "end", "labels", "_stacked")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str], start: float,
                 labels: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.labels = labels
        self._stacked = False

    def context(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    def set_label(self, **labels: Any) -> None:
        self.labels.update(labels)

    def finish(self, end_time: Optional[float] = None) -> None:
        """Close the span (idempotent); extends finished ancestors to cover it."""
        self.tracer._finish(self, end_time)

    def __enter__(self) -> "Span":
        self.tracer._stack.append(self)
        self._stacked = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._stacked:
            stack = self.tracer._stack
            if stack and stack[-1] is self:
                stack.pop()
            elif self in stack:  # defensive: out-of-order exit
                stack.remove(self)
            self._stacked = False
        if exc_type is not None:
            self.labels.setdefault("error", exc_type.__name__)
        self.finish()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
                f"parent={self.parent_id}, [{self.start}, {self.end}])")


class _Activation:
    """Re-enters an open asynchronous span as the current ambient parent."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._tracer._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        elif self._span in stack:
            stack.remove(self._span)
        return False


Parent = Union[Span, SpanContext, None]


class Tracer:
    """Collects spans; disabled (and free) until :meth:`enable` is called."""

    def __init__(self) -> None:
        self.enabled = False
        self.seed = 0
        self._clock: Optional[Any] = None
        self._rng = split_rng(0, "obs.span-ids")
        self.spans: List[Span] = []
        self._index: Dict[str, Span] = {}
        self._stack: List[Span] = []

    # ------------------------------------------------------------- lifecycle

    def enable(self, seed: int = 0, clock: Optional[Any] = None) -> "Tracer":
        """Start recording. ``clock`` supplies sim time (``.now()``);
        span/trace ids derive deterministically from ``seed``."""
        self.seed = seed
        self._rng = split_rng(seed, "obs.span-ids")
        self._clock = clock
        self.spans = []
        self._index = {}
        self._stack = []
        self.enabled = True
        return self

    def disable(self) -> None:
        """Stop recording; collected spans stay readable until re-enable."""
        self.enabled = False
        self._stack = []

    def reset(self) -> None:
        """Drop all collected spans and restart the id stream from the seed."""
        self._rng = split_rng(self.seed, "obs.span-ids")
        self.spans = []
        self._index = {}
        self._stack = []

    def set_clock(self, clock: Optional[Any]) -> None:
        self._clock = clock

    def now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    # --------------------------------------------------------------- context

    def current_context(self) -> Optional[SpanContext]:
        """The ambient span's ``(trace_id, span_id)``, for packet headers."""
        stack = self._stack
        return stack[-1].context() if stack else None

    def activate(self, span: Union[Span, _NoopSpan, None]):
        """Context manager making an open async ``span`` the ambient parent."""
        if not self.enabled or not isinstance(span, Span):
            return NOOP_SPAN
        return _Activation(self, span)

    # --------------------------------------------------------------- spans

    def _new_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"

    def span(self, name: str, parent: Parent = None,
             **labels: Any) -> Union[Span, _NoopSpan]:
        """Open a span.

        Use as a context manager for synchronous work (entering pushes it on
        the ambient stack); or keep the returned span and :meth:`Span.finish`
        it later for asynchronous operations. ``parent`` overrides the
        ambient stack — pass a carried ``(trace_id, span_id)`` tuple to
        continue a trace across a process/hop boundary.
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is None and self._stack:
            parent = self._stack[-1]
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id, parent_id = self._new_id(), None
        span = Span(self, name, trace_id, self._new_id(), parent_id,
                    self.now(), labels)
        self.spans.append(span)
        self._index[span.span_id] = span
        return span

    def instant(self, name: str, parent: Parent = None, **labels: Any) -> None:
        """Record a zero-duration event (drops, give-ups, state marks)."""
        if not self.enabled:
            return
        span = self.span(name, parent=parent, **labels)
        assert isinstance(span, Span)
        self._finish(span, span.start)

    def _finish(self, span: Span, end_time: Optional[float]) -> None:
        if span.end is not None:
            return
        end = self.now() if end_time is None else end_time
        if end < span.start:
            end = span.start
        span.end = end
        # Well-nestedness: a finished ancestor's interval must contain this
        # child's. (An ancestor still open will close later, at a sim time
        # >= `end`, because sim time is monotone.)
        parent_id = span.parent_id
        while parent_id is not None:
            parent = self._index.get(parent_id)
            if parent is None or parent.end is None or parent.end >= end:
                break
            parent.end = end
            parent_id = parent.parent_id

    def finish_all(self) -> None:
        """Close every still-open span at the current time (children first,
        so ancestor extension sees final child intervals)."""
        for span in reversed(self.spans):
            if span.end is None:
                self._finish(span, None)

    # ------------------------------------------------------------ inspection

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def by_trace(self) -> Dict[str, List[Span]]:
        traces: Dict[str, List[Span]] = {}
        for span in self.spans:
            traces.setdefault(span.trace_id, []).append(span)
        return traces


#: The process-wide tracer every instrumentation site checks.
TRACER = Tracer()
