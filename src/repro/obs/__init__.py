"""Observability: causal tracing, metrics, exporters, and profiling.

The middleware cannot be operated — or optimized — blind. This package is
the stack-wide instrumentation layer:

* :mod:`repro.obs.tracing` — causal spans over *sim time*. Trace context is
  carried in packet headers across hops, so one application operation (an
  RPC, a transaction delivery, a route discovery) forms a single well-nested
  span tree no matter how many nodes it touches. Tracing is **off by
  default**: every instrumentation site is guarded by ``TRACER.enabled``
  and costs one attribute check when disabled.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and streaming
  histograms (p50/p95/p99) keyed by name+labels. The old
  :class:`MetricsRecorder` lives here now and remains fully compatible.
* :mod:`repro.obs.export` — Chrome trace-event JSON (loadable in Perfetto)
  mapping spans onto per-node timelines, plus plain-text summaries.
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.json``.
* :mod:`repro.obs.profiler` — wall-clock attribution per event-loop
  callback type, pluggable into :class:`repro.netsim.simulator.Simulator`.

Span ids derive from :func:`repro.util.rng.split_rng`, so two runs with the
same seed export byte-identical traces.
"""

from repro.obs.export import (
    chrome_trace,
    dump_trace,
    render_summary,
    subsystems,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    MetricsRecorder,
    MetricsRegistry,
    SeriesPoint,
    Summary,
    get_registry,
)
from repro.obs.profiler import LoopProfiler
from repro.obs.tracing import NOOP_SPAN, Span, Tracer, TRACER

__all__ = [
    "TRACER",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "MetricsRegistry",
    "MetricsRecorder",
    "Summary",
    "SeriesPoint",
    "get_registry",
    "LoopProfiler",
    "chrome_trace",
    "dump_trace",
    "validate_chrome_trace",
    "render_summary",
    "subsystems",
]
