"""Trace exporters: Chrome trace-event JSON and plain-text summaries.

The Chrome trace-event format (the JSON Perfetto and ``chrome://tracing``
load) models a trace as a flat list of events with process/thread ids. We
map the simulation onto it as:

* **process** (``pid``) — one per node (spans labelled ``node=...``);
  spans without a node label (MiLAN, transactions driven from outside the
  network) land on the ``"system"`` process;
* **thread** (``tid``) — one per subsystem within a process (``transport``,
  ``route``, ``rpc``, ``txn``, ``discovery``, ``milan``, ...), taken from
  the span name's first dot-separated component;
* **event** — one complete (``"ph": "X"``) event per span, ``ts``/``dur``
  in microseconds of sim time, span/trace/parent ids and labels in
  ``args``.

Exports are deterministic: processes and threads are numbered in sorted
order, events follow span creation order, and the JSON is dumped with
sorted keys — two seeded runs produce byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Set, Union

from repro.obs.metrics import Summary
from repro.obs.tracing import Tracer

DEFAULT_PROCESS = "system"

#: Event phases the validator accepts (the subset Perfetto cares about).
_KNOWN_PHASES = {"X", "M", "B", "E", "i", "I", "s", "f", "t", "C"}


def _subsystem(name: str) -> str:
    return name.split(".", 1)[0]


def chrome_trace(tracer: Tracer, default_process: str = DEFAULT_PROCESS) -> Dict[str, Any]:
    """Render the tracer's spans as a Chrome trace-event JSON object."""
    spans = list(tracer.spans)
    processes = sorted({str(s.labels.get("node", default_process)) for s in spans})
    pid_of = {name: i + 1 for i, name in enumerate(processes)}
    tracks = sorted({(str(s.labels.get("node", default_process)),
                      _subsystem(s.name)) for s in spans})
    tid_of: Dict[Any, int] = {}
    next_tid: Dict[str, int] = {}
    for process, subsystem in tracks:
        tid = next_tid.get(process, 1)
        next_tid[process] = tid + 1
        tid_of[(process, subsystem)] = tid

    events: List[Dict[str, Any]] = []
    for process in processes:
        events.append({"ph": "M", "name": "process_name", "pid": pid_of[process],
                       "tid": 0, "args": {"name": process}})
    for (process, subsystem), tid in sorted(tid_of.items()):
        events.append({"ph": "M", "name": "thread_name", "pid": pid_of[process],
                       "tid": tid, "args": {"name": subsystem}})
    for span in spans:
        process = str(span.labels.get("node", default_process))
        end = span.end if span.end is not None else span.start
        args: Dict[str, Any] = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.labels.items():
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        events.append({
            "name": span.name,
            "cat": _subsystem(span.name),
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round((end - span.start) * 1e6, 3),
            "pid": pid_of[process],
            "tid": tid_of[(process, _subsystem(span.name))],
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_trace(trace: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write a trace object as deterministic (sorted-key, compact) JSON."""
    Path(path).write_text(
        json.dumps(trace, sort_keys=True, separators=(",", ":")) + "\n"
    )


def validate_chrome_trace(trace: Any) -> List[str]:
    """Check an object against the Chrome trace-event schema.

    Returns a list of error strings — empty when the trace is loadable.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace must contain a 'traceEvents' list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing event name")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{where}: {field!r} must be a number >= 0")
            for field in ("pid", "tid"):
                if not isinstance(event.get(field), int):
                    errors.append(f"{where}: {field!r} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors


def subsystems(trace: Dict[str, Any]) -> Set[str]:
    """The set of subsystems (span-name prefixes) present in a trace."""
    return {
        event.get("cat", _subsystem(event["name"]))
        for event in trace.get("traceEvents", [])
        if event.get("ph") == "X"
    }


def span_rows(trace: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-span-name duration statistics, slowest total first."""
    durations: Dict[str, List[float]] = {}
    for event in trace.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        durations.setdefault(event["name"], []).append(float(event.get("dur", 0.0)))
    rows = []
    for name in sorted(durations):
        summary = Summary.of(durations[name])
        rows.append({
            "span": name,
            "count": summary.count,
            "total_ms": sum(durations[name]) / 1e3,
            "p50_us": summary.p50,
            "p95_us": summary.p95,
            "p99_us": summary.p99,
            "max_us": summary.maximum,
        })
    rows.sort(key=lambda row: -row["total_ms"])
    return rows


def render_summary(trace: Dict[str, Any], title: str = "trace summary") -> str:
    rows = span_rows(trace)
    lines = [title, "-" * len(title)]
    lines.append(f"subsystems: {', '.join(sorted(subsystems(trace))) or '(none)'}")
    if not rows:
        lines.append("(no spans)")
        return "\n".join(lines)
    width = max(len(row["span"]) for row in rows)
    lines.append(f"{'span':<{width}}  {'count':>6} {'total ms':>10} "
                 f"{'p50 us':>9} {'p95 us':>9} {'p99 us':>9}")
    for row in rows:
        lines.append(
            f"{row['span']:<{width}}  {row['count']:>6} {row['total_ms']:>10.3f} "
            f"{row['p50_us']:>9.1f} {row['p95_us']:>9.1f} {row['p99_us']:>9.1f}"
        )
    return "\n".join(lines)
