"""Shared-key encrypted transport.

Section 3.3 places security either "into the matching protocol (e.g.,
through password verification)" — which :mod:`repro.qos.spec` implements —
"or the transport protocols (e.g., through encryption)" — which this layer
implements: a :class:`SecureTransport` wrapper that encrypts and
authenticates every payload with a pre-shared key. Peers without the key
cannot read traffic, and tampered or foreign frames are dropped (and
counted) instead of delivered.

Construction (standard library only, since the reproduction vendors no
crypto dependency): SHA-256 in counter mode as the keystream, HMAC-SHA-256
(truncated to 16 bytes) over nonce + ciphertext for integrity. This is the
classic encrypt-then-MAC composition and is sound for the simulation's
threat model, but a production deployment should swap in a vetted AEAD —
the wire format leaves room for that swap.

Frame: ``nonce(12 bytes) + ciphertext + tag(16 bytes)``.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import Optional

from repro.errors import ConfigurationError
from repro.transport.base import Address, Scheduler, Transport

NONCE_BYTES = 12
TAG_BYTES = 16

#: Accounted per-message overhead of this layer.
SECURE_OVERHEAD_BYTES = NONCE_BYTES + TAG_BYTES

_BLOCK = struct.Struct(">Q")


def _derive(key: bytes, label: bytes) -> bytes:
    """Independent subkeys for encryption and authentication."""
    return hashlib.sha256(label + key).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + 31) // 32):
        blocks.append(hashlib.sha256(key + nonce + _BLOCK.pack(counter)).digest())
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


class SecureChannel:
    """The pure crypto core (seal/open), reusable outside transports."""

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ConfigurationError(
                f"shared key must be at least 16 bytes, got {len(key)}"
            )
        self._enc_key = _derive(key, b"enc:")
        self._mac_key = _derive(key, b"mac:")
        self._nonce_counter = 0

    def _next_nonce(self, party: str) -> bytes:
        self._nonce_counter += 1
        party_hash = hashlib.sha256(party.encode("utf-8")).digest()[:4]
        return party_hash + self._nonce_counter.to_bytes(8, "big")

    def seal(self, party: str, plaintext: bytes) -> bytes:
        # Crypto needs real bytes: a lazy wire frame is materialized here,
        # never passed through by reference.
        plaintext = bytes(plaintext)
        nonce = self._next_nonce(party)
        ciphertext = _xor(plaintext, _keystream(self._enc_key, nonce, len(plaintext)))
        tag = hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()
        return nonce + ciphertext + tag[:TAG_BYTES]

    def open(self, frame: bytes) -> Optional[bytes]:
        """Returns the plaintext, or None if the frame fails authentication."""
        if len(frame) < NONCE_BYTES + TAG_BYTES:
            return None
        nonce = frame[:NONCE_BYTES]
        ciphertext = frame[NONCE_BYTES:-TAG_BYTES]
        tag = frame[-TAG_BYTES:]
        expected = hmac.new(
            self._mac_key, nonce + ciphertext, hashlib.sha256
        ).digest()[:TAG_BYTES]
        if not hmac.compare_digest(tag, expected):
            return None
        return _xor(ciphertext, _keystream(self._enc_key, nonce, len(ciphertext)))


class SecureTransport(Transport):
    """Wraps any transport with shared-key encryption + authentication.

    Both endpoints must be constructed with the same key. Frames that fail
    authentication (wrong key, tampering, non-encrypted traffic) are
    counted in :attr:`auth_failures` and never reach the receiver.
    """

    def __init__(self, inner: Transport, key: bytes):
        super().__init__(inner.local_address)
        self.inner = inner
        self._channel = SecureChannel(key)
        self.auth_failures = 0
        inner.set_receiver(self._on_frame)

    @property
    def scheduler(self) -> Scheduler:
        return self.inner.scheduler

    def _send(self, destination: Address, payload: bytes) -> None:
        self.inner.send(
            destination, self._channel.seal(str(self.local_address), payload)
        )

    def _on_frame(self, source: Address, frame: bytes) -> None:
        plaintext = self._channel.open(frame)
        if plaintext is None:
            self.auth_failures += 1
            return
        self._dispatch(source, plaintext)

    def close(self) -> None:
        super().close()
        self.inner.close()
