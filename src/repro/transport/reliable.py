"""Reliable delivery over any best-effort transport.

Adds per-destination sequence numbers, positive acknowledgements,
timeout-based retransmission with exponential backoff, and duplicate
suppression at the receiver. This is the layer the paper's "transactions"
ride on when the underlying network is lossy.

Frame format (kept binary-tight because the overhead experiments count
bytes)::

    DATA: b'D' + seq(u64 big-endian) + payload
    ACK:  b'A' + seq(u64 big-endian)

Broadcast destinations are sent once, unacknowledged — a broadcast has no
single acker.

Duplicate suppression is O(1) memory per peer: a cumulative watermark (all
seqs <= it were delivered) plus a bounded out-of-order window above it.
Frames beyond ``recv_window`` seqs ahead of the watermark are dropped
*without* acking, so the sender retransmits them once the window has
advanced — memory stays bounded without sacrificing exactly-once delivery.

Malformed frames (truncated headers, unknown flags — e.g. chaos-injected
corruption) are counted and dropped, never raised: a raise here would
propagate through the simulator event loop and kill the whole run.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.interop.frames import PrefixedFrame, is_frame, split_frame
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER, SpanContext
from repro.transport.base import Address, Scheduler, Transport
from repro.transport.simnet import BROADCAST_NODE

_SEQ = struct.Struct(">Q")
DATA_FLAG = b"D"
ACK_FLAG = b"A"

#: Bytes of reliability header on each data frame.
RELIABLE_HEADER_BYTES = 1 + _SEQ.size


@dataclass(frozen=True)
class ReliabilityParams:
    """Tuning knobs for the retransmission policy (bench E12 ablates these)."""

    ack_timeout_s: float = 0.2
    max_retries: int = 5
    backoff_factor: float = 2.0
    recv_window: int = 1024

    def __post_init__(self) -> None:
        if self.ack_timeout_s <= 0:
            raise ConfigurationError(f"ack timeout must be positive, got {self.ack_timeout_s!r}")
        if self.max_retries < 0:
            raise ConfigurationError(f"max retries must be >= 0, got {self.max_retries!r}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(f"backoff factor must be >= 1, got {self.backoff_factor!r}")
        if self.recv_window < 1:
            raise ConfigurationError(f"recv window must be >= 1, got {self.recv_window!r}")

    def timeout_for_attempt(self, attempt: int) -> float:
        """Timeout before the (attempt+1)-th retransmission."""
        return self.ack_timeout_s * (self.backoff_factor**attempt)


GiveUpCallback = Callable[[Address, bytes], None]


class _PeerReceiveState:
    """Per-peer dedup state: cumulative watermark + out-of-order window.

    Every seq <= ``watermark`` has been delivered; ``window`` holds the
    delivered seqs above it (bounded by ``ReliabilityParams.recv_window``,
    enforced by the caller refusing frames too far ahead).
    """

    __slots__ = ("watermark", "window")

    def __init__(self) -> None:
        self.watermark = 0
        self.window: Set[int] = set()

    def is_duplicate(self, seq: int) -> bool:
        return seq <= self.watermark or seq in self.window

    def mark_delivered(self, seq: int) -> None:
        self.window.add(seq)
        watermark = self.watermark
        window = self.window
        while watermark + 1 in window:
            watermark += 1
            window.discard(watermark)
        self.watermark = watermark


class ReliableTransport(Transport):
    """Wraps an unreliable transport with ack/retransmit/dedup.

    The wrapped transport's receiver slot is taken over; install the
    application receiver on *this* object. ``on_give_up`` (optional) is
    called when a message exhausts its retries — the sender's only failure
    signal, since the network itself says nothing.
    """

    def __init__(
        self,
        inner: Transport,
        params: ReliabilityParams = ReliabilityParams(),
        on_give_up: Optional[GiveUpCallback] = None,
    ):
        super().__init__(inner.local_address)
        self.inner = inner
        self.params = params
        self.on_give_up = on_give_up
        self._next_seq: Dict[Address, int] = {}
        # (destination, seq) -> (payload, attempt, timer handle, trace ctx)
        self._pending: Dict[
            Tuple[Address, int],
            Tuple[bytes, int, object, Optional[SpanContext]],
        ] = {}
        self._recv: Dict[Address, _PeerReceiveState] = {}
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.acks_sent = 0
        self.give_ups = 0
        self.malformed_frames = 0
        self.window_overflows = 0
        inner.set_receiver(self._on_frame)

    @property
    def scheduler(self) -> Scheduler:
        return self.inner.scheduler

    # --------------------------------------------------------------- sending

    @staticmethod
    def _data_frame(seq: int, payload: bytes):
        """DATA header + payload; keeps a lazy payload lazy."""
        header = DATA_FLAG + _SEQ.pack(seq)
        if is_frame(payload):
            return PrefixedFrame(header, payload)
        return header + payload

    def _send(self, destination: Address, payload: bytes) -> None:
        if destination.node == BROADCAST_NODE:
            # Fire-and-forget: broadcast cannot be positively acknowledged.
            self.inner.send(destination, self._data_frame(0, payload))
            return
        seq = self._next_seq.get(destination, 1)
        self._next_seq[destination] = seq + 1
        ctx = TRACER.current_context() if TRACER.enabled else None
        self._transmit(destination, seq, payload, attempt=0, ctx=ctx)

    def _transmit(self, destination: Address, seq: int, payload: bytes,
                  attempt: int, ctx: Optional[SpanContext] = None) -> None:
        frame = self._data_frame(seq, payload)
        if attempt > 0 and TRACER.enabled:
            with TRACER.span("transport.retransmit", parent=ctx,
                             node=self._local.node, peer=destination.node,
                             seq=seq, attempt=attempt):
                self.inner.send(destination, frame)
        else:
            self.inner.send(destination, frame)
        timeout = self.params.timeout_for_attempt(attempt)
        handle = self.scheduler.schedule(timeout, self._on_timeout, destination, seq)
        self._pending[(destination, seq)] = (payload, attempt, handle, ctx)

    def _on_timeout(self, destination: Address, seq: int) -> None:
        entry = self._pending.pop((destination, seq), None)
        if entry is None:
            return  # acked in the meantime
        payload, attempt, _handle, ctx = entry
        if attempt >= self.params.max_retries:
            self.give_ups += 1
            if TRACER.enabled and ctx is not None:
                TRACER.instant("transport.give_up", parent=ctx,
                               node=self._local.node, peer=destination.node,
                               seq=seq, attempts=attempt + 1)
            if self.on_give_up is not None:
                self.on_give_up(destination, payload)
            return
        self.retransmissions += 1
        self._transmit(destination, seq, payload, attempt + 1, ctx=ctx)

    # ------------------------------------------------------------- receiving

    def _on_frame(self, source: Address, frame: bytes) -> None:
        header, payload = split_frame(frame, RELIABLE_HEADER_BYTES)
        if header is None:
            self._drop_malformed(source, f"truncated ({len(frame)} bytes)")
            return
        flag, seq = header[:1], _SEQ.unpack_from(header, 1)[0]
        if flag == ACK_FLAG:
            entry = self._pending.pop((source, seq), None)
            if entry is not None:
                _payload, _attempt, handle, _ctx = entry
                cancel = getattr(handle, "cancel", None)
                if cancel is not None:
                    cancel()
            return
        if flag != DATA_FLAG:
            self._drop_malformed(source, f"unknown flag {flag!r}")
            return
        if seq == 0:
            # Unacknowledged broadcast frame: deliver as-is.
            self._dispatch(source, payload)
            return
        state = self._recv.get(source)
        if state is None:
            state = self._recv[source] = _PeerReceiveState()
        if state.is_duplicate(seq):
            # Ack again — the original ack may have been lost.
            self.acks_sent += 1
            self.inner.send(source, ACK_FLAG + _SEQ.pack(seq))
            self.duplicates_suppressed += 1
            if TRACER.enabled:
                TRACER.instant("transport.duplicate",
                               node=self._local.node, peer=source.node, seq=seq)
            return
        if seq > state.watermark + self.params.recv_window:
            # Too far ahead of the watermark to track without unbounded
            # state. Dropped *unacked*, so the sender retransmits it after
            # the gap fills and the watermark catches up.
            self.window_overflows += 1
            if TRACER.enabled:
                TRACER.instant("transport.window_overflow",
                               node=self._local.node, peer=source.node, seq=seq)
            return
        self.acks_sent += 1
        self.inner.send(source, ACK_FLAG + _SEQ.pack(seq))
        state.mark_delivered(seq)
        self._dispatch(source, payload)

    def _drop_malformed(self, source: Address, why: str) -> None:
        self.malformed_frames += 1
        get_registry().counter("transport.malformed",
                               node=self._local.node).inc()
        if TRACER.enabled:
            TRACER.instant("transport.malformed", node=self._local.node,
                           peer=source.node, why=why)

    # --------------------------------------------------------------- closing

    def close(self) -> None:
        super().close()
        for _payload, _attempt, handle, _ctx in self._pending.values():
            cancel = getattr(handle, "cancel", None)
            if cancel is not None:
                cancel()
        self._pending.clear()
        self.inner.close()
