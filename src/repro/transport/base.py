"""Transport abstraction.

A :class:`Transport` is one node's endpoint onto some network technology:
it can send bytes to an :class:`Address` and delivers received bytes to a
single receiver callback. Delivery is best-effort and unordered — exactly
the guarantee a datagram network gives. Reliability, ordering, multiplexing
and structure are layered on top (see :mod:`repro.transport.reliable`,
:mod:`repro.transport.multiplex`, :mod:`repro.interop.codec`).

Transports also expose a :class:`Scheduler` (virtual or real time) so the
layers above can set timers without knowing which world they run in.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol

from repro.errors import AddressError, TransportClosedError
from repro.interop.frames import FRAME_TYPES
from repro.obs.tracing import TRACER


@dataclass(frozen=True, order=True)
class Address:
    """A (node, port) pair. Rendered as ``"node:port"``.

    ``node`` identifies the endpoint's host on its fabric; ``port`` selects a
    service within the host (discovery, rpc, pubsub, ... each bind one).
    """

    node: str
    port: str = "default"

    def __str__(self) -> str:
        return f"{self.node}:{self.port}"

    @staticmethod
    def parse(text: str) -> "Address":
        """Parse ``"node:port"`` (port optional)."""
        if not text:
            raise AddressError("empty address")
        node, sep, port = text.partition(":")
        if not node:
            raise AddressError(f"address {text!r} has no node part")
        return Address(node, port if sep else "default")

    def with_port(self, port: str) -> "Address":
        return Address(self.node, port)


Receiver = Callable[[Address, bytes], None]


class Scheduler(Protocol):
    """Timer facility: virtual time under simulation, real time otherwise."""

    def now(self) -> float:
        ...

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Any:
        """Run ``fn(*args)`` after ``delay`` seconds; returns a cancellable handle."""
        ...


class Transport(abc.ABC):
    """One endpoint's best-effort datagram interface."""

    def __init__(self, local: Address):
        self._local = local
        self._receiver: Optional[Receiver] = None
        self._closed = False
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0
        self.received_bytes = 0

    # ------------------------------------------------------------ properties

    @property
    def local_address(self) -> Address:
        return self._local

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    @abc.abstractmethod
    def scheduler(self) -> Scheduler:
        """The timer facility for this transport's world."""

    # --------------------------------------------------------------- sending

    def send(self, destination: Address, payload: bytes) -> None:
        """Send bytes (or a lazy wire frame), best-effort. Raises only on
        local errors (closed endpoint, bad address) — remote loss is silent,
        as on a real network.

        Frames (:class:`~repro.interop.frames.WireFrame` /
        :class:`~repro.interop.frames.PrefixedFrame`) travel by reference so
        same-process delivery never forces their encoding; ``len(payload)``
        still reports the exact wire size either way.
        """
        if self._closed:
            raise TransportClosedError(f"{self._local} is closed")
        if isinstance(payload, bytearray):
            payload = bytes(payload)
        elif not isinstance(payload, bytes) and not isinstance(payload, FRAME_TYPES):
            raise TypeError(
                f"transport payloads must be bytes, got {type(payload).__name__}"
            )
        self.sent_messages += 1
        self.sent_bytes += len(payload)
        if TRACER.enabled:
            with TRACER.span(
                "transport.send",
                node=self._local.node,
                layer=type(self).__name__,
                peer=destination.node,
            ):
                self._send(destination, payload)
        else:
            self._send(destination, payload)

    @abc.abstractmethod
    def _send(self, destination: Address, payload: bytes) -> None:
        """Technology-specific transmission."""

    # ------------------------------------------------------------- receiving

    def set_receiver(self, receiver: Optional[Receiver]) -> None:
        """Install the upper-layer receive callback (one per endpoint)."""
        self._receiver = receiver

    def _dispatch(self, source: Address, payload: bytes) -> None:
        """Called by subclasses when bytes arrive for this endpoint."""
        if self._closed:
            return
        self.received_messages += 1
        self.received_bytes += len(payload)
        if self._receiver is not None:
            self._receiver(source, payload)

    # --------------------------------------------------------------- closing

    def close(self) -> None:
        """Close the endpoint; further sends raise, further receives drop."""
        self._closed = True


class RealTimeScheduler:
    """A Scheduler over wall-clock time using ``threading.Timer``.

    Provided for completeness (running the middleware outside the simulator);
    tests and experiments always use virtual-time schedulers.
    """

    def __init__(self) -> None:
        import time

        self._time = time

    def now(self) -> float:
        return self._time.monotonic()

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Any:
        import threading

        timer = threading.Timer(max(0.0, delay), fn, args=args)
        timer.daemon = True
        timer.start()
        return timer
