"""Transport layer: the paper's "network independence" feature (Section 3.2).

Everything above this package (discovery, transactions, MiLAN) talks to a
single abstraction — :class:`repro.transport.base.Transport` — and therefore
runs unchanged over:

* :mod:`repro.transport.inmemory` — an in-process fabric with virtual time
  (unit tests, single-machine deployments),
* :mod:`repro.transport.simnet` — the simulated wireless/wireline networks of
  :mod:`repro.netsim`, with per-technology profiles (802.11, Bluetooth,
  Ethernet),

optionally composed with:

* :mod:`repro.transport.reliable` — acknowledgements, retransmission, and
  duplicate suppression over any lossy transport,
* :mod:`repro.transport.secure` — shared-key encryption and authentication
  (Section 3.3's transport-level security),
* :mod:`repro.transport.multiplex` — named channels over one endpoint,
* :mod:`repro.transport.pacing` — bounded-queue, token-bucket-paced sending
  charged against a :class:`~repro.scheduling.bandwidth.BandwidthAllocator`
  reservation (the overload-protection send path),
* :mod:`repro.transport.stack` — declarative composition of the above.

Payloads are ``bytes`` end to end; structured messages are encoded by
:mod:`repro.interop.codec`. This keeps on-wire byte accounting honest in the
overhead experiments.
"""

from repro.transport.base import Address, Scheduler, Transport
from repro.transport.inmemory import InMemoryFabric, InMemoryTransport
from repro.transport.multiplex import ChannelTransport, Multiplexer
from repro.transport.pacing import PacedTransport
from repro.transport.reliable import ReliabilityParams, ReliableTransport
from repro.transport.secure import SecureChannel, SecureTransport
from repro.transport.simnet import SimFabric, SimTransport
from repro.transport.stack import StackSpec, build_stack

__all__ = [
    "Address",
    "Scheduler",
    "Transport",
    "InMemoryFabric",
    "InMemoryTransport",
    "ChannelTransport",
    "Multiplexer",
    "PacedTransport",
    "ReliabilityParams",
    "ReliableTransport",
    "SecureChannel",
    "SecureTransport",
    "SimFabric",
    "SimTransport",
    "StackSpec",
    "build_stack",
]
