"""Transport over the simulated network.

:class:`SimFabric` adapts a :class:`repro.netsim.network.Network` to the
transport abstraction: each simulated node gets a port dispatcher, and each
``(node, port)`` pair gets a :class:`SimTransport` endpoint.

Delivery is **single-hop**: a unicast reaches its destination only if the
radio/wire does. Multi-hop delivery is middleware functionality — exactly
the position the paper takes in Section 3.5 — and is provided by
:class:`repro.routing.base.RoutedTransport` on top of this one.

The special node name ``"*"`` broadcasts to all radio neighbors; receivers
see the true source address.

Payloads ride inside :class:`~repro.netsim.packet.Packet` objects by
reference, and ``payload_bytes`` is computed with ``len(payload)`` — which a
lazy :class:`~repro.interop.frames.WireFrame` answers without materializing
— so serialization-delay and energy accounting are identical whether a
payload is eager bytes or a frame.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.netsim.network import Network
from repro.netsim.node import Node
from repro.netsim.packet import BROADCAST, Packet
from repro.obs.tracing import TRACER
from repro.transport.base import Address, Scheduler, Transport

#: Accounted overhead for the port-demux header (bytes).
PORT_HEADER_BYTES = 4

#: Broadcast node name at the transport level.
BROADCAST_NODE = BROADCAST


class _SimScheduler:
    """Node-local view of the simulator clock.

    ``skew`` models a drifting local timer: a node with ``skew=1.1`` fires
    its relative timers 10% late (its timer hardware runs slow), one with
    ``skew=0.9`` fires 10% early. ``now()`` stays the shared virtual time —
    skew affects only where *new* timers land, which is what desynchronizes
    heartbeat/retransmit/advertisement periods between nodes under chaos.
    """

    def __init__(self, network: Network, skew: float = 1.0):
        self._sim = network.sim
        self.skew = skew

    def now(self) -> float:
        return self._sim.now()

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Any:
        return self._sim.schedule(delay * self.skew, fn, *args)


class SimFabric:
    """Binds transport endpoints onto a simulated network."""

    def __init__(self, network: Network):
        self.network = network
        self._scheduler = _SimScheduler(network)
        self._node_schedulers: Dict[str, _SimScheduler] = {}
        # (node_id, port) -> endpoint
        self._endpoints: Dict[Tuple[str, str], "SimTransport"] = {}
        self._dispatching_nodes: Dict[str, Node] = {}

    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    def scheduler_for(self, node_id: str) -> Scheduler:
        """The per-node scheduler (shares the fabric clock until skewed)."""
        scheduler = self._node_schedulers.get(node_id)
        if scheduler is None:
            scheduler = _SimScheduler(self.network)
            self._node_schedulers[node_id] = scheduler
        return scheduler

    def set_clock_skew(self, node_id: str, factor: float) -> None:
        """Stretch (``factor > 1``) or shrink (``< 1``) a node's timer delays.

        Applies to every endpoint of ``node_id`` already created or created
        later. ``factor=1.0`` restores nominal timing.
        """
        if factor <= 0:
            raise ConfigurationError(
                f"clock skew factor must be positive, got {factor!r}"
            )
        scheduler = self.scheduler_for(node_id)
        assert isinstance(scheduler, _SimScheduler)
        scheduler.skew = factor

    def endpoint(self, node_id: str, port: str = "default") -> "SimTransport":
        """Create an endpoint for ``node_id:port`` on the simulated network."""
        transport = SimTransport(Address(node_id, port), self)
        self.bind(node_id, port, transport)
        return transport

    def bind(self, node_id: str, port: str, transport) -> None:
        """Register any Transport to receive ``node_id:port`` traffic.

        Used by the routing layer so one-hop frames (e.g. discovery
        broadcasts) reach ports that were opened through a routing agent.
        """
        key = (node_id, port)
        if key in self._endpoints:
            raise ConfigurationError(f"endpoint {node_id}:{port} already exists")
        node = self.network.node(node_id)
        if node_id not in self._dispatching_nodes:
            node.set_packet_handler(self._on_packet)
            self._dispatching_nodes[node_id] = node
        self._endpoints[key] = transport

    def remove(self, address: Address) -> None:
        self._endpoints.pop((address.node, address.port), None)

    def _transmit(self, source: Address, destination: Address, payload: bytes) -> None:
        packet = Packet(
            source=source.node,
            destination=(
                BROADCAST if destination.node == BROADCAST_NODE else destination.node
            ),
            payload=(source.port, destination.port, payload),
            payload_bytes=len(payload) + PORT_HEADER_BYTES,
        )
        if TRACER.enabled:
            ctx = TRACER.current_context()
            if ctx is not None:
                packet.headers["trace"] = ctx
        self.network.send(source.node, packet)

    def inject(self, destination: Address, source: Address, payload: bytes) -> None:
        """Deliver bytes directly to a local endpoint, bypassing the radio.

        Used by the routing layer: when a multi-hop envelope reaches its
        final node, the routing agent hands the inner payload to the target
        port through this call.
        """
        endpoint = self._endpoints.get((destination.node, destination.port))
        if endpoint is None or endpoint.closed:
            return
        if TRACER.enabled:
            with TRACER.span(
                "transport.deliver",
                node=destination.node,
                port=destination.port,
                peer=source.node,
            ):
                endpoint._dispatch(source, payload)
        else:
            endpoint._dispatch(source, payload)

    def _on_packet(self, node: Node, packet: Packet) -> None:
        payload = packet.payload
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return  # not transport traffic (e.g. raw routing-layer frames)
        source_port, dest_port, data = payload
        endpoint = self._endpoints.get((node.node_id, dest_port))
        if endpoint is None or endpoint.closed:
            return
        if TRACER.enabled:
            with TRACER.span(
                "transport.deliver",
                parent=packet.headers.get("trace"),
                node=node.node_id,
                port=dest_port,
                peer=packet.source,
            ):
                endpoint._dispatch(Address(packet.source, source_port), data)
        else:
            endpoint._dispatch(Address(packet.source, source_port), data)

    def run(self) -> None:
        """Pump all pending simulator events (convenience for tests)."""
        self.network.sim.run()


class SimTransport(Transport):
    """An endpoint bound to one simulated node and port."""

    def __init__(self, local: Address, fabric: SimFabric):
        super().__init__(local)
        self._fabric = fabric

    @property
    def scheduler(self) -> Scheduler:
        return self._fabric.scheduler_for(self._local.node)

    @property
    def node(self) -> Node:
        return self._fabric.network.node(self._local.node)

    def _send(self, destination: Address, payload: bytes) -> None:
        self._fabric._transmit(self._local, destination, payload)

    def broadcast(self, payload: bytes, port: str | None = None) -> None:
        """Broadcast to all radio neighbors on ``port`` (default: own port)."""
        self.send(Address(BROADCAST_NODE, port or self._local.port), payload)

    def close(self) -> None:
        super().close()
        self._fabric.remove(self._local)
