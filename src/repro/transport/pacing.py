"""Paced sending: bounded queues + token-bucket flow control.

This is the transport half of the overload-protection story (ROADMAP item
4, paper Section 3.7): a :class:`PacedTransport` charges every send against
a flow reserved on a shared :class:`~repro.scheduling.bandwidth
.BandwidthAllocator`. Sends the reservation cannot carry *now* wait in a
**bounded** FIFO queue and drain as tokens refill; when the queue is full
the transport says "no" — the message is **shed** (counted, surfaced via
``on_shed``, and visible as metrics) instead of growing memory without
bound until the run ends.

Layering is the caller's choice:

* *above* :class:`~repro.transport.reliable.ReliableTransport` — admission
  semantics: a shed message was never handed to the reliability layer, so
  no retransmit state is created for it (the flash-crowd chaos mix and the
  overload bench use this);
* *below* it — link pacing: retransmissions are paced too, and a shed
  frame looks like loss, which the reliability layer recovers from.

Shedding is tail-drop (the arriving message is refused, queued messages
keep their place): FIFO order is preserved for whatever is eventually
sent, and the oldest — closest-to-transmitting — work is never wasted.

Metrics: ``transport.paced.sent`` / ``.queued`` / ``.shed`` counters and a
``transport.paced.queue_depth`` gauge, labeled by node and flow;
:attr:`max_queue_depth` records the high-water mark for bounded-memory
invariants.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.scheduling.bandwidth import BandwidthAllocator
from repro.transport.base import Address, Scheduler, Transport

ShedCallback = Callable[[Address, bytes], None]

#: Slack added to every drain-timer wait. ``time_until_available`` returns
#: the *exact* refill time; waking exactly then leaves the bucket an ulp
#: short of the needed tokens about half the time, and the retry wait
#: (~1e-16 s) can fall below float64 resolution at typical sim clocks — a
#: timer that no longer advances virtual time. A microsecond of slack
#: guarantees the refill covers the deficit.
_DRAIN_SLACK_S = 1e-6


class PacedTransport(Transport):
    """Wraps any transport with reservation-paced, bounded-queue sending.

    ``rate_bps`` (when given) reserves ``flow_id`` on the allocator at
    construction and releases it on close; pass ``rate_bps=None`` to pace
    against a flow the caller reserved (and owns) itself. ``privileged``
    flows may borrow unreserved headroom (Section 3.7's handoff boost).

    The receive path is a pass-through: the wrapped transport's receiver
    slot is taken over, install the application receiver on *this* object.
    """

    def __init__(
        self,
        inner: Transport,
        allocator: BandwidthAllocator,
        flow_id: str,
        *,
        rate_bps: Optional[float] = None,
        privileged: bool = False,
        max_queue: int = 64,
        header_bits: float = 0.0,
        on_shed: Optional[ShedCallback] = None,
    ):
        if max_queue < 1:
            raise ConfigurationError(f"max queue must be >= 1, got {max_queue!r}")
        if header_bits < 0:
            raise ConfigurationError(f"header bits must be >= 0, got {header_bits!r}")
        super().__init__(inner.local_address)
        self.inner = inner
        self.allocator = allocator
        self.flow_id = flow_id
        self.max_queue = max_queue
        self.header_bits = header_bits
        self.on_shed = on_shed
        self._owns_flow = rate_bps is not None
        if rate_bps is not None:
            allocator.reserve(flow_id, rate_bps, privileged=privileged,
                              now=inner.scheduler.now())
        elif flow_id not in allocator._flows:
            raise ConfigurationError(
                f"flow {flow_id!r} is not reserved; pass rate_bps to reserve it"
            )
        self._queue: Deque[Tuple[Address, bytes, float]] = deque()
        self._drain_timer: Optional[object] = None
        self.paced_sent = 0
        self.queued = 0
        self.shed = 0
        self.shed_oversize = 0
        self.max_queue_depth = 0
        registry = get_registry()
        labels = {"node": self._local.node, "flow": flow_id}
        self._sent_counter = registry.counter("transport.paced.sent", **labels)
        self._queued_counter = registry.counter("transport.paced.queued", **labels)
        self._shed_counter = registry.counter("transport.paced.shed", **labels)
        self._depth_gauge = registry.gauge("transport.paced.queue_depth", **labels)
        inner.set_receiver(self._dispatch)

    @property
    def scheduler(self) -> Scheduler:
        return self.inner.scheduler

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # --------------------------------------------------------------- sending

    def _bits(self, payload: bytes) -> float:
        return len(payload) * 8.0 + self.header_bits

    def _send(self, destination: Address, payload: bytes) -> None:
        now = self.scheduler.now()
        bits = self._bits(payload)
        if not self._queue and self.allocator.try_send(self.flow_id, bits, now):
            self.paced_sent += 1
            self._sent_counter.inc()
            self.inner.send(destination, payload)
            return
        if math.isinf(self.allocator.time_until_available(self.flow_id, bits, now)):
            # Larger than any burst this flow can ever assemble: queueing it
            # would wedge the head of the line forever.
            self.shed_oversize += 1
            self._shed(destination, payload, why="oversize")
            return
        if len(self._queue) >= self.max_queue:
            self._shed(destination, payload, why="queue_full")
            return
        self._queue.append((destination, payload, bits))
        self.queued += 1
        self._queued_counter.inc()
        depth = len(self._queue)
        self._depth_gauge.set(depth)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self._schedule_drain(now)

    def _shed(self, destination: Address, payload: bytes, why: str) -> None:
        self.shed += 1
        self._shed_counter.inc()
        if TRACER.enabled:
            TRACER.instant("transport.shed", node=self._local.node,
                           flow=self.flow_id, peer=destination.node, why=why)
        if self.on_shed is not None:
            self.on_shed(destination, payload)

    def _schedule_drain(self, now: float) -> None:
        if self._drain_timer is not None:
            return
        _dest, _payload, bits = self._queue[0]
        wait = self.allocator.time_until_available(self.flow_id, bits, now)
        self._drain_timer = self.scheduler.schedule(
            wait + _DRAIN_SLACK_S, self._drain
        )

    def _drain(self) -> None:
        self._drain_timer = None
        if self._closed:
            return
        now = self.scheduler.now()
        while self._queue:
            destination, payload, bits = self._queue[0]
            if not self.allocator.try_send(self.flow_id, bits, now):
                break
            self._queue.popleft()
            self.paced_sent += 1
            self._sent_counter.inc()
            self.inner.send(destination, payload)
        self._depth_gauge.set(len(self._queue))
        if self._queue:
            self._schedule_drain(now)

    # --------------------------------------------------------------- closing

    def close(self) -> None:
        super().close()
        if self._drain_timer is not None:
            cancel = getattr(self._drain_timer, "cancel", None)
            if cancel is not None:
                cancel()
            self._drain_timer = None
        self._queue.clear()
        self._depth_gauge.set(0)
        if self._owns_flow:
            self.allocator.release(self.flow_id, now=self.scheduler.now())
        self.inner.close()
