"""Declarative transport-stack composition.

The "network independence" promise (Section 3.2) in one function: describe
what you need (reliability? channels?) and get the same stack over whichever
fabric the deployment provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.transport.base import Transport
from repro.transport.multiplex import Multiplexer
from repro.transport.reliable import ReliabilityParams, ReliableTransport
from repro.transport.secure import SecureTransport


@dataclass(frozen=True)
class StackSpec:
    """What the application needs from its transport.

    ``encryption_key`` (optional) inserts the shared-key secure layer at
    the bottom of the stack, so reliability acks and channel headers are
    encrypted too.
    """

    reliable: bool = True
    reliability_params: ReliabilityParams = ReliabilityParams()
    multiplexed: bool = False
    encryption_key: Optional[bytes] = None


@dataclass
class BuiltStack:
    """The composed stack; use :attr:`top` (or :attr:`mux`) to communicate."""

    base: Transport
    top: Transport
    mux: Optional[Multiplexer] = None

    def channel(self, name: str) -> Transport:
        if self.mux is None:
            raise ValueError("stack was built without multiplexing")
        return self.mux.channel(name)

    def close(self) -> None:
        if self.mux is not None:
            self.mux.close()
        else:
            self.top.close()


def build_stack(base: Transport, spec: StackSpec = StackSpec()) -> BuiltStack:
    """Compose encryption, reliability, and multiplexing over a base
    transport.

    Layer order is fixed — encryption at the bottom (everything above it is
    protected, including acks), reliability below multiplexing (one ack
    stream covers all channels).
    """
    top: Transport = base
    if spec.encryption_key is not None:
        top = SecureTransport(top, spec.encryption_key)
    if spec.reliable:
        top = ReliableTransport(top, spec.reliability_params)
    mux = Multiplexer(top) if spec.multiplexed else None
    return BuiltStack(base=base, top=top, mux=mux)
