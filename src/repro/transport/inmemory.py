"""In-memory transport fabric.

A :class:`InMemoryFabric` is a star network living entirely in one process,
with virtual time from a private (or shared) :class:`Simulator`. It supports
configurable latency and loss, so the reliability layer can be exercised
without the full network simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.netsim.simulator import Simulator
from repro.obs.tracing import TRACER, SpanContext
from repro.transport.base import Address, Scheduler, Transport
from repro.util.rng import split_rng


class _SimScheduler:
    """Adapts a Simulator to the Scheduler protocol."""

    def __init__(self, sim: Simulator):
        self._sim = sim

    def now(self) -> float:
        return self._sim.now()

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Any:
        return self._sim.schedule(delay, fn, *args)


class InMemoryFabric:
    """Connects in-memory endpoints by node name.

    Messages are delivered after ``latency_s`` of virtual time and dropped
    with probability ``loss_probability`` (seeded). Unknown destinations are
    silently dropped, like a network.

    Payloads travel by reference: lazy wire frames cross the fabric without
    their bytes ever being materialized (see :mod:`repro.interop.frames`).
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        latency_s: float = 0.0,
        loss_probability: float = 0.0,
        seed: int = 0,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1), got {loss_probability!r}"
            )
        self.sim = sim if sim is not None else Simulator()
        self.latency_s = latency_s
        self.loss_probability = loss_probability
        self._rng = split_rng(seed, "inmemory-fabric")
        self._endpoints: Dict[Address, "InMemoryTransport"] = {}
        self.messages_dropped = 0
        self.messages_delivered = 0

    @property
    def scheduler(self) -> Scheduler:
        return _SimScheduler(self.sim)

    def endpoint(self, node: str, port: str = "default") -> "InMemoryTransport":
        """Create (and register) an endpoint for ``node:port``."""
        address = Address(node, port)
        if address in self._endpoints:
            raise ConfigurationError(f"endpoint {address} already exists")
        transport = InMemoryTransport(address, self)
        self._endpoints[address] = transport
        return transport

    def remove(self, address: Address) -> None:
        self._endpoints.pop(address, None)

    def _transmit(self, source: Address, destination: Address, payload: bytes) -> None:
        ctx = TRACER.current_context() if TRACER.enabled else None
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.messages_dropped += 1
            if ctx is not None:
                TRACER.instant("transport.loss", parent=ctx,
                               node=source.node, peer=destination.node)
            return
        self.sim.schedule(self.latency_s, self._deliver,
                          source, destination, payload, ctx)

    def _deliver(self, source: Address, destination: Address, payload: bytes,
                 ctx: Optional[SpanContext] = None) -> None:
        endpoint = self._endpoints.get(destination)
        if endpoint is None or endpoint.closed:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        if TRACER.enabled:
            with TRACER.span("transport.deliver", parent=ctx,
                             node=destination.node, port=destination.port,
                             peer=source.node):
                endpoint._dispatch(source, payload)
        else:
            endpoint._dispatch(source, payload)

    def run(self) -> None:
        """Pump all pending virtual-time events (convenience for tests)."""
        self.sim.run()


class InMemoryTransport(Transport):
    """An endpoint on an :class:`InMemoryFabric`."""

    def __init__(self, local: Address, fabric: InMemoryFabric):
        super().__init__(local)
        self._fabric = fabric

    @property
    def scheduler(self) -> Scheduler:
        return self._fabric.scheduler

    def _send(self, destination: Address, payload: bytes) -> None:
        self._fabric._transmit(self._local, destination, payload)

    def close(self) -> None:
        super().close()
        self._fabric.remove(self._local)
