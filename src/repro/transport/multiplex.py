"""Channel multiplexing over one transport endpoint.

A :class:`Multiplexer` wraps a transport and hands out named
:class:`ChannelTransport` views. Each middleware service (discovery, RPC,
pub/sub, ...) gets its own channel without consuming another port on the
fabric. Frames carry a length-prefixed channel name::

    u16 name length (big-endian) + name utf-8 + payload
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.errors import ConfigurationError
from repro.interop.frames import PrefixedFrame, is_frame
from repro.obs.metrics import get_registry
from repro.transport.base import Address, Scheduler, Transport

_LEN = struct.Struct(">H")


class Multiplexer:
    """Demultiplexes channel frames arriving on the wrapped transport.

    Malformed frames (truncated header or name, undecodable name) are
    counted and dropped rather than raised — a raise here would unwind the
    simulator event loop and abort the whole run.
    """

    def __init__(self, inner: Transport):
        self.inner = inner
        self._channels: Dict[str, "ChannelTransport"] = {}
        self.malformed_frames = 0
        inner.set_receiver(self._on_frame)

    def channel(self, name: str) -> "ChannelTransport":
        """Create (once) and return the channel named ``name``."""
        if not name:
            raise ConfigurationError("channel name must be non-empty")
        if len(name.encode("utf-8")) > 0xFFFF:
            raise ConfigurationError(f"channel name too long: {name[:32]!r}...")
        if name in self._channels:
            return self._channels[name]
        channel = ChannelTransport(self.inner.local_address, self, name)
        self._channels[name] = channel
        return channel

    def _transmit(self, name: str, destination: Address, payload: bytes) -> None:
        encoded = name.encode("utf-8")
        header = _LEN.pack(len(encoded)) + encoded
        if is_frame(payload):
            # Keep a lazy payload lazy: the header rides as a prefix and the
            # receiving multiplexer peels it off by reference.
            self.inner.send(destination, PrefixedFrame(header, payload))
            return
        self.inner.send(destination, header + payload)

    def _on_frame(self, source: Address, frame: bytes) -> None:
        body = None
        if isinstance(frame, PrefixedFrame):
            prefix = frame.prefix
            if (len(prefix) >= _LEN.size
                    and _LEN.size + _LEN.unpack_from(prefix, 0)[0] == len(prefix)):
                # The prefix is exactly our header (the sending mux's shape):
                # peel it off by reference, the body stays lazy.
                frame, body = prefix, frame.body
            else:
                frame = bytes(frame)
        elif not isinstance(frame, (bytes, bytearray)):
            frame = bytes(frame)
        if len(frame) < _LEN.size:
            self._drop_malformed()
            return
        (name_length,) = _LEN.unpack_from(frame, 0)
        header_end = _LEN.size + name_length
        if len(frame) < header_end:
            self._drop_malformed()
            return
        try:
            name = frame[_LEN.size:header_end].decode("utf-8")
        except UnicodeDecodeError:
            self._drop_malformed()
            return
        channel = self._channels.get(name)
        if channel is None or channel.closed:
            return  # no listener on this channel: drop, like an unbound port
        if body is None:
            body = frame[header_end:]
        channel._dispatch(source, body)

    def _drop_malformed(self) -> None:
        self.malformed_frames += 1
        get_registry().counter(
            "transport.malformed", node=self.inner.local_address.node
        ).inc()

    def close(self) -> None:
        for channel in self._channels.values():
            Transport.close(channel)
        self.inner.close()


class ChannelTransport(Transport):
    """A named channel view over a multiplexer; behaves as a Transport."""

    def __init__(self, local: Address, mux: Multiplexer, name: str):
        super().__init__(local)
        self._mux = mux
        self.name = name

    @property
    def scheduler(self) -> Scheduler:
        return self._mux.inner.scheduler

    def _send(self, destination: Address, payload: bytes) -> None:
        self._mux._transmit(self.name, destination, payload)
