"""The MiLAN runtime.

Owns the mechanism side of the policy/mechanism split: given an
:class:`~repro.core.policy.ApplicationPolicy`, a set of (discovered or
registered) sensors, and optional network plugins, it

1. computes the application feasible sets for the current state,
2. filters them through the network plugins,
3. selects the set optimizing the policy's tradeoff,
4. derives the network configuration (senders/routers/master/sleepers),

and re-runs that pipeline whenever the application state changes, a sensor
joins or leaves (plug and play), or energy updates make the current choice
stale. When nothing is feasible it degrades gracefully: it applies the
best-effort greedy set (or empty) and emits ``"infeasible"`` so the
application can react.

Events (via :attr:`events`): ``"reconfigured"`` (configuration, score),
``"infeasible"`` (state), ``"state_changed"`` (old, new),
``"sensor_added"`` / ``"sensor_removed"`` (sensor_id).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.configurator import NetworkConfiguration, configure
from repro.core.feasibility import (
    expand_sets,
    greedy_feasible_set,
    minimal_feasible_sets,
    satisfies,
)
from repro.core.plugins import NetworkContext, NetworkPlugin, network_feasible
from repro.core.policy import ApplicationPolicy
from repro.core.reconfig import ReconfigEngine
from repro.core.selection import SetScore, select_best
from repro.core.sensors import SensorInfo
from repro.obs.tracing import TRACER
from repro.util.events import EventEmitter

SensorSet = FrozenSet[str]


class Milan:
    """One application's MiLAN instance.

    ``incremental=True`` (the default) runs the pipeline through a
    :class:`~repro.core.reconfig.ReconfigEngine`: candidate enumerations
    are memoized under a structural fingerprint and energy-only updates
    re-score cached candidates instead of re-enumerating. Results are
    identical to the uncached path (``incremental=False``), which is kept
    both as the equivalence oracle and for memory-constrained embeddings.
    """

    def __init__(
        self,
        policy: ApplicationPolicy,
        plugins: Sequence[NetworkPlugin] = (),
        context: Optional[NetworkContext] = None,
        elect_master: bool = False,
        auto_reconfigure: bool = True,
        incremental: bool = True,
    ):
        self.policy = policy
        self.plugins = list(plugins)
        self.context = context if context is not None else NetworkContext()
        self.elect_master = elect_master
        self.auto_reconfigure = auto_reconfigure
        self.events = EventEmitter()
        self.state_machine = policy.build_state_machine()
        self.state_machine.events.on("state_changed", self._on_state_changed)
        self.current_configuration: Optional[NetworkConfiguration] = None
        self.current_score: Optional[SetScore] = None
        self.reconfigurations = 0
        self.infeasible_rounds = 0
        self._strategy = policy.selection_strategy()
        self.engine: Optional[ReconfigEngine] = (
            ReconfigEngine() if incremental else None
        )
        # advance_time's per-tick iteration order, memoized by the identity
        # of the active-sensor frozenset it was derived from.
        self._active_sorted: Tuple[str, ...] = ()
        self._active_sorted_for: Optional[SensorSet] = None
        self._requirements_override: Optional[
            Callable[[Dict[str, float]], Dict[str, float]]
        ] = None

    # ------------------------------------------------------------ inspection

    @property
    def state(self) -> str:
        return self.state_machine.current

    @property
    def sensors(self) -> Dict[str, SensorInfo]:
        return self.context.sensors

    def requirements(self) -> Dict[str, float]:
        base = self.policy.requirements.for_state(self.state)
        if self._requirements_override is not None:
            return self._requirements_override(base)
        return base

    def set_requirements_override(
        self,
        override: Optional[Callable[[Dict[str, float]], Dict[str, float]]],
        reconfigure: bool = True,
    ) -> None:
        """Install (or with ``None``, remove) a requirements transform.

        The override maps the policy's per-state requirements to what the
        pipeline should actually satisfy — the overload governor uses it to
        degrade sampling quality toward a QoS floor under load. Distinct
        outputs key distinct :class:`~repro.core.reconfig.ReconfigEngine`
        cache entries, so flipping between overload levels is a warm
        reconfiguration after the first visit to each level.
        """
        self._requirements_override = override
        if reconfigure and self.auto_reconfigure:
            self.reconfigure()

    def active_sensor_ids(self) -> SensorSet:
        if self.current_configuration is None:
            return frozenset()
        return self.current_configuration.active_sensors

    def application_satisfied(self) -> bool:
        """Is the applied set actually meeting the current requirements?"""
        active = [
            self.context.sensors[sid]
            for sid in self.active_sensor_ids()
            if sid in self.context.sensors
        ]
        return satisfies(active, self.requirements())

    # ---------------------------------------------------------- plug and play

    def add_sensor(self, sensor: SensorInfo) -> None:
        if self.engine is not None:
            # A re-registration may carry new reliabilities/power; drop any
            # cached results keyed on the old signature.
            self.engine.invalidate_sensor(sensor.sensor_id)
        self.context.sensors[sensor.sensor_id] = sensor
        self.events.emit("sensor_added", sensor.sensor_id)
        if self.auto_reconfigure:
            self.reconfigure()

    def remove_sensor(self, sensor_id: str) -> None:
        # Judge "was it active" against the pre-mutation set: the emit below
        # may run listeners that reconfigure (and thereby rebuild the active
        # set) before this frame gets to its own check.
        was_active = sensor_id in self.active_sensor_ids()
        if self.context.sensors.pop(sensor_id, None) is not None:
            if self.engine is not None:
                self.engine.invalidate_sensor(sensor_id)
            self.events.emit("sensor_removed", sensor_id)
            if self.auto_reconfigure and was_active:
                self.reconfigure()

    def update_sensor_energy(self, sensor_id: str, energy_j: float) -> None:
        """Refresh a sensor's energy; reconfigures if it died while active.

        A non-depleting update is the energy-only fast path: the feasibility
        fingerprint excludes energy, so the next ``reconfigure()`` reuses
        the cached candidates and only re-scores them.
        """
        sensor = self.context.sensors.get(sensor_id)
        if sensor is None:
            return
        was_active = sensor_id in self.active_sensor_ids()
        updated = sensor.with_energy(energy_j)
        self.context.sensors[sensor_id] = updated
        if updated.depleted and not sensor.depleted and self.engine is not None:
            self.engine.note_death(sensor_id)
        if self.auto_reconfigure and energy_j <= 0.0 and was_active:
            self.reconfigure()

    # ----------------------------------------------------------------- state

    def set_state(self, state: str) -> None:
        self.state_machine.force(state)

    def observe(self, readings: Dict[str, object]) -> None:
        """Feed variable readings; may fire a policy transition."""
        self.state_machine.advance(readings)

    def _on_state_changed(self, old: str, new: str) -> None:
        if TRACER.enabled:
            # `src`/`dst` rather than from/to: `from` is a reserved word and
            # labels are passed as keywords.
            with TRACER.span("milan.state_transition", src=old, dst=new):
                self._after_state_change(old, new)
        else:
            self._after_state_change(old, new)

    def _after_state_change(self, old: str, new: str) -> None:
        self.events.emit("state_changed", old, new)
        if self.auto_reconfigure:
            self.reconfigure()

    # ------------------------------------------------------------- pipeline

    def candidate_sets(self) -> List[SensorSet]:
        """Steps 1-2: application feasible sets, then network filtering."""
        return self._candidate_sets(self.requirements())

    def _candidate_sets(self, requirements: Dict[str, float]) -> List[SensorSet]:
        if self.engine is not None:
            candidates = self.engine.candidates(
                self.context.sensors,
                requirements,
                self.policy,
                lambda: self._application_candidates(requirements),
            )
        else:
            candidates = self._application_candidates(requirements)
        # Plugins judge live network state (reachability, channel load) that
        # can change without any sensor delta, so filtering is never cached.
        return network_feasible(candidates, self.plugins, self.context)

    def _application_candidates(
        self, requirements: Dict[str, float]
    ) -> List[SensorSet]:
        """The uncached enumeration — also the engine's miss path.

        The alive fleet is id-sorted so the enumeration is canonical in the
        fleet's *content*: two fleets that differ only in registration
        order produce identical candidate lists, which is what lets a
        cached list stand in for a fresh enumeration byte-for-byte.
        """
        alive = sorted(
            (s for s in self.context.sensors.values() if not s.depleted),
            key=lambda s: s.sensor_id,
        )
        if len(alive) <= self.policy.exhaustive_limit:
            minimal = minimal_feasible_sets(alive, requirements)
        else:
            greedy = greedy_feasible_set(alive, requirements)
            minimal = [greedy] if greedy is not None else []
        if self.policy.redundancy > 0 and minimal:
            return expand_sets(
                minimal,
                [s.sensor_id for s in alive],
                extra=self.policy.redundancy,
            )
        return list(minimal)

    def reconfigure(self) -> Optional[NetworkConfiguration]:
        """Run the full pipeline and apply the result."""
        if TRACER.enabled:
            with TRACER.span("milan.reconfigure", state=self.state) as span:
                configuration = self._run_pipeline()
                if configuration is not None:
                    span.set_label(active=len(configuration.active_sensors))
                return configuration
        return self._run_pipeline()

    def _run_pipeline(self) -> Optional[NetworkConfiguration]:
        requirements = self.requirements()
        candidates = self._candidate_sets(requirements)
        if self.engine is not None:
            chosen = self.engine.select(
                candidates, self.context.sensors, requirements, self._strategy
            )
        else:
            chosen = select_best(
                candidates, self.context.sensors, requirements, self._strategy
            )
        if chosen is None:
            # Graceful degradation: best-effort greedy set, even if it
            # cannot fully satisfy the state.
            self.infeasible_rounds += 1
            if TRACER.enabled:
                TRACER.instant("milan.infeasible", state=self.state)
            self.events.emit("infeasible", self.state)
            fallback = greedy_feasible_set(
                list(self.context.sensors.values()), requirements
            )
            best_effort = fallback if fallback is not None else self._all_alive()
            configuration = configure(best_effort, self.context, self.elect_master)
            self.current_configuration = configuration
            self.current_score = None
            return configuration
        configuration = configure(
            chosen.sensor_set, self.context, self.elect_master
        )
        self.current_configuration = configuration
        self.current_score = chosen
        self.reconfigurations += 1
        self.events.emit("reconfigured", configuration, chosen)
        return configuration

    def _all_alive(self) -> SensorSet:
        return frozenset(
            sid for sid, s in self.context.sensors.items() if not s.depleted
        )

    # ------------------------------------------------------------- simulation

    def advance_time(self, dt_s: float) -> List[str]:
        """Drain energy from active sensors for ``dt_s`` seconds.

        Returns the ids of sensors that died during the interval. Used by
        the lifetime experiments: the harness alternates advance_time with
        application activity. Reconfigures automatically when a death (or
        the auto flag) requires it.
        """
        died: List[str] = []
        sensors = self.context.sensors
        active = self.active_sensor_ids()
        # One snapshot per configuration, not per tick: the sorted order is
        # memoized by the identity of the active-set frozenset, so a steady
        # lifetime loop pays sorted() only when the configuration changes.
        if active is not self._active_sorted_for:
            self._active_sorted = tuple(sorted(active))
            self._active_sorted_for = active
        for sensor_id in self._active_sorted:
            sensor = sensors.get(sensor_id)
            if sensor is None or sensor.depleted:
                continue
            drained = sensor.drained(sensor.active_power_w * dt_s)
            sensors[sensor_id] = drained
            if drained.depleted:
                died.append(sensor_id)
        if died:
            if self.engine is not None:
                for sensor_id in died:
                    self.engine.note_death(sensor_id)
            if self.auto_reconfigure:
                self.reconfigure()
        return died
