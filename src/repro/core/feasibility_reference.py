"""Reference (pre-bitmask) feasible-set enumeration.

This is the original, clarity-first implementation of
:func:`minimal_feasible_sets` — an O(2^n) scan over ``itertools``
combinations with a linear superset check against every set found so far.
It is retained verbatim as the oracle for property tests: the optimized
bitmask search in :mod:`repro.core.feasibility` must return *exactly* the
same list (same sets, same order) for every input.

Do not call this from production code paths; it exists only so the fast
implementation can be checked against something independently simple.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence

from repro.core.feasibility import SensorSet, satisfies
from repro.core.sensors import SensorInfo


def minimal_feasible_sets_reference(
    sensors: Sequence[SensorInfo],
    requirements: Dict[str, float],
    max_size: Optional[int] = None,
    max_sets: int = 256,
) -> List[SensorSet]:
    """Enumerate minimal feasible sets (ids), smallest first.

    Only sensors measuring at least one required variable are considered.
    Searches subset sizes in increasing order and prunes supersets of
    already-found feasible sets, so every returned set is minimal. Stops
    after ``max_sets`` results — the selector rarely needs more, and the
    cap bounds worst-case work (documented ablation in bench E10).

    Returns an empty list when even the full set is infeasible.
    """
    relevant = [
        sensor
        for sensor in sensors
        if not sensor.depleted
        and any(sensor.measures(v) for v in requirements)
    ]
    if not requirements:
        return [frozenset()]
    if not satisfies(relevant, requirements):
        return []
    by_id = {s.sensor_id: s for s in relevant}
    ids = sorted(by_id)
    limit = len(ids) if max_size is None else min(max_size, len(ids))
    found: List[SensorSet] = []
    for size in range(1, limit + 1):
        for combo in combinations(ids, size):
            candidate = frozenset(combo)
            if any(existing <= candidate for existing in found):
                continue  # superset of a smaller feasible set: not minimal
            if satisfies([by_id[i] for i in combo], requirements):
                found.append(candidate)
                if len(found) >= max_sets:
                    return found
    return found
