"""Binding MiLAN to live service discovery.

Section 4: "the system incorporates a service discovery mechanism to
identify new components". The :class:`DiscoveryBinder` closes that loop as
a library feature: it watches a discovery agent for sensors of a given
service type, feeds arrivals into a :class:`~repro.core.milan.Milan`
instance (converted via
:func:`~repro.core.sensors.sensor_from_description`), refreshes the fleet
with periodic lookups, and removes sensors whose advertisements disappear —
so an application's entire sensing plane is assembled and maintained
hands-free.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, Set

from repro.core.milan import Milan
from repro.core.sensors import sensor_from_description
from repro.discovery.description import ServiceDescription
from repro.discovery.matching import Query
from repro.transport.base import Scheduler
from repro.util.events import EventEmitter
from repro.util.promise import Promise


class LookupAgent(Protocol):
    """What the binder needs from a discovery mode (they all provide it)."""

    def lookup(self, query: Query) -> Promise:
        ...


class DiscoveryBinder:
    """Keeps a Milan instance's sensor fleet synchronized with discovery.

    Events (via :attr:`events`): ``"sensor_bound"`` / ``"sensor_unbound"``
    (sensor id).
    """

    def __init__(
        self,
        milan: Milan,
        discovery: LookupAgent,
        scheduler: Scheduler,
        service_type: str = "sensor",
        refresh_interval_s: float = 10.0,
        max_results: int = 64,
        miss_limit: int = 2,
    ):
        self.milan = milan
        self.discovery = discovery
        self.scheduler = scheduler
        self.service_type = service_type
        self.refresh_interval_s = refresh_interval_s
        self.max_results = max_results
        self.miss_limit = miss_limit
        self.events = EventEmitter()
        self._bound: Set[str] = set()
        self._misses: Dict[str, int] = {}
        self._running = True
        self.refreshes = 0
        self.refresh()
        self._timer = scheduler.schedule(refresh_interval_s, self._periodic)

    # ------------------------------------------------------------- refresh

    def refresh(self) -> Promise:
        """One discovery round; fulfills when the fleet has been updated."""
        done: Promise = Promise()
        query = Query(self.service_type, max_results=self.max_results)
        self.discovery.lookup(query).on_settle(
            lambda settled: self._apply(settled, done)
        )
        return done

    def _apply(self, settled: Promise, done: Promise) -> None:
        if settled.rejected:
            done.reject(settled.error())  # type: ignore[arg-type]
            return
        self.refreshes += 1
        seen: Set[str] = set()
        for description in settled.result():
            if not isinstance(description, ServiceDescription):
                continue
            sensor = sensor_from_description(description)
            if not sensor.reliabilities:
                continue  # not a MiLAN-describable component
            seen.add(sensor.sensor_id)
            self._misses.pop(sensor.sensor_id, None)
            if sensor.sensor_id not in self._bound:
                self._bound.add(sensor.sensor_id)
                self.milan.add_sensor(sensor)
                self.events.emit("sensor_bound", sensor.sensor_id)
            else:
                # Refresh energy/reliability info without forcing reconfig
                # unless the sensor died.
                self.milan.context.sensors[sensor.sensor_id] = sensor
        # A sensor missing from miss_limit consecutive rounds is gone.
        for sensor_id in list(self._bound - seen):
            misses = self._misses.get(sensor_id, 0) + 1
            self._misses[sensor_id] = misses
            if misses >= self.miss_limit:
                self._bound.discard(sensor_id)
                self._misses.pop(sensor_id, None)
                self.milan.remove_sensor(sensor_id)
                self.events.emit("sensor_unbound", sensor_id)
        done.fulfill(sorted(seen))

    def _periodic(self) -> None:
        if not self._running:
            return
        self.refresh()
        self._timer = self.scheduler.schedule(self.refresh_interval_s, self._periodic)

    # ------------------------------------------------------------- controls

    @property
    def bound_sensors(self) -> Set[str]:
        return set(self._bound)

    def stop(self) -> None:
        """Stop refreshing (the current fleet stays bound)."""
        self._running = False
        cancel = getattr(self._timer, "cancel", None)
        if cancel is not None:
            cancel()
