"""Set selection: the application-performance / network-cost tradeoff.

Section 4: MiLAN must "determine which set optimizes the tradeoff between
application performance and network cost (e.g., energy dissipation)".

For a candidate set S we score:

* **lifetime(S)** — how long the *fleet* can keep the application fed if S
  is the active set now: the time until the first member of S dies
  (min energy_i / power_i). Mains-powered members contribute infinity.
* **performance(S)** — the mean achieved reliability over required
  variables (always >= requirement for feasible sets; surplus is real
  headroom against sensor loss).
* **cost(S)** — total active power draw.

Strategies (benchmarked against each other in E10's ablation):

* ``max_lifetime`` — maximize lifetime, tie-break on fewer members/lower
  power;
* ``max_reliability`` — maximize performance (the greedy baseline's goal);
* ``balanced(alpha)`` — maximize ``alpha * normalized_lifetime +
  (1-alpha) * performance``; alpha=1 ~ max_lifetime, alpha=0 ~
  max_reliability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.feasibility import combined_reliability
from repro.core.sensors import SensorInfo
from repro.errors import ConfigurationError

SensorSet = FrozenSet[str]


@dataclass(frozen=True)
class SetScore:
    """Metrics of one candidate set."""

    sensor_set: SensorSet
    lifetime_s: float
    performance: float
    power_w: float


def set_lifetime(members: Sequence[SensorInfo]) -> float:
    """Time until the first member dies (inf for an empty/mains-only set).

    The only score term that depends on remaining energy — the incremental
    engine (:mod:`repro.core.reconfig`) recomputes it fresh every round
    while reusing the energy-independent terms below.
    """
    return min((m.lifetime_if_active() for m in members), default=float("inf"))


def set_performance(
    members: Sequence[SensorInfo], requirements: Dict[str, float]
) -> float:
    """Mean achieved reliability over required variables (1.0 when none)."""
    if requirements:
        return sum(
            combined_reliability(members, variable) for variable in requirements
        ) / len(requirements)
    return 1.0


def set_power(members: Sequence[SensorInfo]) -> float:
    """Total active power draw of the set."""
    return sum(m.active_power_w for m in members)


def score_set(
    sensor_set: SensorSet,
    sensors: Dict[str, SensorInfo],
    requirements: Dict[str, float],
) -> SetScore:
    members = [sensors[sid] for sid in sensor_set]
    return SetScore(
        sensor_set,
        set_lifetime(members),
        set_performance(members, requirements),
        set_power(members),
    )


#: A strategy maps a list of scores to the chosen one.
SelectionStrategy = Callable[[List[SetScore]], SetScore]


def _tie_break(score: SetScore) -> Tuple:
    """Deterministic final tie-break: fewer members, lower power, sorted ids."""
    return (len(score.sensor_set), score.power_w, tuple(sorted(score.sensor_set)))


def max_lifetime(scores: List[SetScore]) -> SetScore:
    return min(scores, key=lambda s: (-s.lifetime_s,) + _tie_break(s))


def max_reliability(scores: List[SetScore]) -> SetScore:
    return min(scores, key=lambda s: (-s.performance,) + _tie_break(s))


def balanced(alpha: float = 0.7) -> SelectionStrategy:
    """Weighted tradeoff. Lifetimes are normalized by the best candidate's
    (infinite lifetimes normalize to 1), keeping both terms in [0, 1]."""
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in [0, 1], got {alpha!r}")

    def strategy(scores: List[SetScore]) -> SetScore:
        finite = [s.lifetime_s for s in scores if not math.isinf(s.lifetime_s)]
        best_finite = max(finite) if finite else 1.0

        def utility(score: SetScore) -> float:
            if math.isinf(score.lifetime_s):
                normalized_lifetime = 1.0
            elif best_finite <= 0:
                normalized_lifetime = 0.0
            else:
                normalized_lifetime = score.lifetime_s / best_finite
            return alpha * normalized_lifetime + (1.0 - alpha) * score.performance

        return min(scores, key=lambda s: (-utility(s),) + _tie_break(s))

    return strategy


_STRATEGIES: Dict[str, SelectionStrategy] = {
    "max_lifetime": max_lifetime,
    "max_reliability": max_reliability,
    "balanced": balanced(),
}


def strategy_by_name(name: str) -> SelectionStrategy:
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown selection strategy {name!r}; known: {sorted(_STRATEGIES)}"
        ) from None


def select_best(
    candidate_sets: Sequence[SensorSet],
    sensors: Dict[str, SensorInfo],
    requirements: Dict[str, float],
    strategy: SelectionStrategy = max_lifetime,
) -> Optional[SetScore]:
    """Score all candidates and pick per the strategy; None when empty."""
    if not candidate_sets:
        return None
    scores = [score_set(s, sensors, requirements) for s in candidate_sets]
    return strategy(scores)
