"""Network plugins: from application-feasible to network-feasible sets.

Section 4: MiLAN "must then configure the network (e.g., determine which
components should send data, ... and which nodes should play special roles
in the network, such as Bluetooth masters)", and it is "applicable to
multiple specific technologies (e.g., Bluetooth or 802.11)".

A plugin knows one technology's constraints and filters candidate sensor
sets accordingly. Plugins compose: a set is network-feasible when every
installed plugin accepts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol, Sequence, runtime_checkable

from repro.core.sensors import SensorInfo
from repro.errors import ConfigurationError
from repro.netsim.network import Network

SensorSet = FrozenSet[str]


@dataclass
class NetworkContext:
    """What plugins may inspect when judging a set."""

    sensors: Dict[str, SensorInfo] = field(default_factory=dict)
    network: Optional[Network] = None  # live topology, when simulating one
    sink_node_id: Optional[str] = None  # where data must arrive

    def info(self, sensor_id: str) -> SensorInfo:
        try:
            return self.sensors[sensor_id]
        except KeyError:
            raise ConfigurationError(f"unknown sensor {sensor_id!r}") from None


@runtime_checkable
class NetworkPlugin(Protocol):
    """One technology's feasibility judgment."""

    name: str

    def accepts(self, sensor_set: SensorSet, context: NetworkContext) -> bool:
        ...


class BluetoothPlugin:
    """Piconet constraint: a master serves at most ``max_active_slaves``
    active slaves, so a set larger than that cannot stream concurrently.

    With ``masters > 1`` the deployment has several piconets (a scatternet)
    and the cap multiplies.
    """

    name = "bluetooth"

    def __init__(self, max_active_slaves: int = 7, masters: int = 1):
        if max_active_slaves < 1 or masters < 1:
            raise ConfigurationError("piconet parameters must be >= 1")
        self.max_active_slaves = max_active_slaves
        self.masters = masters

    def accepts(self, sensor_set: SensorSet, context: NetworkContext) -> bool:
        return len(sensor_set) <= self.max_active_slaves * self.masters


class BandwidthPlugin:
    """802.11-style shared-channel constraint: the sum of the set's stream
    bandwidths must fit in the channel's usable capacity."""

    name = "bandwidth"

    def __init__(self, capacity_bps: float, utilization_cap: float = 0.8):
        if capacity_bps <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_bps!r}")
        if not 0.0 < utilization_cap <= 1.0:
            raise ConfigurationError(
                f"utilization cap must be in (0, 1], got {utilization_cap!r}"
            )
        self.capacity_bps = capacity_bps
        self.utilization_cap = utilization_cap

    def accepts(self, sensor_set: SensorSet, context: NetworkContext) -> bool:
        demand = sum(context.info(sid).bandwidth_bps for sid in sensor_set)
        return demand <= self.capacity_bps * self.utilization_cap


class ReachabilityPlugin:
    """Multi-hop constraint: every selected sensor's node must currently
    reach the sink over the live topology."""

    name = "reachability"

    def accepts(self, sensor_set: SensorSet, context: NetworkContext) -> bool:
        if context.network is None or context.sink_node_id is None:
            return True  # nothing to check against
        reachable = context.network.reachable_from(context.sink_node_id)
        for sensor_id in sensor_set:
            node_id = context.info(sensor_id).node_id
            if node_id is None:
                continue
            if node_id != context.sink_node_id and node_id not in reachable:
                return False
        return True


def network_feasible(
    candidate_sets: Sequence[SensorSet],
    plugins: Sequence[NetworkPlugin],
    context: NetworkContext,
) -> List[SensorSet]:
    """Filter candidates through every plugin (order-preserving)."""
    return [
        sensor_set
        for sensor_set in candidate_sets
        if all(plugin.accepts(sensor_set, context) for plugin in plugins)
    ]
