"""The application policy: MiLAN's policy/mechanism separation.

"A key feature of MiLAN is the separation of the policy for managing the
network, which is defined by the application, from the mechanisms for
implementing the policy, which is affected within MiLAN."

An :class:`ApplicationPolicy` is everything the application declares —
states, per-state variable requirements, transition rules, the
performance/lifetime weighting, redundancy appetite — and nothing about
*how* feasible sets are found, filtered, or applied. Handing one of these
to :class:`repro.core.milan.Milan` is the entire application-side API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.requirements import VariableRequirements
from repro.core.selection import SelectionStrategy, balanced, strategy_by_name
from repro.core.state import Predicate, StateMachine
from repro.errors import ConfigurationError


@dataclass
class ApplicationPolicy:
    """Declarative application policy.

    Attributes:
        name: for logs and events.
        requirements: state -> variable -> required reliability.
        initial_state: where the state machine starts.
        transitions: (source, target, predicate) triples over readings.
        selection: a strategy name ("max_lifetime", "max_reliability",
            "balanced") or a custom :data:`SelectionStrategy`.
        redundancy: how many spare sensors beyond minimal sets MiLAN may
            consider (fault-tolerance appetite; costs energy).
        exhaustive_limit: fleet size up to which minimal sets are enumerated
            exactly; larger fleets use the greedy construction.
    """

    name: str
    requirements: VariableRequirements
    initial_state: str
    transitions: List[Tuple[str, str, Predicate]] = field(default_factory=list)
    selection: object = "max_lifetime"
    redundancy: int = 0
    exhaustive_limit: int = 16

    def __post_init__(self) -> None:
        states = self.requirements.states()
        if self.initial_state not in states:
            raise ConfigurationError(
                f"initial state {self.initial_state!r} has no requirements; "
                f"declared states: {states}"
            )
        if self.redundancy < 0:
            raise ConfigurationError(f"redundancy must be >= 0, got {self.redundancy!r}")

    def build_state_machine(self) -> StateMachine:
        machine = StateMachine(self.requirements.states(), self.initial_state)
        for source, target, predicate in self.transitions:
            machine.add_transition(source, target, predicate)
        return machine

    def selection_strategy(self) -> SelectionStrategy:
        if callable(self.selection):
            return self.selection  # custom strategy object
        if isinstance(self.selection, str):
            return strategy_by_name(self.selection)
        raise ConfigurationError(
            f"selection must be a strategy name or callable, got {self.selection!r}"
        )


def health_monitor_policy(alpha: float = 0.7) -> ApplicationPolicy:
    """The paper's Section 3.1 scenario as a ready-made policy.

    Three states — ``rest``, ``exercise``, ``distress`` — over blood
    pressure, heart rate, and oxygen saturation. Distress is entered when
    systolic blood pressure spikes and needs near-certain delivery of every
    vital; rest is cheap.
    """
    requirements = (
        VariableRequirements()
        .require("rest", "blood_pressure", 0.7)
        .require("rest", "heart_rate", 0.6)
        .require("exercise", "blood_pressure", 0.85)
        .require("exercise", "heart_rate", 0.9)
        .require("exercise", "oxygen_saturation", 0.7)
        .require("distress", "blood_pressure", 0.99)
        .require("distress", "heart_rate", 0.99)
        .require("distress", "oxygen_saturation", 0.95)
    )
    transitions: List[Tuple[str, str, Predicate]] = [
        ("rest", "exercise", lambda r: r.get("heart_rate", 0) > 100),
        ("exercise", "rest", lambda r: r.get("heart_rate", 200) < 90),
        ("rest", "distress", lambda r: r.get("blood_pressure", 0) > 180),
        ("exercise", "distress", lambda r: r.get("blood_pressure", 0) > 180),
        ("distress", "rest", lambda r: r.get("blood_pressure", 999) < 140),
    ]
    return ApplicationPolicy(
        name="health-monitor",
        requirements=requirements,
        initial_state="rest",
        transitions=transitions,
        selection=balanced(alpha),
    )
