"""Incremental reconfiguration: feasibility caching + energy-only fast path.

MiLAN "continually monitors" the network: lifetime experiments alternate
``advance_time`` with ``reconfigure`` in a tight loop, and most of those
rounds change nothing but residual energy. Energy changes that do not
deplete a sensor cannot change *which* sets are feasible — feasibility
depends only on the alive sensors' reliabilities and the state's
requirements — so re-running the minimal-feasible-set enumeration (the
slowest micro-bench in BENCH_micro.json) on every round is pure waste.

:class:`FeasibilityCache` memoizes candidate enumerations under a
structural fingerprint::

    (alive fleet key, requirements signature, exhaustive_limit, redundancy)

where the fleet key is the id-sorted tuple of ``(sensor_id,
sensor_signature)`` over non-depleted sensors. The fingerprint is
recomputed on every lookup (cheap: an identity-validated signature memo
makes it a few dict probes per sensor), so correctness never depends on
callers announcing changes: a sensor death, removal, addition, or even a
direct ``context.sensors[sid] = ...`` swap (as the secure binder does)
lands on a different key and misses. Explicit *delta invalidation*
(:meth:`ReconfigEngine.invalidate_sensor`, wired into ``add_sensor`` /
``remove_sensor`` / sensor death) is hygiene on top: it evicts entries
that can never be hit again and keeps the caches honest about memory.

:class:`ReconfigEngine` adds the scoring half of the fast path: per-set
``performance`` and ``power`` terms are energy-independent, so they are
cached per ``(requirements, set)`` and validated against the member
signatures; only the energy-dependent ``lifetime`` term is recomputed each
round. A warm energy-only ``reconfigure()`` therefore does no enumeration
and no reliability products — just a fingerprint probe, plugin filtering,
one ``min`` per candidate, and the strategy comparison.

Exact equivalence with the uncached path is guaranteed by construction
(the miss path *is* the uncached code, via the ``compute`` thunk, and the
cached score terms are the floats that code produced) and asserted by the
interleaving property test in ``tests/test_feasibility_property.py``.

Cache traffic is visible via :mod:`repro.obs.metrics` counters:
``milan.feasibility_cache.{hits,misses,invalidations}`` and
``milan.score_cache.{hits,misses}``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.feasibility import requirements_signature, sensor_signature
from repro.core.selection import (
    SelectionStrategy,
    SetScore,
    set_lifetime,
    set_performance,
    set_power,
)
from repro.core.sensors import SensorInfo
from repro.obs.metrics import MetricsRegistry, get_registry

SensorSet = FrozenSet[str]
Signature = Tuple
#: ((sensor_id, signature), ...) over alive sensors, id-sorted.
FleetKey = Tuple
CacheKey = Tuple


class FeasibilityCache:
    """LRU memo of application-feasible candidate lists.

    Keys are structural fingerprints (see the module docstring), so stale
    reads are impossible; ``max_entries`` bounds memory across state/fleet
    churn. The per-sensor signature memo is validated by *identity* of the
    (immutable-by-convention) reliabilities mapping plus power equality —
    ``SensorInfo.with_energy``/``drained`` preserve both, which is exactly
    what makes the energy-only fingerprint probe cheap. Holding the mapping
    reference also pins it, so an identity check can never be confused by
    object-id reuse.
    """

    def __init__(self, max_entries: int = 256,
                 registry: Optional[MetricsRegistry] = None):
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, List[SensorSet]]" = OrderedDict()
        self._signatures: Dict[str, Tuple[Dict[str, float], float, Signature]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        registry = registry if registry is not None else get_registry()
        self._hits_counter = registry.counter("milan.feasibility_cache.hits")
        self._misses_counter = registry.counter("milan.feasibility_cache.misses")
        self._invalidations_counter = registry.counter(
            "milan.feasibility_cache.invalidations"
        )

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------ signatures

    def signature_of(self, sensor: SensorInfo) -> Signature:
        cached = self._signatures.get(sensor.sensor_id)
        if (
            cached is not None
            and cached[0] is sensor.reliabilities
            and cached[1] == sensor.active_power_w
        ):
            return cached[2]
        signature = sensor_signature(sensor)
        self._signatures[sensor.sensor_id] = (
            sensor.reliabilities, sensor.active_power_w, signature,
        )
        return signature

    def fleet_key(self, sensors: Dict[str, SensorInfo]) -> FleetKey:
        alive = sorted(
            (sid, sensor) for sid, sensor in sensors.items()
            if not sensor.depleted
        )
        return tuple((sid, self.signature_of(sensor)) for sid, sensor in alive)

    # ----------------------------------------------------------------- cache

    def lookup(self, key: CacheKey) -> Optional[List[SensorSet]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._misses_counter.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._hits_counter.inc()
        return entry

    def store(self, key: CacheKey, candidates: List[SensorSet]) -> None:
        self._entries[key] = candidates
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def invalidate_sensor(self, sensor_id: str) -> int:
        """Evict the sensor's signature memo and every entry keyed on it.

        Returns the number of candidate lists dropped. Structural keying
        already guarantees such entries could never be *wrongly* hit; this
        reclaims their memory the moment they become unreachable.
        """
        self._signatures.pop(sensor_id, None)
        stale = [
            key for key, _candidates in self._entries.items()
            if any(sid == sensor_id for sid, _sig in key[0])
        ]
        for key in stale:
            del self._entries[key]
        if stale:
            self.invalidations += len(stale)
            self._invalidations_counter.inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
        self._signatures.clear()


class ReconfigEngine:
    """The incremental engine behind ``Milan._run_pipeline``.

    Couples a :class:`FeasibilityCache` with a score-term cache so that a
    warm reconfigure after an energy-only update skips both the candidate
    enumeration and the per-set reliability products, recomputing only the
    lifetime terms the energy update actually moved.
    """

    def __init__(self, max_feasibility_entries: int = 256,
                 max_score_entries: int = 4096,
                 registry: Optional[MetricsRegistry] = None):
        registry = registry if registry is not None else get_registry()
        self.feasibility = FeasibilityCache(max_feasibility_entries, registry)
        self.max_score_entries = max_score_entries
        #: (requirements signature, sensor_set) ->
        #: (performance, power_w, member signatures at compute time)
        self._scores: "OrderedDict[Tuple, Tuple[float, float, Tuple[Signature, ...]]]" = (
            OrderedDict()
        )
        self.score_hits = 0
        self.score_misses = 0
        self._score_hits_counter = registry.counter("milan.score_cache.hits")
        self._score_misses_counter = registry.counter("milan.score_cache.misses")

    # ------------------------------------------------------------ candidates

    def candidates(
        self,
        sensors: Dict[str, SensorInfo],
        requirements: Dict[str, float],
        policy,
        compute: Callable[[], List[SensorSet]],
    ) -> List[SensorSet]:
        """The memoized application-feasible candidates.

        ``compute`` is the uncached enumeration (Milan's own pipeline
        code), called only on a fingerprint miss — so the cached result is
        byte-identical to what the uncached path would have produced.
        Callers must treat the returned list as immutable.
        """
        key = (
            self.feasibility.fleet_key(sensors),
            requirements_signature(requirements),
            policy.exhaustive_limit,
            policy.redundancy,
        )
        cached = self.feasibility.lookup(key)
        if cached is not None:
            return cached
        result = compute()
        self.feasibility.store(key, result)
        return result

    # --------------------------------------------------------------- scoring

    def select(
        self,
        candidates: Sequence[SensorSet],
        sensors: Dict[str, SensorInfo],
        requirements: Dict[str, float],
        strategy: SelectionStrategy,
    ) -> Optional[SetScore]:
        """Score-cached equivalent of :func:`repro.core.selection.select_best`."""
        if not candidates:
            return None
        req_key = requirements_signature(requirements)
        scores = [
            self._score(sensor_set, sensors, requirements, req_key)
            for sensor_set in candidates
        ]
        return strategy(scores)

    def _score(
        self,
        sensor_set: SensorSet,
        sensors: Dict[str, SensorInfo],
        requirements: Dict[str, float],
        req_key: Tuple,
    ) -> SetScore:
        members = [sensors[sid] for sid in sensor_set]
        # Lifetime is the only energy-dependent term: always fresh.
        lifetime = set_lifetime(members)
        member_sigs = tuple(
            self.feasibility.signature_of(member) for member in members
        )
        key = (req_key, sensor_set)
        cached = self._scores.get(key)
        if cached is not None and cached[2] == member_sigs:
            performance, power, _sigs = cached
            self._scores.move_to_end(key)
            self.score_hits += 1
            self._score_hits_counter.inc()
            return SetScore(sensor_set, lifetime, performance, power)
        self.score_misses += 1
        self._score_misses_counter.inc()
        performance = set_performance(members, requirements)
        power = set_power(members)
        self._scores[key] = (performance, power, member_sigs)
        while len(self._scores) > self.max_score_entries:
            self._scores.popitem(last=False)
        return SetScore(sensor_set, lifetime, performance, power)

    # ---------------------------------------------------------- invalidation

    def invalidate_sensor(self, sensor_id: str) -> None:
        """Delta invalidation: drop everything keyed on ``sensor_id``.

        Wired into ``add_sensor`` (a re-registration may carry new
        reliabilities), ``remove_sensor``, and sensor death.
        """
        self.feasibility.invalidate_sensor(sensor_id)
        stale = [key for key in self._scores if sensor_id in key[1]]
        for key in stale:
            del self._scores[key]

    def note_death(self, sensor_id: str) -> None:
        """A battery hit zero: the alive set shrank, evict its entries."""
        self.invalidate_sensor(sensor_id)

    def clear(self) -> None:
        self.feasibility.clear()
        self._scores.clear()

    # ------------------------------------------------------------ inspection

    def stats(self) -> Dict[str, float]:
        return {
            "feasibility_hits": self.feasibility.hits,
            "feasibility_misses": self.feasibility.misses,
            "feasibility_invalidations": self.feasibility.invalidations,
            "feasibility_entries": len(self.feasibility),
            "score_hits": self.score_hits,
            "score_misses": self.score_misses,
            "score_entries": len(self._scores),
        }
