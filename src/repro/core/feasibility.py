"""Application feasible-set computation — the heart of MiLAN.

"Physical resources ... and minimum application performance limit the input
to certain subsets of available components. It is the job of MiLAN to
identify these feasible sets."

A set of sensors S satisfies variable v (required reliability q) when::

    1 - prod_{s in S, s measures v} (1 - r_sv)  >=  q

— independent readings combine like parallel reliability. The *feasible
sets* are the satisfying subsets; since feasibility is monotone (supersets
of a feasible set are feasible), the minimal ones characterize them all.

:func:`minimal_feasible_sets` enumerates minimal sets exactly with
superset pruning (fine up to ~20 sensors); :func:`greedy_feasible_set` is
the polynomial fallback for larger fleets and is also the "greedy
reliability" baseline in experiment E10.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.sensors import SensorInfo

SensorSet = FrozenSet[str]


def combined_reliability(
    sensors: Sequence[SensorInfo], variable: str
) -> float:
    """Reliability a sensor group achieves for one variable."""
    miss = 1.0
    for sensor in sensors:
        r = sensor.reliability_for(variable)
        if r > 0.0:
            miss *= 1.0 - r
    return 1.0 - miss


def satisfies(
    sensors: Sequence[SensorInfo], requirements: Dict[str, float]
) -> bool:
    """True when the group meets every variable requirement."""
    epsilon = 1e-12
    return all(
        combined_reliability(sensors, variable) + epsilon >= required
        for variable, required in requirements.items()
    )


def unsatisfied_variables(
    sensors: Sequence[SensorInfo], requirements: Dict[str, float]
) -> List[str]:
    epsilon = 1e-12
    return [
        variable
        for variable, required in requirements.items()
        if combined_reliability(sensors, variable) + epsilon < required
    ]


def minimal_feasible_sets(
    sensors: Sequence[SensorInfo],
    requirements: Dict[str, float],
    max_size: Optional[int] = None,
    max_sets: int = 256,
) -> List[SensorSet]:
    """Enumerate minimal feasible sets (ids), smallest first.

    Only sensors measuring at least one required variable are considered.
    Searches subset sizes in increasing order and prunes supersets of
    already-found feasible sets, so every returned set is minimal. Stops
    after ``max_sets`` results — the selector rarely needs more, and the
    cap bounds worst-case work (documented ablation in bench E10).

    Returns an empty list when even the full set is infeasible.
    """
    relevant = [
        sensor
        for sensor in sensors
        if not sensor.depleted
        and any(sensor.measures(v) for v in requirements)
    ]
    if not requirements:
        return [frozenset()]
    if not satisfies(relevant, requirements):
        return []
    by_id = {s.sensor_id: s for s in relevant}
    ids = sorted(by_id)
    limit = len(ids) if max_size is None else min(max_size, len(ids))
    found: List[SensorSet] = []
    for size in range(1, limit + 1):
        for combo in combinations(ids, size):
            candidate = frozenset(combo)
            if any(existing <= candidate for existing in found):
                continue  # superset of a smaller feasible set: not minimal
            if satisfies([by_id[i] for i in combo], requirements):
                found.append(candidate)
                if len(found) >= max_sets:
                    return found
    return found


def greedy_feasible_set(
    sensors: Sequence[SensorInfo],
    requirements: Dict[str, float],
) -> Optional[SensorSet]:
    """Polynomial-time feasible set: repeatedly add the sensor with the
    largest reliability contribution to the currently worst-satisfied
    variable. Not necessarily minimal; None when infeasible."""
    available = {
        s.sensor_id: s
        for s in sensors
        if not s.depleted and any(s.measures(v) for v in requirements)
    }
    if not requirements:
        return frozenset()
    chosen: Dict[str, SensorInfo] = {}
    while True:
        group = list(chosen.values())
        missing = unsatisfied_variables(group, requirements)
        if not missing:
            return frozenset(chosen)
        # Deficit-weighted: target the variable farthest from its goal.
        target = max(
            missing,
            key=lambda v: (requirements[v] - combined_reliability(group, v), v),
        )
        candidates = [
            s for sid, s in available.items()
            if sid not in chosen and s.measures(target)
        ]
        if not candidates:
            return None
        best = max(
            candidates, key=lambda s: (s.reliability_for(target), s.sensor_id)
        )
        chosen[best.sensor_id] = best


def expand_sets(
    minimal: Iterable[SensorSet], all_ids: Iterable[str], extra: int = 0
) -> List[SensorSet]:
    """Optionally grow minimal sets by up to ``extra`` spare sensors.

    MiLAN sometimes prefers slightly-larger-than-minimal sets (redundancy
    for fault tolerance); this generates those candidates.
    """
    ids = sorted(set(all_ids))
    results: List[SensorSet] = []
    seen: set = set()
    for base in minimal:
        for k in range(extra + 1):
            spares = [i for i in ids if i not in base]
            for addition in combinations(spares, k):
                grown = base | frozenset(addition)
                if grown not in seen:
                    seen.add(grown)
                    results.append(grown)
    return results
