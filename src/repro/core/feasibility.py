"""Application feasible-set computation — the heart of MiLAN.

"Physical resources ... and minimum application performance limit the input
to certain subsets of available components. It is the job of MiLAN to
identify these feasible sets."

A set of sensors S satisfies variable v (required reliability q) when::

    1 - prod_{s in S, s measures v} (1 - r_sv)  >=  q

— independent readings combine like parallel reliability. The *feasible
sets* are the satisfying subsets; since feasibility is monotone (supersets
of a feasible set are feasible), the minimal ones characterize them all.

:func:`minimal_feasible_sets` enumerates minimal sets exactly with
superset pruning (fine up to ~20 sensors); :func:`greedy_feasible_set` is
the polynomial fallback for larger fleets and is also the "greedy
reliability" baseline in experiment E10.

MiLAN re-evaluates its selection continuously at runtime, so enumeration
is a recurring hot path, not a one-shot setup cost. The search here is
therefore written around integer bitmasks: sensor ids map to bit
positions, per-variable miss products are maintained incrementally along
a depth-first prefix tree (one multiply per tree edge instead of a full
recompute per subset), minimality is enforced with bitmask containment
checks against a bit-bucketed index of found sets, and precomputed
per-variable log-miss contributions give a sound bound that prunes
subtrees which cannot satisfy some variable even using every remaining
sensor. The original list-scan implementation is retained in
:mod:`repro.core.feasibility_reference` and property tests assert the two
return identical results.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.sensors import SensorInfo

SensorSet = FrozenSet[str]

#: Tolerance on reliability comparisons (matches the reference module).
_EPSILON = 1e-12

#: Extra slack on the log-domain bound so float rounding can never prune a
#: subset the exact product-domain check would accept.
_LOG_MARGIN = 1e-9


def sensor_signature(sensor: SensorInfo) -> Tuple:
    """The enumeration-relevant identity of one sensor.

    Two fleets whose alive sensors carry pairwise-equal signatures (under
    the same requirements) produce identical candidate enumerations, so
    this is what :class:`repro.core.reconfig.FeasibilityCache` fingerprints.
    Remaining energy is deliberately excluded: draining a battery without
    depleting it cannot change which sets are feasible, only how they
    score — that is the energy-only fast path. Active power is included
    because the cached per-set score terms reuse it.
    """
    return (sensor.active_power_w, tuple(sorted(sensor.reliabilities.items())))


def requirements_signature(requirements: Dict[str, float]) -> Tuple:
    """Order-insensitive identity of a state's variable requirements."""
    return tuple(sorted(requirements.items()))


def combined_reliability(
    sensors: Sequence[SensorInfo], variable: str
) -> float:
    """Reliability a sensor group achieves for one variable."""
    miss = 1.0
    for sensor in sensors:
        r = sensor.reliability_for(variable)
        if r > 0.0:
            miss *= 1.0 - r
    return 1.0 - miss


def satisfies(
    sensors: Sequence[SensorInfo], requirements: Dict[str, float]
) -> bool:
    """True when the group meets every variable requirement."""
    epsilon = 1e-12
    return all(
        combined_reliability(sensors, variable) + epsilon >= required
        for variable, required in requirements.items()
    )


def unsatisfied_variables(
    sensors: Sequence[SensorInfo], requirements: Dict[str, float]
) -> List[str]:
    epsilon = 1e-12
    return [
        variable
        for variable, required in requirements.items()
        if combined_reliability(sensors, variable) + epsilon < required
    ]


class _BitmaskSearch:
    """Single-pass DFS over *infeasible* sensor-index prefixes.

    Bit ``i`` of a subset mask stands for ``ids[i]`` (ids sorted).
    Feasibility is monotone, so the DFS descends only while the current
    prefix is infeasible; the moment adding sensor ``j`` makes it feasible
    the set is recorded as a candidate and the subtree is abandoned (every
    extension would be a non-minimal superset). Every minimal feasible set
    is such a candidate — remove its highest sensor and the rest is
    infeasible by minimality — and candidates never contain each other's
    prefixes mid-walk, so no containment checks run inside the hot loop.

    Per-variable miss products are maintained incrementally in
    ascending-id order (one multiply per tree edge), matching the
    reference implementation's float association bit for bit. Precomputed
    per-variable log-miss contributions give a sound subtree bound: if an
    unsatisfied variable cannot reach its requirement even using every
    remaining sensor, the subtree is pruned.

    :meth:`results` then sorts candidates into the reference's
    (size, lexicographic) order and keeps only the minimal ones via
    bitmask-containment checks over a size-bucketed index of the kept
    sets, applying the ``max_sets`` cap at the same points the reference
    would.
    """

    __slots__ = (
        "n", "contrib", "required", "nv", "suffix_log", "log_threshold",
        "miss", "logmiss", "sat", "unsat", "candidates", "max_size",
    )

    def __init__(
        self,
        contrib: List[List[Tuple[int, float, float]]],
        required: List[float],
        max_size: int,
    ):
        self.n = len(contrib)
        self.contrib = contrib
        self.required = required
        self.nv = len(required)
        self.max_size = max_size
        # suffix_log[j][v]: total log-miss variable v could still gain from
        # sensors j..n-1 — the precomputed per-variable contributions that
        # power the infeasible-subtree bound.
        suffix = [[0.0] * self.nv for _ in range(self.n + 1)]
        for j in range(self.n - 1, -1, -1):
            row = list(suffix[j + 1])
            for vi, _one_minus_r, log_miss in contrib[j]:
                row[vi] += log_miss
            suffix[j] = row
        self.suffix_log = suffix
        # Variable v is satisfied when miss <= 1 - required + eps; in the
        # log domain, log-miss <= log(1 - required + eps). The margin keeps
        # the bound conservative under float rounding, so it can never
        # prune a subset the exact product-domain check would accept.
        self.log_threshold = []
        for req in required:
            headroom = 1.0 - req + _EPSILON
            self.log_threshold.append(
                math.log(headroom) + _LOG_MARGIN if headroom > 0.0
                else -math.inf
            )
        self.miss = [1.0] * self.nv
        self.logmiss = [0.0] * self.nv
        # Same arithmetic as the reference's empty-group check:
        # combined_reliability([]) == 0.0, compared with the epsilon slack.
        self.sat = [0.0 + _EPSILON >= req for req in required]
        self.unsat = self.sat.count(False)
        self.candidates: List[Tuple[Tuple[int, ...], int]] = []

    def run(self) -> None:
        if self.unsat == 0:
            # Every singleton is trivially feasible (the reference finds
            # all of them in its size-1 round); larger sets are supersets.
            if self.max_size >= 1:
                for j in range(self.n):
                    self.candidates.append(((j,), 1 << j))
            return
        self._dfs(0, 0, 0, ())
        self.candidates.sort(key=lambda c: (len(c[0]), c[0]))

    def _dfs(self, j_start: int, depth: int, mask: int, path: Tuple[int, ...]) -> None:
        n = self.n
        miss = self.miss
        logmiss = self.logmiss
        sat = self.sat
        required = self.required
        contrib = self.contrib
        can_descend = depth + 1 < self.max_size
        for j in range(j_start, n):
            # Apply sensor j's per-variable contributions incrementally.
            entries = contrib[j]
            undo_miss: List[float] = []
            undo_log: List[float] = []
            newly_sat: List[int] = []
            for vi, one_minus_r, log_miss in entries:
                old_miss = miss[vi]
                undo_miss.append(old_miss)
                undo_log.append(logmiss[vi])
                new_miss = old_miss * one_minus_r
                miss[vi] = new_miss
                logmiss[vi] += log_miss
                if not sat[vi] and (1.0 - new_miss) + _EPSILON >= required[vi]:
                    sat[vi] = True
                    newly_sat.append(vi)
            if len(newly_sat) == self.unsat:
                # Prefix + j is feasible and prefix alone was not: candidate.
                self.candidates.append((path + (j,), mask | (1 << j)))
            elif can_descend:
                # Still infeasible: descend unless some unsatisfied variable
                # cannot reach its requirement even with every remaining
                # sensor (the precomputed log-miss bound).
                hopeless = False
                suffix_row = self.suffix_log[j + 1]
                threshold = self.log_threshold
                for vi in range(self.nv):
                    if not sat[vi] and logmiss[vi] + suffix_row[vi] > threshold[vi]:
                        hopeless = True
                        break
                if not hopeless:
                    saved_unsat = self.unsat
                    self.unsat -= len(newly_sat)
                    self._dfs(j + 1, depth + 1, mask | (1 << j), path + (j,))
                    self.unsat = saved_unsat
            # Backtrack.
            for vi in newly_sat:
                sat[vi] = False
            k = 0
            for vi, _one_minus_r, _log_miss in entries:
                miss[vi] = undo_miss[k]
                logmiss[vi] = undo_log[k]
                k += 1

    def results(self, ids: List[str], max_sets: int) -> List[SensorSet]:
        """Minimal candidates in (size, lex) order, capped like the reference."""
        kept_masks: List[int] = []
        out: List[SensorSet] = []
        # Size-bucketed index of kept masks: a candidate of size s can only
        # contain kept sets from strictly smaller buckets.
        by_size: Dict[int, List[int]] = {}
        for path, cand in self.candidates:
            size = len(path)
            inverse = ~cand
            dominated = False
            for kept_size, bucket in by_size.items():
                if kept_size >= size:
                    continue
                for kept in bucket:
                    if kept & inverse == 0:  # kept is a subset of cand
                        dominated = True
                        break
                if dominated:
                    break
            if dominated:
                continue
            kept_masks.append(cand)
            by_size.setdefault(size, []).append(cand)
            out.append(frozenset(ids[j] for j in path))
            if len(out) >= max_sets:
                break
        return out


def minimal_feasible_sets(
    sensors: Sequence[SensorInfo],
    requirements: Dict[str, float],
    max_size: Optional[int] = None,
    max_sets: int = 256,
) -> List[SensorSet]:
    """Enumerate minimal feasible sets (ids), smallest first.

    Only sensors measuring at least one required variable are considered.
    Searches subset sizes in increasing order and prunes supersets of
    already-found feasible sets, so every returned set is minimal. Stops
    after ``max_sets`` results — the selector rarely needs more, and the
    cap bounds worst-case work (documented ablation in bench E10).

    Returns an empty list when even the full set is infeasible. The result
    (sets, order, cap behaviour) is identical to
    :func:`repro.core.feasibility_reference.minimal_feasible_sets_reference`;
    only the search machinery differs (see the module docstring).
    """
    relevant = [
        sensor
        for sensor in sensors
        if not sensor.depleted
        and any(sensor.measures(v) for v in requirements)
    ]
    if not requirements:
        return [frozenset()]
    if not satisfies(relevant, requirements):
        return []
    by_id = {s.sensor_id: s for s in relevant}
    ids = sorted(by_id)
    limit = len(ids) if max_size is None else min(max_size, len(ids))
    if limit <= 0:
        return []

    variables = list(requirements)
    var_index = {v: i for i, v in enumerate(variables)}
    required = [requirements[v] for v in variables]
    # contrib[j]: sensor ids[j]'s (variable index, 1 - r, log(1 - r))
    # entries for the variables it measures. log(0) would be needed for
    # r == 1.0; -inf is the correct value there (miss product hits 0).
    contrib: List[List[Tuple[int, float, float]]] = []
    for sensor_id in ids:
        sensor = by_id[sensor_id]
        entries: List[Tuple[int, float, float]] = []
        for variable, vi in var_index.items():
            r = sensor.reliability_for(variable)
            if r > 0.0:
                one_minus_r = 1.0 - r
                log_miss = (
                    math.log(one_minus_r) if one_minus_r > 0.0 else -math.inf
                )
                entries.append((vi, one_minus_r, log_miss))
        contrib.append(entries)

    search = _BitmaskSearch(contrib, required, limit)
    search.run()
    return search.results(ids, max_sets)


def greedy_feasible_set(
    sensors: Sequence[SensorInfo],
    requirements: Dict[str, float],
) -> Optional[SensorSet]:
    """Polynomial-time feasible set: repeatedly add the sensor with the
    largest reliability contribution to the currently worst-satisfied
    variable. Not necessarily minimal; None when infeasible."""
    available = {
        s.sensor_id: s
        for s in sensors
        if not s.depleted and any(s.measures(v) for v in requirements)
    }
    if not requirements:
        return frozenset()
    chosen: Dict[str, SensorInfo] = {}
    while True:
        group = list(chosen.values())
        missing = unsatisfied_variables(group, requirements)
        if not missing:
            return frozenset(chosen)
        # Deficit-weighted: target the variable farthest from its goal.
        target = max(
            missing,
            key=lambda v: (requirements[v] - combined_reliability(group, v), v),
        )
        candidates = [
            s for sid, s in available.items()
            if sid not in chosen and s.measures(target)
        ]
        if not candidates:
            return None
        best = max(
            candidates, key=lambda s: (s.reliability_for(target), s.sensor_id)
        )
        chosen[best.sensor_id] = best


def expand_sets(
    minimal: Iterable[SensorSet], all_ids: Iterable[str], extra: int = 0
) -> List[SensorSet]:
    """Optionally grow minimal sets by up to ``extra`` spare sensors.

    MiLAN sometimes prefers slightly-larger-than-minimal sets (redundancy
    for fault tolerance); this generates those candidates.
    """
    ids = sorted(set(all_ids))
    results: List[SensorSet] = []
    seen: set = set()
    for base in minimal:
        # Spares depend only on ``base``; compute once per base (with a set
        # for the membership test) rather than once per growth size.
        base_members = set(base)
        spares = [i for i in ids if i not in base_members]
        for k in range(extra + 1):
            for addition in combinations(spares, k):
                grown = base | frozenset(addition)
                if grown not in seen:
                    seen.add(grown)
                    results.append(grown)
    return results
