"""Application states.

MiLAN applications are state-based: the paper's motivating health-monitor
needs different variables at different reliabilities depending on whether
the patient is at rest, exercising, or in distress. A :class:`StateMachine`
holds the current state and moves between states when transition predicates
over the latest variable readings fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.events import EventEmitter

#: A transition guard: reads the latest variable values, True = take it.
Predicate = Callable[[Dict[str, Any]], bool]


@dataclass
class Transition:
    source: str
    target: str
    predicate: Predicate = field(repr=False)


class StateMachine:
    """States + predicate-guarded transitions.

    Events (via :attr:`events`): ``"state_changed"`` (old, new).
    Transitions are evaluated in registration order; the first that fires
    wins (deterministic).
    """

    def __init__(self, states: List[str], initial: str):
        if not states:
            raise ConfigurationError("a state machine needs at least one state")
        if len(set(states)) != len(states):
            raise ConfigurationError(f"duplicate states in {states!r}")
        if initial not in states:
            raise ConfigurationError(f"initial state {initial!r} not in {states!r}")
        self.states = list(states)
        self.current = initial
        self.events = EventEmitter()
        self._transitions: List[Transition] = []
        # Transitions indexed by source (registration order preserved):
        # advance() runs on every observe() in the reconfigure loop, so it
        # should only scan the current state's outgoing edges.
        self._by_source: Dict[str, List[Transition]] = {}
        self.transitions_taken = 0

    def add_transition(self, source: str, target: str, predicate: Predicate) -> None:
        for state in (source, target):
            if state not in self.states:
                raise ConfigurationError(f"unknown state {state!r}")
        transition = Transition(source, target, predicate)
        self._transitions.append(transition)
        self._by_source.setdefault(source, []).append(transition)

    def force(self, state: str) -> None:
        """Jump directly to a state (application override)."""
        if state not in self.states:
            raise ConfigurationError(f"unknown state {state!r}")
        if state != self.current:
            old, self.current = self.current, state
            self.transitions_taken += 1
            self.events.emit("state_changed", old, state)

    def advance(self, readings: Dict[str, Any]) -> Optional[Tuple[str, str]]:
        """Evaluate transitions against the readings; returns (old, new) if
        a transition fired, else None."""
        for transition in self._by_source.get(self.current, ()):
            if transition.predicate(readings):
                old = self.current
                self.force(transition.target)
                return (old, self.current)
        return None
