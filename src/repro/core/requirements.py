"""The state-based variable requirements graph.

For each application state, each variable of interest carries the minimum
acceptable reliability with which the application must receive it — the
"application QoS" of Section 4, specified by the application and maintained
by MiLAN as the environment changes. A variable absent from a state is not
needed in that state (requirement 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import ConfigurationError


@dataclass
class VariableRequirements:
    """state -> variable -> required reliability in [0, 1]."""

    by_state: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def require(self, state: str, variable: str, reliability: float) -> "VariableRequirements":
        """Declare a requirement; returns self for chaining."""
        if not 0.0 < reliability <= 1.0:
            raise ConfigurationError(
                f"required reliability must be in (0, 1], got {reliability!r}"
            )
        self.by_state.setdefault(state, {})[variable] = reliability
        return self

    def for_state(self, state: str) -> Dict[str, float]:
        """Requirements active in ``state`` (empty dict = nothing needed)."""
        return dict(self.by_state.get(state, {}))

    def states(self) -> List[str]:
        return list(self.by_state)

    def variables(self) -> Set[str]:
        names: Set[str] = set()
        for requirements in self.by_state.values():
            names.update(requirements)
        return names

    def hardest_state(self) -> str:
        """The state with the largest total requirement (sizing worst case)."""
        if not self.by_state:
            raise ConfigurationError("no requirements declared")
        return max(
            self.by_state,
            key=lambda s: (sum(self.by_state[s].values()), s),
        )
