"""Overload-driven adaptive QoS: the governor that closes the loop.

The transport and admission layers *report* pressure (queue depths, shed
counters, rejection fractions); MiLAN *can* run cheaper configurations
(lower required reliabilities → smaller feasible sets → fewer senders).
The :class:`OverloadGovernor` connects the two: it samples pressure
signals on a fixed cadence, maps the worst signal onto a small ladder of
:class:`OverloadLevel`\\ s with hysteresis and a de-escalation dwell, and —
via :meth:`~repro.core.milan.Milan.set_requirements_override` — scales the
application's per-state requirements toward (never through) a per-variable
**QoS floor** while overloaded.

Determinism: the governor owns no clock and rolls no dice. Ticks ride the
(virtual-time) scheduler, pressure is a pure max over the registered
signal callables, and level transitions depend only on (pressure history,
ladder thresholds, dwell) — so a simulated flash crowd degrades and
recovers identically on every run, which the chaos scorecards rely on.

Hysteresis is two-sided: a level is *entered* the first tick pressure
reaches its ``enter`` threshold (escalation is immediate — overload is an
emergency), but *left* only after pressure has stayed at or below its
``exit`` threshold for ``dwell_s`` (de-escalation is cautious — flapping
between configurations is itself a load source).

Events (via :attr:`events`): ``"degraded"`` (old_level_name,
new_level_name) on escalation, ``"restored"`` (old, new) on de-escalation.
Metrics: ``overload.level`` / ``overload.pressure`` gauges and
``overload.escalations`` / ``overload.deescalations`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.milan import Milan
from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.obs.tracing import TRACER
from repro.util.events import EventEmitter

Signal = Callable[[], float]


@dataclass(frozen=True)
class OverloadLevel:
    """One rung of the degradation ladder.

    ``enter``/``exit`` are pressure thresholds in [0, 1] with ``exit <
    enter`` (the hysteresis band); ``scale`` multiplies every required
    reliability while the level is active (clamped to the QoS floor).
    """

    name: str
    enter: float
    exit: float
    scale: float

    def __post_init__(self) -> None:
        if not 0.0 < self.enter <= 1.0:
            raise ConfigurationError(
                f"level {self.name!r}: enter must be in (0, 1], got {self.enter!r}"
            )
        if not 0.0 <= self.exit < self.enter:
            raise ConfigurationError(
                f"level {self.name!r}: exit must be in [0, enter), got {self.exit!r}"
            )
        if not 0.0 < self.scale <= 1.0:
            raise ConfigurationError(
                f"level {self.name!r}: scale must be in (0, 1], got {self.scale!r}"
            )


DEFAULT_LEVELS: Tuple[OverloadLevel, ...] = (
    OverloadLevel("elevated", enter=0.5, exit=0.25, scale=0.85),
    OverloadLevel("high", enter=0.75, exit=0.5, scale=0.7),
    OverloadLevel("critical", enter=0.9, exit=0.7, scale=0.5),
)


class OverloadGovernor:
    """Samples pressure signals and degrades MiLAN requirements under load.

    ``scheduler`` provides time and periodic ticks (pass the transport
    scheduler so virtual-time tests drive the governor deterministically).
    ``milan`` may be ``None`` for signal-only deployments (the level ladder
    still runs and events still fire; there is just nothing to degrade).

    Signals are callables returning pressure in [0, 1] (values are clamped);
    the governor's composite pressure is their **max** — one saturated
    resource makes the node overloaded regardless of how idle the rest are.
    """

    def __init__(
        self,
        scheduler,
        milan: Optional[Milan] = None,
        *,
        levels: Sequence[OverloadLevel] = DEFAULT_LEVELS,
        floor: Optional[Dict[str, float]] = None,
        interval_s: float = 1.0,
        dwell_s: float = 3.0,
        registry=None,
    ):
        levels = tuple(levels)
        if not levels:
            raise ConfigurationError("the governor needs at least one level")
        for prev, cur in zip(levels, levels[1:]):
            if cur.enter <= prev.enter:
                raise ConfigurationError(
                    f"levels must escalate: {cur.name!r} enters at {cur.enter} "
                    f"<= {prev.name!r} at {prev.enter}"
                )
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval_s!r}")
        self.scheduler = scheduler
        self.milan = milan
        self.levels = levels
        self.floor = dict(floor or {})
        self.interval_s = interval_s
        self.dwell_s = dwell_s
        self.events = EventEmitter()
        self._signals: Dict[str, Signal] = {}
        # 0 = nominal; i >= 1 means levels[i - 1] is active.
        self.level = 0
        self.pressure = 0.0
        self.escalations = 0
        self.deescalations = 0
        self.ticks = 0
        # Time at which pressure last sat *above* the active level's exit
        # threshold; de-escalation needs dwell_s of continuous calm.
        self._calm_since: Optional[float] = None
        self._timer = None
        self._stopped = False
        registry = registry if registry is not None else get_registry()
        self._level_gauge = registry.gauge("overload.level")
        self._pressure_gauge = registry.gauge("overload.pressure")
        self._escalation_counter = registry.counter("overload.escalations")
        self._deescalation_counter = registry.counter("overload.deescalations")

    # -------------------------------------------------------------- signals

    def add_signal(self, name: str, signal: Signal) -> None:
        if name in self._signals:
            raise ConfigurationError(f"signal {name!r} already registered")
        self._signals[name] = signal

    def remove_signal(self, name: str) -> None:
        self._signals.pop(name, None)

    def sample_pressure(self) -> float:
        """Max over all signals, each clamped to [0, 1]."""
        pressure = 0.0
        for signal in self._signals.values():
            pressure = max(pressure, min(1.0, max(0.0, float(signal()))))
        return pressure

    # ------------------------------------------------------------ level name

    @property
    def level_name(self) -> str:
        return "nominal" if self.level == 0 else self.levels[self.level - 1].name

    def degraded_requirements(self, base: Dict[str, float]) -> Dict[str, float]:
        """Scale ``base`` by the active level, clamped to the QoS floor.

        Each requirement becomes ``base * scale`` but never below the
        variable's floor and never *above* base (a floor higher than what
        the policy asks for must not invent new requirements). Values are
        rounded so each level has one exact requirements signature — the
        reconfig cache then treats revisits as warm hits.
        """
        if self.level == 0:
            return base
        scale = self.levels[self.level - 1].scale
        degraded = {}
        for variable, required in base.items():
            value = max(required * scale, self.floor.get(variable, 0.0))
            degraded[variable] = round(min(required, value), 9)
        return degraded

    # ----------------------------------------------------------------- ticks

    def start(self) -> None:
        """Begin periodic sampling on the scheduler."""
        if self._timer is None and not self._stopped:
            self._timer = self.scheduler.schedule(self.interval_s, self._on_tick)

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            cancel = getattr(self._timer, "cancel", None)
            if cancel is not None:
                cancel()
            self._timer = None

    def _on_tick(self) -> None:
        self._timer = None
        if self._stopped:
            return
        self.tick()
        self._timer = self.scheduler.schedule(self.interval_s, self._on_tick)

    def tick(self, now: Optional[float] = None) -> int:
        """One sampling step; returns the (possibly new) level index.

        Exposed so tests and simulation harnesses can drive the governor
        without the periodic timer.
        """
        if now is None:
            now = self.scheduler.now()
        self.ticks += 1
        pressure = self.sample_pressure()
        self.pressure = pressure
        self._pressure_gauge.set(pressure)
        # Escalate to the highest level whose enter threshold is reached —
        # immediately, and possibly skipping rungs on a sharp spike.
        target = self.level
        for index in range(len(self.levels), self.level, -1):
            if pressure >= self.levels[index - 1].enter:
                target = index
                break
        if target > self.level:
            self._change_level(target, escalated=True)
            self._calm_since = None
            return self.level
        # De-escalate one rung at a time, only after dwell_s of calm below
        # the active level's exit threshold.
        if self.level > 0 and pressure <= self.levels[self.level - 1].exit:
            if self._calm_since is None:
                self._calm_since = now
            elif now - self._calm_since >= self.dwell_s:
                self._change_level(self.level - 1, escalated=False)
                self._calm_since = now
        else:
            self._calm_since = None
        return self.level

    def _change_level(self, new_level: int, escalated: bool) -> None:
        old_name = self.level_name
        self.level = new_level
        self._level_gauge.set(new_level)
        if escalated:
            self.escalations += 1
            self._escalation_counter.inc()
        else:
            self.deescalations += 1
            self._deescalation_counter.inc()
        if TRACER.enabled:
            TRACER.instant(
                "overload.level",
                level=self.level_name,
                index=new_level,
                pressure=round(self.pressure, 6),
                direction="degraded" if escalated else "restored",
            )
        self._apply_to_milan()
        self.events.emit(
            "degraded" if escalated else "restored", old_name, self.level_name
        )

    def _apply_to_milan(self) -> None:
        if self.milan is None:
            return
        if self.level == 0:
            self.milan.set_requirements_override(None)
        else:
            self.milan.set_requirements_override(self.degraded_requirements)


# ------------------------------------------------------------ signal recipes


def queue_pressure(transport, max_queue: Optional[int] = None) -> Signal:
    """Pressure from a :class:`~repro.transport.pacing.PacedTransport`'s
    queue: current depth over capacity."""
    def signal() -> float:
        capacity = max_queue if max_queue is not None else transport.max_queue
        return transport.queue_depth / capacity if capacity else 0.0
    return signal


def shed_pressure(transport, window: int = 50) -> Signal:
    """Pressure from shedding: sheds per ``window`` recent outcomes.

    Stateful by design — it differences the transport's monotonic counters
    between calls, so each tick sees the *recent* shed fraction rather
    than a lifetime average that an earlier spike would pin high.
    """
    last = {"sent": 0, "shed": 0}

    def signal() -> float:
        sent, shed = transport.paced_sent, transport.shed
        d_sent = sent - last["sent"]
        d_shed = shed - last["shed"]
        last["sent"], last["shed"] = sent, shed
        total = d_sent + d_shed
        if total == 0:
            return 0.0
        return min(1.0, d_shed / min(total, window) if total <= window
                   else d_shed / total)
    return signal


def rejection_pressure(admission) -> Signal:
    """Pressure from the admission controller: recent rejection fraction."""
    last = {"admitted": 0, "rejected": 0}

    def signal() -> float:
        admitted, rejected = admission.admitted, admission.rejected
        d_admitted = admitted - last["admitted"]
        d_rejected = rejected - last["rejected"]
        last["admitted"], last["rejected"] = admitted, rejected
        total = d_admitted + d_rejected
        return d_rejected / total if total else 0.0
    return signal
