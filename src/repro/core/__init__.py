"""MiLAN — Middleware Linking Applications and Networks (Section 4).

The paper's own system: applications "adapt to changing sets of available
components" and "further constrain the active components for
application-performance reasons"; MiLAN's job is "to identify these
feasible sets and to determine which set optimizes the tradeoff between
application performance and network cost (e.g., energy dissipation)",
then "configure the network". Its key feature is "the separation of the
policy for managing the network, which is defined by the application, from
the mechanisms for implementing the policy".

The model follows the MiLAN technical report (TR-795) lineage:

* the application declares **states** and, per state, the **reliability
  each variable of interest requires** (:mod:`repro.core.state`,
  :mod:`repro.core.requirements`);
* each **sensor** supplies some variables with some reliability at some
  energy cost (:mod:`repro.core.sensors`);
* a sensor set satisfies a variable when the combined reliability
  ``1 - prod(1 - r_i)`` meets the requirement; the **application feasible
  sets** are the minimal satisfying sets (:mod:`repro.core.feasibility`);
* **network plugins** intersect these with what the network can support —
  Bluetooth piconet size, 802.11 bandwidth, reachability
  (:mod:`repro.core.plugins`);
* the **selector** picks the network-feasible set optimizing the
  performance/lifetime tradeoff (:mod:`repro.core.selection`);
* the **configurator** turns the choice into node roles
  (:mod:`repro.core.configurator`), and :mod:`repro.core.milan` is the
  runtime that re-runs the whole pipeline as states, sensors, and energy
  change. :mod:`repro.core.policy` is the application-facing declarative
  policy object. :mod:`repro.core.overload` closes the overload loop:
  transport/admission pressure signals drive a governor that degrades the
  per-state requirements toward a QoS floor (and restores them) via
  :meth:`Milan.set_requirements_override`.
"""

from repro.core.configurator import NetworkConfiguration, configure
from repro.core.feasibility import (
    combined_reliability,
    greedy_feasible_set,
    minimal_feasible_sets,
    satisfies,
)
from repro.core.milan import Milan
from repro.core.overload import (
    DEFAULT_LEVELS,
    OverloadGovernor,
    OverloadLevel,
    queue_pressure,
    rejection_pressure,
    shed_pressure,
)
from repro.core.plugins import (
    BandwidthPlugin,
    BluetoothPlugin,
    NetworkContext,
    NetworkPlugin,
    ReachabilityPlugin,
)
from repro.core.policy import ApplicationPolicy
from repro.core.reconfig import FeasibilityCache, ReconfigEngine
from repro.core.requirements import VariableRequirements
from repro.core.selection import SelectionStrategy, select_best
from repro.core.sensors import SensorInfo
from repro.core.state import StateMachine

__all__ = [
    "NetworkConfiguration",
    "configure",
    "combined_reliability",
    "greedy_feasible_set",
    "minimal_feasible_sets",
    "satisfies",
    "Milan",
    "DEFAULT_LEVELS",
    "OverloadGovernor",
    "OverloadLevel",
    "queue_pressure",
    "rejection_pressure",
    "shed_pressure",
    "BandwidthPlugin",
    "BluetoothPlugin",
    "NetworkContext",
    "NetworkPlugin",
    "ReachabilityPlugin",
    "ApplicationPolicy",
    "FeasibilityCache",
    "ReconfigEngine",
    "VariableRequirements",
    "SelectionStrategy",
    "select_best",
    "SensorInfo",
    "StateMachine",
]
