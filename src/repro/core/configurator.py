"""Network configuration: turning a chosen set into node roles.

Section 4: "MiLAN must then configure the network (e.g., determine which
components should send data, which nodes should be routers in multi-hop
networks, and which nodes should play special roles in the network, such as
Bluetooth masters)."

:func:`configure` produces a :class:`NetworkConfiguration`:

* **senders** — the chosen sensors' nodes;
* **routers** — nodes on shortest paths from each sender to the sink over
  the live topology (when one is available);
* **master** — for piconet technologies, the node with the most remaining
  energy among participants (masters work hardest, so the freshest battery
  takes the role);
* every other node may sleep.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.plugins import NetworkContext
from repro.core.sensors import SensorInfo

SensorSet = FrozenSet[str]


@dataclass(frozen=True)
class NetworkConfiguration:
    """The applied outcome of one MiLAN selection round."""

    active_sensors: SensorSet
    senders: FrozenSet[str]  # node ids that transmit data
    routers: FrozenSet[str]  # node ids that must stay awake to forward
    master: Optional[str]  # piconet master node (None = not applicable)
    sleepers: FrozenSet[str]  # node ids allowed to power down

    def role_of(self, node_id: str) -> str:
        if self.master == node_id:
            return "master"
        if node_id in self.senders:
            return "sender"
        if node_id in self.routers:
            return "router"
        if node_id in self.sleepers:
            return "sleeper"
        return "unknown"


def _shortest_path(adjacency: Dict[str, Set[str]], start: str, goal: str) -> List[str]:
    """BFS path (node ids), [] when unreachable."""
    if start == goal:
        return [start]
    parents: Dict[str, str] = {start: start}
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        for neighbor in sorted(adjacency.get(current, ())):
            if neighbor in parents:
                continue
            parents[neighbor] = current
            if neighbor == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            frontier.append(neighbor)
    return []


def configure(
    chosen: SensorSet,
    context: NetworkContext,
    elect_master: bool = False,
) -> NetworkConfiguration:
    """Derive roles for the chosen sensor set."""
    senders: Set[str] = set()
    for sensor_id in chosen:
        node_id = context.info(sensor_id).node_id
        if node_id is not None:
            senders.add(node_id)

    routers: Set[str] = set()
    if context.network is not None and context.sink_node_id is not None:
        adjacency = context.network.adjacency()
        for sender in sorted(senders):
            path = _shortest_path(adjacency, sender, context.sink_node_id)
            # Interior nodes of the path forward traffic.
            routers.update(path[1:-1])
    routers -= senders

    master: Optional[str] = None
    if elect_master:
        # Freshest battery among participating sensors' nodes becomes master.
        def residual(node_id: str) -> float:
            energies = [
                info.energy_j
                for info in context.sensors.values()
                if info.node_id == node_id
            ]
            return max(energies, default=0.0)

        participants = sorted(senders | routers)
        if context.sink_node_id is not None:
            participants = sorted(set(participants) | {context.sink_node_id})
        if participants:
            master = max(participants, key=lambda n: (residual(n), n))

    all_nodes: Set[str] = set()
    if context.network is not None:
        all_nodes = set(context.network.node_ids())
    else:
        all_nodes = {
            info.node_id for info in context.sensors.values() if info.node_id
        }
    awake = senders | routers
    if master is not None:
        awake.add(master)
    if context.sink_node_id is not None:
        awake.add(context.sink_node_id)
    sleepers = frozenset(all_nodes - awake)

    return NetworkConfiguration(
        active_sensors=chosen,
        senders=frozenset(senders),
        routers=frozenset(routers),
        master=master,
        sleepers=sleepers,
    )
