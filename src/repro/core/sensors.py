"""Sensor QoS: what each component contributes, and at what cost.

A :class:`SensorInfo` is MiLAN's view of one available component: the
reliability it provides for each variable it can measure, its transmit
power draw while active, and its remaining energy. Instances are built
directly (simulation) or from discovered service descriptions whose QoS
properties carry ``var:<name>`` reliability entries
(:func:`sensor_from_description`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.discovery.description import ServiceDescription
from repro.errors import ConfigurationError

#: Prefix marking per-variable reliabilities inside SupplierQoS.properties.
VARIABLE_PROPERTY_PREFIX = "var:"


@dataclass(frozen=True)
class SensorInfo:
    """One component MiLAN can switch on or off.

    Attributes:
        sensor_id: unique component id.
        reliabilities: variable -> reliability in (0, 1].
        active_power_w: power drawn while selected (sampling + radio).
        energy_j: remaining battery energy (inf = mains).
        bandwidth_bps: network load the sensor's stream costs when active.
        node_id: the network node hosting it (for reachability plugins).
    """

    sensor_id: str
    reliabilities: Dict[str, float] = field(default_factory=dict)
    active_power_w: float = 1e-3
    energy_j: float = float("inf")
    bandwidth_bps: float = 0.0
    node_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.sensor_id:
            raise ConfigurationError("sensor_id must be non-empty")
        for variable, reliability in self.reliabilities.items():
            if not 0.0 < reliability <= 1.0:
                raise ConfigurationError(
                    f"sensor {self.sensor_id!r}: reliability for {variable!r} "
                    f"must be in (0, 1], got {reliability!r}"
                )
        if self.active_power_w < 0:
            raise ConfigurationError(
                f"active power must be >= 0, got {self.active_power_w!r}"
            )
        if self.energy_j < 0:
            raise ConfigurationError(f"energy must be >= 0, got {self.energy_j!r}")

    def reliability_for(self, variable: str) -> float:
        return self.reliabilities.get(variable, 0.0)

    def measures(self, variable: str) -> bool:
        return variable in self.reliabilities

    @property
    def depleted(self) -> bool:
        return self.energy_j <= 0.0

    def lifetime_if_active(self) -> float:
        """Seconds until this sensor dies if kept active continuously."""
        if self.active_power_w == 0:
            return float("inf")
        return self.energy_j / self.active_power_w

    def drained(self, joules: float) -> "SensorInfo":
        """A copy with ``joules`` consumed (immutable update)."""
        if self.energy_j == float("inf"):
            return self
        return replace(self, energy_j=max(0.0, self.energy_j - joules))

    def with_energy(self, energy_j: float) -> "SensorInfo":
        return replace(self, energy_j=energy_j)


def sensor_from_description(description: ServiceDescription) -> SensorInfo:
    """Build a SensorInfo from a discovered service description.

    Per-variable reliabilities come from QoS properties named
    ``var:<variable>``; power draw from the optional ``power_w`` property;
    energy from the battery fraction times the ``battery_capacity_j``
    property (default 1 J).
    """
    reliabilities: Dict[str, float] = {}
    for name, value in description.qos.properties.items():
        if name.startswith(VARIABLE_PROPERTY_PREFIX):
            variable = name[len(VARIABLE_PROPERTY_PREFIX):]
            reliabilities[variable] = float(value)
    power = float(description.qos.properties.get("power_w", "0.001"))
    if description.qos.battery_powered and description.qos.battery_fraction is not None:
        capacity = float(description.qos.properties.get("battery_capacity_j", "1.0"))
        energy = description.qos.battery_fraction * capacity
    else:
        energy = float("inf")
    return SensorInfo(
        sensor_id=description.service_id,
        reliabilities=reliabilities,
        active_power_w=power,
        energy_j=energy,
        bandwidth_bps=description.qos.bandwidth_bps,
        node_id=description.provider.split(":", 1)[0],
    )
