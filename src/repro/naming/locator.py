"""The location service: logical name -> current physical address.

A home-agent pattern: one :class:`LocationServer` (per administrative
domain) holds versioned bindings; a mobile service re-binds whenever it
attaches somewhere new, and consumers resolve lazily. Versions make
late-arriving updates harmless — a ``move`` carrying an older version than
the current binding is ignored.

Protocol (codec dicts): ``bind`` / ``resolve`` / ``unbind`` with
corresponding acks, plus ``resolve_prefix`` for directory-style listing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import NameNotFoundError
from repro.interop.codec import Codec, get_codec
from repro.naming.names import LogicalName
from repro.transport.base import Address, Transport
from repro.util.events import EventEmitter
from repro.util.ids import IdGenerator
from repro.util.promise import Promise


@dataclass
class Binding:
    name: str
    address: str
    version: int


class LocationServer:
    """Holds the name -> address map.

    Events (via :attr:`events`): ``"bound"`` / ``"moved"`` / ``"unbound"``
    with the binding.
    """

    def __init__(self, transport: Transport, codec: Optional[Codec] = None):
        self.transport = transport
        self.codec = codec if codec is not None else get_codec("binary")
        self.events = EventEmitter()
        self._bindings: Dict[str, Binding] = {}
        self.resolves_served = 0
        transport.set_receiver(self._on_message)

    def binding(self, name: str) -> Optional[Binding]:
        return self._bindings.get(name)

    def __len__(self) -> int:
        return len(self._bindings)

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        op = message.get("op")
        rid = message.get("rid")
        if op == "bind":
            self._handle_bind(source, rid, message)
        elif op == "resolve":
            self._handle_resolve(source, rid, message)
        elif op == "resolve_prefix":
            self._handle_resolve_prefix(source, rid, message)
        elif op == "unbind":
            self._handle_unbind(source, rid, message)

    def _reply(self, destination: Address, message: Dict[str, Any]) -> None:
        self.transport.send(destination, self.codec.encode(message))

    def _handle_bind(self, source: Address, rid: Any, message: Dict[str, Any]) -> None:
        name = message["name"]
        version = int(message.get("version", 1))
        existing = self._bindings.get(name)
        accepted = existing is None or version > existing.version
        if accepted:
            binding = Binding(name, message["address"], version)
            self._bindings[name] = binding
            self.events.emit("moved" if existing else "bound", binding)
        self._reply(source, {"op": "bind_ack", "rid": rid, "ok": accepted})

    def _handle_resolve(self, source: Address, rid: Any, message: Dict[str, Any]) -> None:
        self.resolves_served += 1
        binding = self._bindings.get(message["name"])
        self._reply(
            source,
            {
                "op": "resolve_ack",
                "rid": rid,
                "address": binding.address if binding else None,
                "version": binding.version if binding else 0,
            },
        )

    def _handle_resolve_prefix(self, source: Address, rid: Any, message: Dict[str, Any]) -> None:
        self.resolves_served += 1
        prefix = LogicalName.parse(message["prefix"])
        matches = {
            name: binding.address
            for name, binding in self._bindings.items()
            if prefix.is_prefix_of(LogicalName.parse(name))
        }
        self._reply(source, {"op": "resolve_prefix_ack", "rid": rid, "bindings": matches})

    def _handle_unbind(self, source: Address, rid: Any, message: Dict[str, Any]) -> None:
        binding = self._bindings.pop(message["name"], None)
        if binding is not None:
            self.events.emit("unbound", binding)
        self._reply(source, {"op": "unbind_ack", "rid": rid, "ok": binding is not None})


class LocationClient:
    """A node's handle onto the location server."""

    def __init__(
        self,
        transport: Transport,
        server_address: Address,
        codec: Optional[Codec] = None,
        request_timeout_s: float = 2.0,
    ):
        self.transport = transport
        self.server_address = server_address
        self.codec = codec if codec is not None else get_codec("binary")
        self.request_timeout_s = request_timeout_s
        self._rids = IdGenerator(f"loc:{transport.local_address}")
        self._pending: Dict[str, Promise] = {}
        self._versions: Dict[str, int] = {}
        transport.set_receiver(self._on_message)

    def _request(self, message: Dict[str, Any]) -> Promise:
        rid = self._rids.next()
        message["rid"] = rid
        promise: Promise = Promise()
        self._pending[rid] = promise
        self.transport.send(self.server_address, self.codec.encode(message))
        self.transport.scheduler.schedule(self.request_timeout_s, self._timeout, rid)
        return promise

    def _timeout(self, rid: str) -> None:
        promise = self._pending.pop(rid, None)
        if promise is not None:
            promise.reject(NameNotFoundError(f"location request {rid} timed out"))

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = self.codec.decode(payload)
        promise = self._pending.pop(message.get("rid"), None)
        if promise is not None:
            promise.fulfill(message)

    # ------------------------------------------------------------ operations

    def bind(self, name: LogicalName, address: Address) -> Promise:
        """Publish (or move) a binding; versions increase monotonically
        per client so a mobile service's newest location always wins."""
        version = self._versions.get(str(name), 0) + 1
        self._versions[str(name)] = version
        return self._request(
            {"op": "bind", "name": str(name), "address": str(address),
             "version": version}
        )

    def resolve(self, name: LogicalName) -> Promise:
        """Fulfills with the current :class:`Address`; rejects with
        :class:`NameNotFoundError` for unknown names."""
        promise = self._request({"op": "resolve", "name": str(name)})
        result: Promise = Promise()

        def unpack(settled: Promise) -> None:
            if settled.rejected:
                result.reject(settled.error())  # type: ignore[arg-type]
                return
            address = settled.result().get("address")
            if address is None:
                result.reject(NameNotFoundError(f"no binding for {name}"))
            else:
                result.fulfill(Address.parse(address))

        promise.on_settle(unpack)
        return result

    def resolve_prefix(self, prefix: LogicalName) -> Promise:
        """Fulfills with a dict of name -> Address under the prefix."""
        promise = self._request({"op": "resolve_prefix", "prefix": str(prefix)})
        result: Promise = Promise()

        def unpack(settled: Promise) -> None:
            if settled.rejected:
                result.reject(settled.error())  # type: ignore[arg-type]
                return
            result.fulfill(
                {
                    name: Address.parse(address)
                    for name, address in settled.result().get("bindings", {}).items()
                }
            )

        promise.on_settle(unpack)
        return result

    def unbind(self, name: LogicalName) -> Promise:
        return self._request({"op": "unbind", "name": str(name)})
