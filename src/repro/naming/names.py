"""Hierarchical logical names.

A :class:`LogicalName` is a ``/``-separated path like
``"hospital/ward3/bp-sensor-2"``. Names are location-independent: they
identify *what* something is, while the location service maps them to
*where* it currently is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import NamingError


def _validate_segment(segment: str) -> None:
    if not segment:
        raise NamingError("name segments must be non-empty")
    if "/" in segment or any(c.isspace() for c in segment):
        raise NamingError(f"invalid name segment {segment!r}")


@dataclass(frozen=True, order=True)
class LogicalName:
    """An immutable hierarchical name."""

    segments: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise NamingError("a logical name needs at least one segment")
        for segment in self.segments:
            _validate_segment(segment)

    @staticmethod
    def parse(text: str) -> "LogicalName":
        """Parse ``"a/b/c"`` (leading/trailing slashes rejected)."""
        if not text or text.startswith("/") or text.endswith("/"):
            raise NamingError(f"invalid logical name {text!r}")
        return LogicalName(tuple(text.split("/")))

    def __str__(self) -> str:
        return "/".join(self.segments)

    @property
    def leaf(self) -> str:
        return self.segments[-1]

    @property
    def parent(self) -> "LogicalName":
        if len(self.segments) == 1:
            raise NamingError(f"{self} has no parent")
        return LogicalName(self.segments[:-1])

    def child(self, segment: str) -> "LogicalName":
        _validate_segment(segment)
        return LogicalName(self.segments + (segment,))

    def is_prefix_of(self, other: "LogicalName") -> bool:
        """True if ``other`` lives under (or is) this name."""
        return other.segments[: len(self.segments)] == self.segments

    def depth(self) -> int:
        return len(self.segments)
