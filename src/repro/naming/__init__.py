"""Naming and location.

Sections 3.5/3.10 distinguish *logical* from *physical* location: a service
keeps its logical name while its physical attachment point changes as it
moves. This package provides hierarchical logical names
(:mod:`repro.naming.names`) and a home-agent-style location service mapping
logical names to current physical addresses (:mod:`repro.naming.locator`).
"""

from repro.naming.locator import LocationClient, LocationServer
from repro.naming.names import LogicalName

__all__ = ["LocationClient", "LocationServer", "LogicalName"]
