"""Locating and routing (Section 3.5).

The paper's position: routing belongs *inside* the middleware ("we do not
exploit any existing routing algorithms, but rather the middleware
incorporates this functionality"), because the middleware can exploit
low-level information — notably residual energy — that sits below the
application. This package provides that layer:

* :mod:`repro.routing.base` — the per-node :class:`RoutingAgent`, envelope
  format, and :class:`RoutedTransport` (a multi-hop transport any upper
  subsystem can use unchanged),
* :mod:`repro.routing.flooding` — TTL-scoped flooding with duplicate
  suppression,
* :mod:`repro.routing.linkstate` — converged link-state shortest path
  (Dijkstra) with pluggable edge weights,
* :mod:`repro.routing.energyaware` — residual-energy-weighted routing (the
  E5 lifetime experiment),
* :mod:`repro.routing.geographic` — greedy geographic forwarding,
* :mod:`repro.routing.dsr` — on-demand source routing (RREQ/RREP, route
  cache),
* :mod:`repro.routing.datacentric` — directed-diffusion-style interest/
  gradient routing for sensor data.
"""

from repro.routing.base import Envelope, RoutedTransport, Router, RoutingAgent
from repro.routing.datacentric import DataCentricAgent
from repro.routing.dsr import DsrRouter
from repro.routing.energyaware import EnergyAwareRouter
from repro.routing.flooding import FloodingRouter
from repro.routing.geographic import GeographicRouter
from repro.routing.linkstate import LinkStateRouter

__all__ = [
    "Envelope",
    "RoutedTransport",
    "Router",
    "RoutingAgent",
    "DataCentricAgent",
    "DsrRouter",
    "EnergyAwareRouter",
    "FloodingRouter",
    "GeographicRouter",
    "LinkStateRouter",
]
