"""Greedy geographic forwarding.

Forwards to the neighbor geographically closest to the destination, using
only local information plus the destination's position — no routing tables
at all. Fails at local minima (voids), which the experiments report as
``drop("local-minimum")``; recovery schemes (face routing) are out of scope
and noted as such.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.network import Network
from repro.routing.base import Disposition, Envelope, Router


class GeographicRouter(Router):
    """Greedy position-based next hop."""

    def __init__(self, network: Network, node_id: str):
        self.network = network
        self.node_id = node_id
        self.local_minima = 0

    def next_hop(self, destination: str) -> Optional[str]:
        target = self.network.node(destination)
        me = self.network.node(self.node_id)
        my_distance = me.distance_to(target)
        best: Optional[str] = None
        best_distance = my_distance
        for neighbor in sorted(self.network.neighbors(self.node_id), key=lambda n: n.node_id):
            d = neighbor.distance_to(target)
            if d < best_distance:
                best, best_distance = neighbor.node_id, d
        return best

    def route(self, envelope: Envelope) -> Disposition:
        if envelope.destination.node not in self.network:
            return ("drop", "unknown-destination")
        hop = self.next_hop(envelope.destination.node)
        if hop is None:
            self.local_minima += 1
            return ("drop", "local-minimum")
        return ("forward", hop)
