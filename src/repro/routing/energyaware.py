"""Energy-aware routing.

Section 4: "In multi-hop networks, routing can be an important source of
network energy management; therefore ... the middleware incorporates this
functionality. ... the goal of MiLAN is to increase the lifetime of a
network by incorporating low level network functionality."

This router is that functionality: a link-state router whose edge weight
combines the radio transmission cost of the hop with a penalty that grows as
the *forwarding* node's battery drains::

    weight(u, v) = tx_cost(u -> v) / max(residual_fraction(u), floor)**alpha

With ``alpha = 0`` this degenerates to minimum-transmission-energy routing;
larger ``alpha`` shifts load away from tired nodes, trading path energy for
network lifetime — the tradeoff experiment E5 sweeps.
"""

from __future__ import annotations

from repro.netsim.network import Network
from repro.netsim.packet import HEADER_BYTES
from repro.obs.metrics import get_registry
from repro.routing.linkstate import LinkStateRouter

#: Nodes below this residual fraction are penalized as if at the floor,
#: avoiding division blow-ups while keeping them maximally unattractive.
RESIDUAL_FLOOR = 0.01

#: Nominal packet size used to compare link costs (bits).
NOMINAL_PACKET_BITS = (64 + HEADER_BYTES) * 8


def energy_weight(alpha: float = 2.0):
    """Build a weight function for :class:`LinkStateRouter`.

    ``alpha`` controls how strongly low-residual nodes are avoided.
    """

    def weight(network: Network, u: str, v: str) -> float:
        sender = network.node(u)
        distance = sender.distance_to(network.node(v))
        tx_cost = sender.radio.tx_cost(NOMINAL_PACKET_BITS, distance)
        residual = max(sender.battery.fraction_remaining, RESIDUAL_FLOOR)
        return tx_cost / residual**alpha

    return weight


class EnergyAwareRouter(LinkStateRouter):
    """Link-state routing with residual-energy-weighted edges."""

    def __init__(
        self,
        network: Network,
        node_id: str,
        alpha: float = 2.0,
        refresh_interval_s: float = 1.0,
    ):
        super().__init__(
            network,
            node_id,
            weight_fn=energy_weight(alpha),
            refresh_interval_s=refresh_interval_s,
        )
        self.alpha = alpha

    def _on_refresh(self) -> None:
        """Publish the fleet's weakest residual battery on each refresh —
        the quantity energy-aware routing exists to protect."""
        residuals = [
            node.battery.fraction_remaining
            for node in self.network.nodes()
            if node.alive
        ]
        if residuals:
            get_registry().gauge(
                "route.energy.min_residual", node=self.node_id
            ).set(min(residuals))
