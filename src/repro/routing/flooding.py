"""Flooding: the baseline that always works and always costs the most.

Every envelope is rebroadcast by every node (duplicate-suppressed at the
agent, TTL-bounded). Reaches any connected destination with zero routing
state — the overhead baseline for experiment E5.
"""

from __future__ import annotations

from repro.obs.tracing import TRACER
from repro.routing.base import Disposition, Envelope, Router


class FloodingRouter(Router):
    """Rebroadcast everything not addressed to us."""

    def __init__(self) -> None:
        self.rebroadcasts = 0

    def route(self, envelope: Envelope) -> Disposition:
        self.rebroadcasts += 1
        if TRACER.enabled:
            TRACER.instant("route.flood_decision", parent=envelope.trace_ctx,
                           node=self.agent.node_id,
                           dest=envelope.destination.node, ttl=envelope.ttl)
        return ("flood", None)
