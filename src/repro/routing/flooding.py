"""Flooding: the baseline that always works and always costs the most.

Every envelope is rebroadcast by every node (duplicate-suppressed at the
agent, TTL-bounded). Reaches any connected destination with zero routing
state — the overhead baseline for experiment E5.
"""

from __future__ import annotations

from repro.routing.base import Disposition, Envelope, Router


class FloodingRouter(Router):
    """Rebroadcast everything not addressed to us."""

    def route(self, envelope: Envelope) -> Disposition:
        return ("flood", None)
