"""Link-state shortest-path routing.

Models a *converged* link-state protocol: each agent computes Dijkstra over
the network's current connectivity graph with a pluggable edge-weight
function. The LSA control traffic itself is abstracted away (we charge only
data traffic), which is the standard simplification when the quantity under
study is data-path behaviour — stated here so the experiment write-ups can
cite it.

The adjacency snapshot is cached for ``refresh_interval_s`` of virtual time,
modeling the protocol's convergence delay: topology changes are invisible
until the next refresh.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Optional, Set, Tuple

from repro.netsim.network import Network
from repro.obs.tracing import TRACER
from repro.routing.base import Disposition, Envelope, Router

#: Edge weight: (network, from_node, to_node) -> cost.
WeightFn = Callable[[Network, str, str], float]


def hop_count_weight(_network: Network, _u: str, _v: str) -> float:
    """Classic shortest-hop routing."""
    return 1.0


class LinkStateRouter(Router):
    """Dijkstra next-hop routing over a periodically refreshed topology."""

    def __init__(
        self,
        network: Network,
        node_id: str,
        weight_fn: WeightFn = hop_count_weight,
        refresh_interval_s: float = 1.0,
    ):
        self.network = network
        self.node_id = node_id
        self.weight_fn = weight_fn
        self.refresh_interval_s = refresh_interval_s
        self._graph: Optional[Dict[str, Set[str]]] = None
        self._graph_time = -1.0
        self._next_hop_cache: Dict[str, Optional[str]] = {}

    # ------------------------------------------------------------- topology

    def _current_graph(self) -> Dict[str, Set[str]]:
        now = self.network.sim.now()
        if self._graph is None or now - self._graph_time >= self.refresh_interval_s:
            if TRACER.enabled:
                with TRACER.span("route.topology_refresh", node=self.node_id):
                    self._graph = self.network.adjacency()
            else:
                self._graph = self.network.adjacency()
            self._graph_time = now
            self._next_hop_cache.clear()
            self._on_refresh()
        return self._graph

    def _on_refresh(self) -> None:
        """Hook invoked after each topology refresh (subclass extension)."""

    def _compute_next_hop(self, destination: str) -> Optional[str]:
        """Dijkstra from self; returns the first hop toward ``destination``."""
        graph = self._current_graph()
        if self.node_id not in graph:
            return None
        # (cost, tiebreak node, node, first_hop)
        frontier: list[Tuple[float, str, str, Optional[str]]] = [
            (0.0, self.node_id, self.node_id, None)
        ]
        settled: Dict[str, Optional[str]] = {}
        while frontier:
            cost, _tiebreak, node, first_hop = heapq.heappop(frontier)
            if node in settled:
                continue
            settled[node] = first_hop
            if node == destination:
                return first_hop
            for neighbor in sorted(graph.get(node, ())):
                if neighbor in settled:
                    continue
                weight = self.weight_fn(self.network, node, neighbor)
                heapq.heappush(
                    frontier,
                    (
                        cost + weight,
                        neighbor,
                        neighbor,
                        neighbor if first_hop is None else first_hop,
                    ),
                )
        return None

    def next_hop(self, destination: str) -> Optional[str]:
        # Refresh first: a stale snapshot must expire even when every
        # destination is already cached (the cache is cleared on refresh).
        self._current_graph()
        if destination not in self._next_hop_cache:
            self._next_hop_cache[destination] = self._compute_next_hop(destination)
        return self._next_hop_cache[destination]

    # -------------------------------------------------------------- routing

    def route(self, envelope: Envelope) -> Disposition:
        hop = self.next_hop(envelope.destination.node)
        if hop is None:
            return ("drop", "no-route")
        return ("forward", hop)
