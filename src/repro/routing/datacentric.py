"""Data-centric (directed-diffusion-style) routing.

The sensor-network routing mode the paper's literature review points to
(data-centric routing, [81]): data is addressed by *name*, not by node. A
sink floods an **interest** for a name; each node remembers the neighbor the
interest arrived from with the fewest hops (its *gradient*); sources publish
named data which flows hop-by-hop down the gradients to every interested
sink. No node ever learns a topology — only "who asked me for this name".

Messages (own port, codec dicts)::

    interest: {"c": "interest", "n": name, "o": sink, "q": seq, "h": hops,
               "t": ttl}
    data:     {"c": "data", "n": name, "o": origin, "q": seq, "v": value}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.interop.codec import Codec, get_codec
from repro.interop.frames import WireFrame, decode_payload
from repro.transport.base import Address
from repro.transport.simnet import SimFabric, SimTransport
from repro.util.ids import SequenceGenerator

DIFFUSION_PORT = "diffusion"
DEFAULT_INTEREST_TTL = 16
DEFAULT_GRADIENT_LIFETIME_S = 30.0

DataCallback = Callable[[str, Any, str], None]  # (name, value, origin)


@dataclass
class Gradient:
    """Where to send data for one (name, sink) pair."""

    parent: str  # neighbor to forward toward the sink
    sink: str
    hops_to_sink: int
    expires_at: float


class DataCentricAgent:
    """One node's diffusion engine: sink, source, and relay in one."""

    def __init__(
        self,
        fabric: SimFabric,
        node_id: str,
        codec: Optional[Codec] = None,
        gradient_lifetime_s: float = DEFAULT_GRADIENT_LIFETIME_S,
    ):
        self.fabric = fabric
        self.node_id = node_id
        self.codec = codec if codec is not None else get_codec("binary")
        self.gradient_lifetime_s = gradient_lifetime_s
        self.endpoint: SimTransport = fabric.endpoint(node_id, DIFFUSION_PORT)
        # name -> sink -> gradient
        self._gradients: Dict[str, Dict[str, Gradient]] = {}
        self._subscriptions: Dict[str, DataCallback] = {}
        self._seq = SequenceGenerator(1)
        self._seen_interests: Set[Tuple[str, int]] = set()
        self._seen_data: Set[Tuple[str, int]] = set()
        self.interests_sent = 0
        self.data_sent = 0
        self.data_delivered = 0
        self.endpoint.set_receiver(self._on_message)

    def _now(self) -> float:
        return self.endpoint.scheduler.now()

    # ------------------------------------------------------------------ sink

    def subscribe(
        self,
        name: str,
        callback: DataCallback,
        refresh_interval_s: Optional[float] = None,
        ttl: int = DEFAULT_INTEREST_TTL,
    ) -> None:
        """Express interest in named data; re-floods periodically if asked
        (gradients expire, so long-lived sinks should refresh)."""
        self._subscriptions[name] = callback
        self._flood_interest(name, ttl)
        if refresh_interval_s is not None:
            self.endpoint.scheduler.schedule(
                refresh_interval_s, self._refresh, name, refresh_interval_s, ttl
            )

    def _refresh(self, name: str, interval: float, ttl: int) -> None:
        if name not in self._subscriptions or self.endpoint.closed:
            return
        self._flood_interest(name, ttl)
        self.endpoint.scheduler.schedule(interval, self._refresh, name, interval, ttl)

    def unsubscribe(self, name: str) -> None:
        self._subscriptions.pop(name, None)

    def _flood_interest(self, name: str, ttl: int) -> None:
        seq = self._seq.next()
        self._seen_interests.add((self.node_id, seq))
        self.interests_sent += 1
        self.endpoint.broadcast(
            WireFrame(
                {"c": "interest", "n": name, "o": self.node_id, "q": seq,
                 "h": 0, "t": ttl},
                self.codec,
            )
        )

    # ---------------------------------------------------------------- source

    def publish(self, name: str, value: Any) -> int:
        """Send named data toward every interested sink.

        Returns the number of sinks it was forwarded toward (0 when no
        gradient exists — nobody asked, so nothing is transmitted; this
        silence is data-centric routing's energy win).
        """
        if name in self._subscriptions:
            self.data_delivered += 1
            self._subscriptions[name](name, value, self.node_id)
        seq = self._seq.next()
        self._seen_data.add((self.node_id, seq))
        return self._forward_data(
            {"c": "data", "n": name, "o": self.node_id, "q": seq, "v": value}
        )

    def _forward_data(self, message: Dict[str, Any]) -> int:
        gradients = self._live_gradients(message["n"])
        parents = {g.parent for g in gradients.values() if g.parent != self.node_id}
        if not parents:
            return 0
        # One lazy frame for the whole fan-out: encoded at most once however
        # many gradients the data flows down.
        frame = WireFrame(message, self.codec)
        for parent in sorted(parents):
            self.data_sent += 1
            self.endpoint.send(Address(parent, DIFFUSION_PORT), frame)
        return len(parents)

    def _live_gradients(self, name: str) -> Dict[str, Gradient]:
        by_sink = self._gradients.get(name, {})
        now = self._now()
        live = {sink: g for sink, g in by_sink.items() if g.expires_at > now}
        self._gradients[name] = live
        return live

    # -------------------------------------------------------------- receiving

    def _on_message(self, source: Address, payload: bytes) -> None:
        message = decode_payload(self.codec, payload)
        kind = message.get("c")
        if kind == "interest":
            self._on_interest(source, message)
        elif kind == "data":
            self._on_data(message)

    def _on_interest(self, source: Address, message: Dict[str, Any]) -> None:
        key = (message["o"], message["q"])
        hops = message["h"] + 1
        name, sink = message["n"], message["o"]
        by_sink = self._gradients.setdefault(name, {})
        existing = by_sink.get(sink)
        expires = self._now() + self.gradient_lifetime_s
        if existing is None or hops < existing.hops_to_sink:
            by_sink[sink] = Gradient(source.node, sink, hops, expires)
        elif hops == existing.hops_to_sink and source.node == existing.parent:
            existing.expires_at = expires
        if key in self._seen_interests:
            return
        self._seen_interests.add(key)
        ttl = message["t"] - 1
        if ttl >= 1:
            self.interests_sent += 1
            self.endpoint.broadcast(
                WireFrame({**message, "h": hops, "t": ttl}, self.codec)
            )

    def _on_data(self, message: Dict[str, Any]) -> None:
        key = (message["o"], message["q"])
        if key in self._seen_data:
            return
        self._seen_data.add(key)
        name = message["n"]
        if name in self._subscriptions:
            self.data_delivered += 1
            self._subscriptions[name](name, message["v"], message["o"])
        self._forward_data(message)
