"""On-demand source routing (DSR-style).

Unlike the link-state routers, this one builds no global state: a node
needing a route floods a route request (RREQ) that accumulates the path it
travels; the destination answers with a route reply (RREP) sent back along
the reversed path; the origin caches the route and source-routes data along
it. Intermediate nodes learn routes by forwarding RREPs.

Control messages (on the routing port)::

    RREQ: {"c": "rreq", "o": origin, "q": seq, "d": destination, "p": [path]}
    RREP: {"c": "rrep", "o": origin, "q": seq, "path": [full path]}

Envelopes queued while discovery runs are dropped (and counted) after
``discovery_timeout_s`` — the behaviour an unreachable destination produces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.tracing import TRACER, Span
from repro.routing.base import Disposition, Envelope, Router
from repro.transport.base import Address
from repro.util.ids import SequenceGenerator


class DsrRouter(Router):
    """Dynamic source routing with a route cache."""

    def __init__(self, node_id: str, discovery_timeout_s: float = 2.0, max_queue: int = 64):
        self.node_id = node_id
        self.discovery_timeout_s = discovery_timeout_s
        self.max_queue = max_queue
        self._route_cache: Dict[str, List[str]] = {}
        self._rreq_seq = SequenceGenerator(1)
        self._seen_rreqs: Set[Tuple[str, int]] = set()
        self._waiting: Dict[str, List[Envelope]] = {}
        self._discovery_spans: Dict[str, Span] = {}
        self.rreqs_sent = 0
        self.rreps_sent = 0
        self.discovery_failures = 0
        self.route_errors = 0

    # ----------------------------------------------------------------- cache

    def cached_route(self, destination: str) -> Optional[List[str]]:
        return self._route_cache.get(destination)

    def learn_route(self, path: List[str]) -> None:
        """Cache this path and every prefix/suffix route it implies for us."""
        if self.node_id not in path:
            return
        index = path.index(self.node_id)
        # Forward routes to every node after us on the path.
        for j in range(index + 1, len(path)):
            self._route_cache[path[j]] = path[index:j + 1]
        # Reverse routes to every node before us (radio links are symmetric
        # in the disk model).
        for j in range(index):
            self._route_cache[path[j]] = list(reversed(path[j:index + 1]))

    def invalidate(self, destination: str) -> None:
        self._route_cache.pop(destination, None)

    def purge_hop(self, dead_hop: str) -> int:
        """Drop every cached route that travels through ``dead_hop``
        (DSR route maintenance on a route error)."""
        stale = [
            destination
            for destination, path in self._route_cache.items()
            if dead_hop in path
        ]
        for destination in stale:
            del self._route_cache[destination]
        return len(stale)

    # --------------------------------------------------------------- routing

    def route(self, envelope: Envelope) -> Disposition:
        destination = envelope.destination.node
        cached = self._route_cache.get(destination)
        if cached is not None:
            index = cached.index(self.node_id) if self.node_id in cached else -1
            if 0 <= index < len(cached) - 1:
                next_hop = cached[index + 1]
                if self.agent._hop_alive(next_hop):
                    envelope.route = cached
                    return ("forward", next_hop)
                # The link-layer ack would fail: repair before transmitting.
                self.route_errors += 1
                self.purge_hop(next_hop)
            else:
                self.invalidate(destination)
        envelope.route = None
        discovery_running = destination in self._waiting
        self._enqueue(destination, envelope)
        if not discovery_running:
            self._start_discovery(destination)
        return ("queued", None)

    def handle_broken_link(self, envelope: Envelope, next_hop: str) -> Disposition:
        """Route maintenance at an intermediate hop: purge routes through
        the dead node and salvage the envelope with a fresh discovery."""
        self.route_errors += 1
        self.purge_hop(next_hop)
        if TRACER.enabled:
            TRACER.instant("route.salvage", parent=envelope.trace_ctx,
                           node=self.node_id, dead_hop=next_hop,
                           dest=envelope.destination.node)
        return self.route(envelope)

    def _enqueue(self, destination: str, envelope: Envelope) -> None:
        queue = self._waiting.setdefault(destination, [])
        if len(queue) >= self.max_queue:
            queue.pop(0)
        queue.append(envelope)

    def _start_discovery(self, destination: str) -> None:
        seq = self._rreq_seq.next()
        self._seen_rreqs.add((self.node_id, seq))
        self.rreqs_sent += 1
        if TRACER.enabled:
            span = TRACER.span("route.discovery", node=self.node_id,
                               dest=destination, seq=seq)
            if isinstance(span, Span):
                self._discovery_spans[destination] = span
        self.agent.send_control(
            None,
            {"c": "rreq", "o": self.node_id, "q": seq, "d": destination,
             "p": [self.node_id]},
        )
        self.agent.scheduler.schedule(
            self.discovery_timeout_s, self._discovery_deadline, destination
        )

    def _discovery_deadline(self, destination: str) -> None:
        if destination in self._route_cache:
            return
        stranded = self._waiting.pop(destination, [])
        self.discovery_failures += len(stranded)
        span = self._discovery_spans.pop(destination, None)
        if span is not None:
            span.set_label(outcome="timeout", stranded=len(stranded))
            span.finish()

    # --------------------------------------------------------------- control

    def handle_control(self, source: Address, message: Dict[str, Any]) -> None:
        kind = message.get("c")
        if kind == "rreq":
            self._on_rreq(message)
        elif kind == "rrep":
            self._on_rrep(message)

    def _on_rreq(self, message: Dict[str, Any]) -> None:
        key = (message["o"], message["q"])
        if key in self._seen_rreqs:
            return
        self._seen_rreqs.add(key)
        path: List[str] = list(message["p"])
        if self.node_id in path:
            return
        path.append(self.node_id)
        destination = message["d"]
        if destination == self.node_id:
            # We are the target: answer along the reversed accumulated path.
            self.learn_route(path)
            self._send_rrep(message["o"], message["q"], path)
            return
        cached = self._route_cache.get(destination)
        if cached is not None and cached[0] == self.node_id:
            # Cache hit: splice our known route onto the accumulated path.
            full = path[:-1] + cached
            if len(set(full)) == len(full):  # no loops
                self._send_rrep(message["o"], message["q"], full)
                return
        self.agent.send_control(None, {**message, "p": path})

    def _send_rrep(self, origin: str, seq: int, path: List[str]) -> None:
        """Send (or forward) an RREP one hop back toward the origin."""
        index = path.index(self.node_id)
        if index == 0:
            return
        self.rreps_sent += 1
        self.agent.send_control(
            path[index - 1], {"c": "rrep", "o": origin, "q": seq, "path": path}
        )

    def _on_rrep(self, message: Dict[str, Any]) -> None:
        path: List[str] = list(message["path"])
        self.learn_route(path)
        if message["o"] == self.node_id:
            self._flush(path[-1])
            return
        self._send_rrep(message["o"], message["q"], path)

    def _flush(self, destination: str) -> None:
        route = self._route_cache.get(destination)
        if route is None:
            return
        span = self._discovery_spans.pop(destination, None)
        if span is not None:
            span.set_label(outcome="found", hops=len(route) - 1)
            span.finish()
        for envelope in self._waiting.pop(destination, []):
            envelope.route = route
            if len(route) > 1:
                self.agent.forward_to(route[1], envelope)
