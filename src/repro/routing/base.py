"""The routing layer's chassis: agents, envelopes, and routed transports.

One :class:`RoutingAgent` runs per node, bound to the reserved ``route``
port. Upper layers open :class:`RoutedTransport` ports *through* the agent;
sends become :class:`Envelope` frames forwarded hop-by-hop according to the
node's :class:`Router` strategy. When an envelope reaches its destination
node the agent injects the inner payload into the target port, so the upper
layer cannot tell a multi-hop path from a direct one — which is exactly what
lets discovery, RPC, and MiLAN run unchanged over any routing strategy.

Envelope wire form (codec dict, kept terse because every byte is charged to
the radio)::

    {"s": "src node:port", "d": "dst node:port", "t": ttl,
     "q": seq, "b": payload bytes [, "r": [source route]]}

Control traffic (router-specific, e.g. DSR RREQ/RREP) uses ``{"c": ...}``
dicts on the same port and is handed to the router.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, MiddlewareError, NoRouteError
from repro.interop.codec import Codec, get_codec, try_decode_dict
from repro.interop.frames import WireFrame, is_frame
from repro.obs.tracing import TRACER, SpanContext
from repro.transport.base import Address, Scheduler, Transport
from repro.transport.simnet import BROADCAST_NODE, SimFabric, SimTransport
from repro.util.ids import SequenceGenerator

ROUTE_PORT = "route"
DEFAULT_TTL = 32


@dataclass
class Envelope:
    """A multi-hop datagram."""

    source: Address
    destination: Address
    ttl: int
    seq: int
    payload: bytes
    route: Optional[List[str]] = None  # explicit source route, if any
    # In-memory only — never serialized into the wire dict. Carries the
    # originating trace context while an envelope sits in router queues
    # (e.g. DSR awaiting route discovery).
    trace_ctx: Optional[SpanContext] = field(
        default=None, compare=False, repr=False
    )
    # In-memory only: the lazy frame this envelope arrived as, when its wire
    # dict is known to round-trip through to_dict() byte-for-byte. Lets a
    # forward patch just the ttl varint instead of re-encoding the dict.
    wire: Optional[WireFrame] = field(default=None, compare=False, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "s": str(self.source),
            "d": str(self.destination),
            "t": self.ttl,
            "q": self.seq,
            "b": self.payload,
        }
        if self.route is not None:
            message["r"] = list(self.route)
        return message

    @staticmethod
    def from_dict(message: Dict[str, Any]) -> "Envelope":
        return Envelope(
            source=Address.parse(message["s"]),
            destination=Address.parse(message["d"]),
            ttl=message["t"],
            seq=message["q"],
            payload=message["b"],
            route=list(message["r"]) if "r" in message else None,
        )


#: What a router tells the agent to do with an envelope.
#: ("forward", next_hop) / ("flood", None) / ("queued", None) / ("drop", why)
Disposition = Tuple[str, Optional[str]]


class Router(abc.ABC):
    """A per-node routing strategy."""

    def attach(self, agent: "RoutingAgent") -> None:
        """Called once when installed; override to keep the agent handle."""
        self.agent = agent

    @abc.abstractmethod
    def route(self, envelope: Envelope) -> Disposition:
        """Decide the fate of an envelope not addressed to this node."""

    def handle_control(self, source: Address, message: Dict[str, Any]) -> None:
        """Process router-specific control traffic (default: ignore)."""

    def handle_broken_link(self, envelope: Envelope, next_hop: str) -> Disposition:
        """The link-layer reported the next hop dead (modeling a missing
        link-layer ack). Default: give up on this envelope. Routers with
        route maintenance (DSR) override this to repair and retry."""
        return ("drop", "broken-link")


class RoutingAgent:
    """The per-node forwarding engine."""

    def __init__(
        self,
        fabric: SimFabric,
        node_id: str,
        router: Router,
        codec: Optional[Codec] = None,
        default_ttl: int = DEFAULT_TTL,
    ):
        if default_ttl < 1:
            raise ConfigurationError(f"ttl must be >= 1, got {default_ttl!r}")
        self.fabric = fabric
        self.node_id = node_id
        self.router = router
        self.codec = codec if codec is not None else get_codec("binary")
        self.default_ttl = default_ttl
        self.endpoint: SimTransport = fabric.endpoint(node_id, ROUTE_PORT)
        self._seq = SequenceGenerator(1)
        self._seen: set[Tuple[str, int]] = set()
        self._ports: Dict[str, "RoutedTransport"] = {}
        self.originated = 0
        self.forwarded = 0
        self.delivered = 0
        self.dropped: Dict[str, int] = {}
        self.endpoint.set_receiver(self._on_frame)
        router.attach(self)

    # ------------------------------------------------------------- upper API

    def open_port(self, port: str) -> "RoutedTransport":
        """A multi-hop transport for ``port`` on this node.

        The port is also bound on the fabric, so one-hop frames addressed
        directly to it (broadcasts, neighbor unicasts) are delivered too —
        multi-hop and single-hop traffic converge on the same receiver.
        """
        if port == ROUTE_PORT:
            raise ConfigurationError(f"port {ROUTE_PORT!r} is reserved for routing")
        if port in self._ports:
            raise ConfigurationError(f"routed port {port!r} already open on {self.node_id}")
        transport = RoutedTransport(Address(self.node_id, port), self)
        self._ports[port] = transport
        self.fabric.bind(self.node_id, port, transport)
        return transport

    def close_port(self, port: str) -> None:
        if self._ports.pop(port, None) is not None:
            self.fabric.remove(Address(self.node_id, port))

    @property
    def scheduler(self) -> Scheduler:
        return self.endpoint.scheduler

    # --------------------------------------------------------------- sending

    def originate(self, source: Address, destination: Address, payload: bytes) -> None:
        """Start an envelope from this node."""
        if destination.node == BROADCAST_NODE:
            # One-hop broadcast is a link-layer affair: no routing involved.
            self.fabric._transmit(source, destination, payload)
            return
        envelope = Envelope(
            source=source,
            destination=destination,
            ttl=self.default_ttl,
            seq=self._seq.next(),
            payload=payload,
        )
        self.originated += 1
        self._seen.add((str(envelope.source), envelope.seq))
        if TRACER.enabled:
            with TRACER.span("route.originate", node=self.node_id,
                             dest=destination.node, seq=envelope.seq) as span:
                envelope.trace_ctx = span.context()
                self._move(envelope)
        else:
            self._move(envelope)

    def _move(self, envelope: Envelope) -> None:
        """Deliver locally or ask the router where to send next."""
        if envelope.destination.node == self.node_id:
            self.delivered += 1
            if TRACER.enabled:
                with TRACER.span("route.deliver", parent=envelope.trace_ctx,
                                 node=self.node_id,
                                 port=envelope.destination.port,
                                 hops=self.default_ttl - envelope.ttl):
                    self._deliver_local(envelope)
            else:
                self._deliver_local(envelope)
            return
        if envelope.ttl <= 0:
            self._drop("ttl")
            return
        # Source-routed envelopes follow their route without consulting
        # the router.
        if envelope.route:
            self._follow_source_route(envelope)
            return
        self._apply_disposition(envelope, self.router.route(envelope))

    def _deliver_local(self, envelope: Envelope) -> None:
        local = self._ports.get(envelope.destination.port)
        if local is not None and not local.closed:
            local._dispatch(envelope.source, envelope.payload)
        else:
            # Not a routed port here; maybe a raw fabric endpoint.
            self.fabric.inject(envelope.destination, envelope.source, envelope.payload)

    def _apply_disposition(self, envelope: Envelope, disposition: Disposition) -> None:
        action, argument = disposition
        if action == "forward":
            assert argument is not None
            self.forward_to(argument, envelope)
        elif action == "flood":
            self.flood(envelope)
        elif action == "queued":
            pass  # router owns it now (e.g. DSR awaiting route discovery)
        else:
            self._drop(argument or "router")

    def _follow_source_route(self, envelope: Envelope) -> None:
        route = envelope.route or []
        try:
            index = route.index(self.node_id)
        except ValueError:
            self._drop("not-on-route")
            return
        if index + 1 >= len(route):
            self._drop("route-exhausted")
            return
        next_hop = route[index + 1]
        if not self._hop_alive(next_hop):
            # Link-layer ack failure: let the router repair (DSR route
            # maintenance) instead of black-holing the envelope. The stale
            # source route is stripped so a repaired path can be attached.
            envelope.route = None
            self._apply_disposition(
                envelope, self.router.handle_broken_link(envelope, next_hop)
            )
            return
        self.forward_to(next_hop, envelope)

    def _hop_alive(self, node_id: str) -> bool:
        """Models the link-layer ack a real radio gives per-hop senders."""
        network = self.fabric.network
        return node_id in network and network.node(node_id).alive

    def _frame_for(self, envelope: Envelope, out: Envelope):
        """The wire frame for one outgoing hop.

        When the incoming envelope carried a canonical wire dict
        (``envelope.wire``) and the router changed nothing but the ttl, the
        hop costs a ttl patch on the cached frame — the flood fast path.
        Everything else (originations, DSR route edits) builds a fresh lazy
        frame from ``out.to_dict()``. Overridden by the eager-codec baseline
        in ``benchmarks/bench_wire.py``.
        """
        wire = envelope.wire
        if wire is not None:
            message = wire.message
            if (message["b"] is out.payload
                    and message.get("r") == out.route):
                return wire.derive_int("t", out.ttl)
        return WireFrame(out.to_dict(), self.codec)

    def forward_to(self, next_hop: str, envelope: Envelope) -> None:
        """Send an envelope one hop (decrements TTL)."""
        self.forwarded += 1
        out = Envelope(
            envelope.source, envelope.destination, envelope.ttl - 1,
            envelope.seq, envelope.payload, envelope.route,
        )
        frame = self._frame_for(envelope, out)
        if TRACER.enabled:
            with TRACER.span("route.forward", parent=envelope.trace_ctx,
                             node=self.node_id, next_hop=next_hop,
                             dest=envelope.destination.node, seq=envelope.seq):
                self.endpoint.send(Address(next_hop, ROUTE_PORT), frame)
        else:
            self.endpoint.send(Address(next_hop, ROUTE_PORT), frame)

    def flood(self, envelope: Envelope) -> None:
        """Broadcast an envelope to all neighbors (decrements TTL)."""
        self.forwarded += 1
        out = Envelope(
            envelope.source, envelope.destination, envelope.ttl - 1,
            envelope.seq, envelope.payload, envelope.route,
        )
        frame = self._frame_for(envelope, out)
        if TRACER.enabled:
            with TRACER.span("route.flood", parent=envelope.trace_ctx,
                             node=self.node_id,
                             dest=envelope.destination.node, seq=envelope.seq):
                self.endpoint.broadcast(frame)
        else:
            self.endpoint.broadcast(frame)

    def send_control(self, destination: Optional[str], message: Dict[str, Any]) -> None:
        """Router control traffic: unicast to a node, or broadcast if None.

        The message dict is captured in a lazy frame — callers must not
        mutate it after this call (all in-tree routers build fresh dicts).
        """
        payload = WireFrame(message, self.codec)
        if destination is None:
            self.endpoint.broadcast(payload)
        else:
            self.endpoint.send(Address(destination, ROUTE_PORT), payload)

    # ------------------------------------------------------------- receiving

    def _on_frame(self, source: Address, payload: bytes) -> None:
        # Corrupted or truncated frames (chaos injection) are dropped and
        # counted, never raised — a raise would abort the simulator run.
        message = try_decode_dict(self.codec, payload)
        if message is None:
            self._drop("malformed")
            return
        if "c" in message:
            if TRACER.enabled:
                with TRACER.span("route.control", node=self.node_id,
                                 peer=source.node):
                    self.router.handle_control(source, message)
            else:
                self.router.handle_control(source, message)
            return
        try:
            envelope = Envelope.from_dict(message)
        except (KeyError, TypeError, ValueError, AttributeError, MiddlewareError):
            self._drop("malformed")
            return
        if not isinstance(envelope.ttl, int) or not isinstance(envelope.seq, int) \
                or not (isinstance(envelope.payload, (bytes, bytearray))
                        or is_frame(envelope.payload)):
            self._drop("malformed")
            return
        envelope.wire = self._capture_wire(payload, message, envelope)
        if TRACER.enabled:
            # Re-attach the trace context carried in the frame's packet
            # header (ambient here: we run inside the transport.deliver span).
            envelope.trace_ctx = TRACER.current_context()
        key = (str(envelope.source), envelope.seq)
        if key in self._seen:
            self._drop("duplicate")
            return
        self._seen.add(key)
        self._move(envelope)

    _WIRE_KEYS = ("s", "d", "t", "q", "b")
    _WIRE_KEYS_R = ("s", "d", "t", "q", "b", "r")

    def _capture_wire(self, payload, message: Dict[str, Any],
                      envelope: Envelope) -> Optional[WireFrame]:
        """The received frame, iff its dict provably round-trips to_dict().

        Forwarding via a cached frame is only sound when re-encoding
        ``envelope.to_dict()`` would reproduce the received dict exactly:
        canonical key order, addresses that re-stringify identically, and a
        ttl that an int-field splice can rewrite. Anything else returns
        None, falling back to the full re-encode — exactly the pre-frame
        behavior (including its silent dropping of unknown keys).
        """
        keys = tuple(message)
        if keys != self._WIRE_KEYS and keys != self._WIRE_KEYS_R:
            return None
        ttl = message["t"]
        if type(ttl) is not int or type(message["q"]) is not int \
                or not 0 <= ttl < 2**63:
            return None
        if message["s"] != str(envelope.source) \
                or message["d"] != str(envelope.destination):
            return None
        if isinstance(payload, WireFrame) and payload.codec.name == self.codec.name:
            return payload
        return WireFrame(message, self.codec)

    def _drop(self, reason: str) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + 1
        if TRACER.enabled:
            TRACER.instant("route.drop", node=self.node_id, reason=reason)


class RoutedTransport(Transport):
    """A Transport whose unicasts traverse multiple hops via the agent."""

    def __init__(self, local: Address, agent: RoutingAgent):
        super().__init__(local)
        self._agent = agent

    @property
    def scheduler(self) -> Scheduler:
        return self._agent.scheduler

    def _send(self, destination: Address, payload: bytes) -> None:
        self._agent.originate(self._local, destination, payload)

    def broadcast(self, payload: bytes, port: Optional[str] = None) -> None:
        """One-hop broadcast (symmetric with SimTransport.broadcast)."""
        self.send(Address(BROADCAST_NODE, port or self._local.port), payload)

    def close(self) -> None:
        super().close()
        self._agent.close_port(self._local.port)


def build_routed_network(
    fabric: SimFabric,
    router_factory: Callable[[str], Router],
    node_ids: Optional[List[str]] = None,
    default_ttl: int = DEFAULT_TTL,
) -> Dict[str, RoutingAgent]:
    """Install a routing agent on every node; returns agents by node id."""
    ids = node_ids if node_ids is not None else fabric.network.node_ids()
    return {
        node_id: RoutingAgent(
            fabric, node_id, router_factory(node_id), default_ttl=default_ttl
        )
        for node_id in ids
    }
