"""Mobility models.

Section 3.10 names mobility (physical and logical) as a first-class concern,
and the handoff experiments (E7) need suppliers that actually move out of
range. Models are pure functions of virtual time — ``position_at(t)`` — so
they need no per-tick updates and remain exact under any event spacing.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Tuple

from repro.errors import ConfigurationError
from repro.util.geometry import Point
from repro.util.rng import split_rng


class MobilityModel(Protocol):
    """Anything that can report a position for a virtual time."""

    def position_at(self, t: float) -> Point:
        ...


def is_time_varying(model: "MobilityModel | None") -> bool:
    """True when ``model`` can report different positions over time.

    Spatial caches (the medium's hash grid) key off this: a node with a
    time-varying model must have its cached position refreshed whenever
    virtual time advances, while static nodes only move on explicit
    ``set_position``/``set_mobility`` calls — which emit ``"moved"``
    events the caches subscribe to.
    """
    return model is not None and not isinstance(model, StaticMobility)


def linear_params(
    model: "MobilityModel",
) -> Optional[Tuple[float, float, float, float, float]]:
    """Kinematic parameters ``(x0, y0, vx, vy, t0)`` for closed-form models.

    The vectorized medium backend (:mod:`repro.netsim.vecindex`) evaluates
    ``position = (x0, y0) + (vx, vy) * max(0, t - t0)`` for whole slot
    ranges in one numpy expression — the arithmetic below matches
    :meth:`LinearMobility.position_at` operation for operation, so the
    vector path reproduces the scalar path bit for bit. Models without a
    closed form (paths, random waypoint) return ``None`` and are refreshed
    through their Python ``position_at``.
    """
    if type(model) is LinearMobility:
        return (
            model.start.x, model.start.y,
            model.velocity[0], model.velocity[1], model.start_time,
        )
    return None


class StaticMobility:
    """A fixed position (the default for infrastructure nodes)."""

    __slots__ = ("_position",)

    def __init__(self, position: Point):
        self._position = position

    def position_at(self, t: float) -> Point:
        return self._position


class LinearMobility:
    """Constant-velocity motion from a starting point.

    Used for the "service moving out of range" scenario of Section 3.7.
    """

    __slots__ = ("start", "velocity", "start_time")

    def __init__(self, start: Point, velocity: Tuple[float, float], start_time: float = 0.0):
        self.start = start
        self.velocity = velocity
        self.start_time = start_time

    def position_at(self, t: float) -> Point:
        dt = max(0.0, t - self.start_time)
        return Point(
            self.start.x + self.velocity[0] * dt,
            self.start.y + self.velocity[1] * dt,
        )


class PathMobility:
    """Piecewise-linear motion through explicit waypoints at constant speed.

    The node stops at the final waypoint.
    """

    __slots__ = ("waypoints", "speed", "start_time", "_arrivals")

    def __init__(self, waypoints: List[Point], speed: float, start_time: float = 0.0):
        if len(waypoints) < 1:
            raise ConfigurationError("path mobility needs at least one waypoint")
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed!r}")
        self.waypoints = list(waypoints)
        self.speed = speed
        self.start_time = start_time
        # Precompute segment arrival times.
        self._arrivals = [start_time]
        for previous, current in zip(self.waypoints, self.waypoints[1:]):
            leg = previous.distance_to(current) / speed
            self._arrivals.append(self._arrivals[-1] + leg)

    def position_at(self, t: float) -> Point:
        if t <= self.start_time or len(self.waypoints) == 1:
            return self.waypoints[0]
        if t >= self._arrivals[-1]:
            return self.waypoints[-1]
        for i in range(len(self.waypoints) - 1):
            if t < self._arrivals[i + 1]:
                elapsed = t - self._arrivals[i]
                return self.waypoints[i].move_toward(
                    self.waypoints[i + 1], self.speed * elapsed
                )
        return self.waypoints[-1]


class RandomWaypointMobility:
    """The classic random-waypoint model over a rectangular area.

    The node repeatedly picks a uniform random destination and speed, walks
    there, and pauses. Segments are generated lazily but deterministically
    from the seed, so ``position_at`` is a pure function of (seed, t).
    """

    __slots__ = (
        "area", "speed_range", "pause_s", "_rng",
        "_segments", "_horizon", "_last_position",
    )

    def __init__(
        self,
        area: Tuple[float, float],
        seed: int,
        speed_range: Tuple[float, float] = (0.5, 2.0),
        pause_s: float = 1.0,
        start: Point | None = None,
    ):
        if area[0] <= 0 or area[1] <= 0:
            raise ConfigurationError(f"area must be positive, got {area!r}")
        if speed_range[0] <= 0 or speed_range[1] < speed_range[0]:
            raise ConfigurationError(f"bad speed range {speed_range!r}")
        self.area = area
        self.speed_range = speed_range
        self.pause_s = pause_s
        self._rng = split_rng(seed, "random-waypoint")
        if start is None:
            start = Point(
                self._rng.uniform(0, area[0]), self._rng.uniform(0, area[1])
            )
        # Each segment: (depart_time, arrive_time, origin, destination).
        # Between arrive_time and the next depart_time the node pauses.
        self._segments: List[Tuple[float, float, Point, Point]] = []
        self._horizon = 0.0
        self._last_position = start

    def _extend_to(self, t: float) -> None:
        while self._horizon <= t:
            depart = self._horizon + self.pause_s
            destination = Point(
                self._rng.uniform(0, self.area[0]),
                self._rng.uniform(0, self.area[1]),
            )
            speed = self._rng.uniform(*self.speed_range)
            travel = self._last_position.distance_to(destination) / speed
            arrive = depart + travel
            self._segments.append((depart, arrive, self._last_position, destination))
            self._last_position = destination
            self._horizon = arrive

    def position_at(self, t: float) -> Point:
        self._extend_to(t)
        position = self._segments[0][2]
        for depart, arrive, origin, destination in self._segments:
            if t < depart:
                return position  # pausing at the previous destination
            if t <= arrive:
                fraction = 0.0 if arrive == depart else (t - depart) / (arrive - depart)
                return Point(
                    origin.x + (destination.x - origin.x) * fraction,
                    origin.y + (destination.y - origin.y) * fraction,
                )
            position = destination
        return position
