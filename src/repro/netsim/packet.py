"""Packets: the unit of simulated communication.

A packet carries an opaque payload plus the addressing and size metadata the
medium needs. Payload bytes are never inspected by the simulator; size is
explicit so upper layers can account header overhead honestly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Broadcast destination sentinel.
BROADCAST = "*"

#: Default link-layer header overhead charged per packet (bytes).
HEADER_BYTES = 16

_packet_seq = itertools.count()


@dataclass(slots=True)
class Packet:
    """A simulated frame.

    ``slots=True`` matters at swarm scale: a 10k-node broadcast world holds
    hundreds of thousands of live frames, and the per-instance ``__dict__``
    of a plain dataclass dominated their footprint. Per-hop metadata
    belongs in :attr:`headers`, not in ad-hoc attributes.

    Attributes:
        source: node id of the original sender.
        destination: node id, or :data:`BROADCAST`.
        payload: opaque application payload (any picklable object).
        payload_bytes: accounted size of the payload.
        headers: mutable per-hop metadata (route records, TTLs, ...).
        packet_id: unique per-process id, for tracing and dedup.
        hop_count: incremented by forwarding layers.
    """

    source: str
    destination: str
    payload: Any
    payload_bytes: int
    headers: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_seq))
    hop_count: int = 0

    @property
    def size_bytes(self) -> int:
        """Total on-air size including link-layer header."""
        return self.payload_bytes + HEADER_BYTES

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    @property
    def is_broadcast(self) -> bool:
        return self.destination == BROADCAST

    def copy_for_forwarding(self, new_destination: Optional[str] = None) -> "Packet":
        """Clone the packet for the next hop, bumping the hop count.

        Headers are shallow-copied so per-hop mutation does not leak between
        branches of a flood.
        """
        return Packet(
            source=self.source,
            destination=self.destination if new_destination is None else new_destination,
            payload=self.payload,
            payload_bytes=self.payload_bytes,
            headers=dict(self.headers),
            hop_count=self.hop_count + 1,
        )
